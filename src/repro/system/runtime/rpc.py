"""Lossy, seeded RPC channel for the control-plane runtime.

Every Agent<->Coordinator message in :mod:`repro.system.runtime` crosses
one :class:`RpcChannel`. The channel models the classic control-plane
failure modes -- i.i.d. message loss, bounded one-way delay, and
at-least-once duplication -- plus the client-side policy that copes
with them: per-message timeout, bounded retries, and exponential
backoff between attempts.

Determinism contract: the channel's verdict for a message is a pure
function of ``(spec, seed, msg_id)``. Each message id gets its own
``random.Random`` seeded from the string ``"{seed}|{msg_id}"`` (string
seeding hashes via SHA-512 inside CPython's ``random``, so it is stable
across processes and independent of ``PYTHONHASHSEED``). Retries of the
same message append the attempt number to the id, so attempt *k* of a
registration draws the same fate in a live run and in a replay -- which
is what keeps live == replay bit-for-bit per ``(spec, seed)``.

Spec grammar (``parse_rpc_spec``), mirroring the telemetry
``NoiseSpec`` grammar from :mod:`repro.obs.watch.channel`::

    drop=0.1,delay=0.002,dup=0.01,timeout=0.05,retries=3,backoff=0.01,seed=7

``off`` (or an empty string / ``None``) is the identity channel:
nothing is dropped, delayed, or duplicated, and the runtime collapses
to the direct in-process path (bit-identical to
:func:`repro.system.run_cluster`). Unknown keys raise
:class:`RpcSpecError`.
"""

from __future__ import annotations

import random
from dataclasses import dataclass, replace
from typing import Dict, List, Optional


class RpcSpecError(ValueError):
    """An RPC channel spec string failed to parse."""


@dataclass(frozen=True)
class RpcSpec:
    """Declarative description of one control-plane RPC channel."""

    #: i.i.d. loss probability per message copy.
    drop: float = 0.0
    #: Maximum one-way delivery latency (sim-seconds); uniform in [0, delay].
    delay: float = 0.0
    #: Probability a delivered message arrives twice.
    dup: float = 0.0
    #: Sender-side wait before declaring one attempt lost (sim-seconds).
    timeout: float = 0.05
    #: Retries after the first attempt (so ``retries + 1`` attempts total).
    retries: int = 3
    #: Base backoff between attempts; attempt k waits ``backoff * 2**k``.
    backoff: float = 0.01
    #: RNG seed; same (spec, seed, msg_id) -> same fate.
    seed: int = 0

    def __post_init__(self) -> None:
        for name in ("drop", "dup"):
            value = getattr(self, name)
            if not 0.0 <= value <= 1.0:
                raise RpcSpecError(
                    f"{name} must be a probability in [0, 1], got {value}"
                )
        if self.drop >= 1.0:
            raise RpcSpecError(
                "drop must be < 1.0 (a channel that loses everything "
                "can never deliver, even with retries)"
            )
        for name in ("delay", "timeout", "backoff"):
            if getattr(self, name) < 0.0:
                raise RpcSpecError(
                    f"{name} must be >= 0, got {getattr(self, name)}"
                )
        if self.retries < 0:
            raise RpcSpecError(f"retries must be >= 0, got {self.retries}")

    @property
    def is_noop(self) -> bool:
        """True when the channel is the identity transform.

        Timeout/retry/backoff are client policy, not channel behaviour;
        they only matter once loss, delay, or duplication exist, so
        they do not disqualify the identity.
        """
        return self.drop == 0.0 and self.delay == 0.0 and self.dup == 0.0

    def describe(self) -> str:
        """Round-trippable spec string (``off`` for the identity)."""
        if self.is_noop:
            return "off"
        parts: List[str] = []
        if self.drop:
            parts.append(f"drop={self.drop:g}")
        if self.delay:
            parts.append(f"delay={self.delay:g}")
        if self.dup:
            parts.append(f"dup={self.dup:g}")
        parts.append(f"timeout={self.timeout:g}")
        parts.append(f"retries={self.retries}")
        parts.append(f"backoff={self.backoff:g}")
        parts.append(f"seed={self.seed}")
        return ",".join(parts)

    def with_seed(self, seed: int) -> "RpcSpec":
        """Copy of this spec with the seed replaced."""
        return replace(self, seed=seed)


def parse_rpc_spec(spec: Optional[str], seed: Optional[int] = None) -> RpcSpec:
    """Parse ``key=value,...`` into an :class:`RpcSpec`.

    ``seed`` (when given) overrides any ``seed=`` in the string, so CLI
    ``--seed`` composes with specs copied from reports.
    """
    if isinstance(spec, RpcSpec):
        return spec if seed is None else spec.with_seed(seed)
    fields: Dict[str, object] = {}
    text = (spec or "").strip()
    if text and text != "off":
        for part in text.split(","):
            part = part.strip()
            if not part:
                continue
            if "=" not in part:
                raise RpcSpecError(
                    f"bad rpc parameter {part!r} (expected key=value)"
                )
            key, _, value = part.partition("=")
            key, value = key.strip(), value.strip()
            try:
                if key in ("drop", "delay", "dup", "timeout", "backoff"):
                    fields[key] = float(value)
                elif key in ("retries", "seed"):
                    fields[key] = int(value)
                else:
                    raise RpcSpecError(
                        f"unknown rpc key {key!r}; expected drop, delay, "
                        f"dup, timeout, retries, backoff, or seed"
                    )
            except ValueError as exc:
                if isinstance(exc, RpcSpecError):
                    raise
                raise RpcSpecError(
                    f"bad value {value!r} for rpc key {key!r}"
                ) from None
    if seed is not None:
        fields["seed"] = seed
    return RpcSpec(**fields)


@dataclass(frozen=True)
class Verdict:
    """The channel's fate for one message copy."""

    delivered: bool
    #: One-way latency for the (first) delivered copy; 0 when dropped.
    latency: float = 0.0
    #: A duplicate copy also arrives (idempotent receivers absorb it).
    duplicated: bool = False


class RpcChannel:
    """One seeded, deterministic lossy RPC channel.

    Stateless across messages by design: the fate of message ``m`` is
    derived from ``(seed, m)`` alone, never from the channel's history.
    That makes verdicts replayable regardless of the order the runtime
    asks for them -- the property the failover/replay path leans on.
    """

    def __init__(
        self,
        spec: Optional[object] = None,
        seed: Optional[int] = None,
    ) -> None:
        self.spec = parse_rpc_spec(spec, seed)
        self.stats: Dict[str, int] = {
            "sent": 0,
            "delivered": 0,
            "dropped": 0,
            "delayed": 0,
            "duplicated": 0,
        }

    @property
    def is_noop(self) -> bool:
        return self.spec.is_noop

    def transmit(self, msg_id: str) -> Verdict:
        """Decide the fate of one message copy, deterministically."""
        self.stats["sent"] += 1
        spec = self.spec
        if spec.is_noop:
            self.stats["delivered"] += 1
            return Verdict(delivered=True)
        rng = random.Random(f"{spec.seed}|{msg_id}")
        if spec.drop > 0.0 and rng.random() < spec.drop:
            self.stats["dropped"] += 1
            return Verdict(delivered=False)
        latency = rng.uniform(0.0, spec.delay) if spec.delay > 0.0 else 0.0
        duplicated = spec.dup > 0.0 and rng.random() < spec.dup
        self.stats["delivered"] += 1
        if latency > 0.0:
            self.stats["delayed"] += 1
        if duplicated:
            self.stats["duplicated"] += 1
        return Verdict(delivered=True, latency=latency, duplicated=duplicated)

    def attempt_cost(self, attempt: int) -> float:
        """Sender-side wall time charged to a failed attempt ``attempt``.

        One timeout wait plus the exponential backoff before the next
        try -- the latency a live client would observe.
        """
        return self.spec.timeout + self.spec.backoff * (2 ** attempt)

    def send_with_retries(self, msg_id: str) -> Verdict:
        """Run the timeout/retry/backoff policy for one logical message.

        Returns the verdict of the first delivered attempt with the
        accumulated sender-side latency (failed attempts charge
        :meth:`attempt_cost`; the delivered copy adds its own one-way
        delay). When every attempt is lost, returns an undelivered
        verdict carrying the full latency spent discovering that.
        """
        latency = 0.0
        for attempt in range(self.spec.retries + 1):
            verdict = self.transmit(f"{msg_id}#{attempt}" if attempt else msg_id)
            if verdict.delivered:
                return Verdict(
                    delivered=True,
                    latency=latency + verdict.latency,
                    duplicated=verdict.duplicated,
                )
            latency += self.attempt_cost(attempt)
        return Verdict(delivered=False, latency=latency)

    def report(self) -> Dict:
        """JSON-able summary of what the channel did."""
        return {"spec": self.spec.describe(), **self.stats}
