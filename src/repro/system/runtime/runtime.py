"""Fault-tolerant control-plane runtime for the Fig. 7 system.

:class:`ControlPlaneRuntime` promotes the in-process Agent/Coordinator
objects of :mod:`repro.system` to a crash-safe service model. Every
Agent<->Coordinator interaction -- EchelonFlow registration, liveness
heartbeats, allocation rounds, post-failover resync -- crosses one
seeded :class:`~repro.system.runtime.rpc.RpcChannel`, so message loss,
delay, and duplication are first-class and deterministic per
``(spec, seed)``.

The runtime has two modes, resolved once per run:

* **passive** -- the channel is the identity and the fault schedule
  contains no control-plane actions. Registration and allocation take
  *exactly* the code path of :class:`~repro.system.EchelonFlowAgent` /
  :class:`~repro.system.CoordinatedScheduler`, so a passive run is
  bit-identical to :func:`repro.system.run_cluster` (the chaos suite
  asserts this by SHA-256 trace digest).

* **active** -- anything can fail. The runtime then maintains:

  - **leases + heartbeats**: each agent heartbeats the coordinator on
    every scheduling round; an agent whose lease expires (crash,
    partition, sustained loss) has its EchelonFlows *quarantined* --
    excluded from the coordinator's merged view, so its flows degrade
    to best-effort singletons instead of stalling the cluster. A
    heartbeat from a quarantined agent re-adopts it and forces a state
    resync.
  - **write-ahead request log + checkpoints**: ``Coordinator.register``
    already appends every request to a durable log; the runtime
    checkpoints the registry (``EchelonFlow.fork()`` per group) every
    ``checkpoint_every`` commits. ``crash_coordinator`` wipes the
    in-memory registry; ``coordinator_restore`` rebuilds it from the
    last checkpoint plus a replay of the post-checkpoint log suffix,
    then bumps the epoch so agents re-sync their live group objects
    (restoring pinned reference times) over the channel.
  - **degraded-mode scheduling with hysteresis**: while the coordinator
    is unreachable, agents first keep serving the last *committed*
    allocation (projected onto the active flow set) and, after
    ``fallback_after`` consecutive failed rounds, fall back to local
    fair sharing -- the :class:`~repro.faults.ResilientScheduler`
    idiom. Switchback requires ``recover_after`` consecutive
    successful rounds, so a flapping channel cannot thrash the policy.
  - **commit latency**: a delivered allocation round with one-way
    latency ``L`` is *computed* now but *committed* (served fresh) at
    ``now + L`` via an engine timer; in between, agents serve the
    previous committed allocation. At most one round is in flight.

Active-mode scheduling rounds set ``last_allocation_was_fallback`` so
the differential twin oracle skips them (a lossy control plane is
intentionally not the reference allocation), exactly as it skips
contained scheduler crashes. Active-mode runs also arm engine timers
with arbitrary callbacks, which makes them ineligible for
snapshot/fork (:mod:`repro.simulator.state` refuses); passive runs
fork fine.

Control-plane faults arrive through the PR 5 grammar
(``crash_agent`` / ``crash_coordinator`` / ``partition_control`` /
``rpc_noise``, see :mod:`repro.faults.schedule`), dispatched by the
injector to :meth:`ControlPlaneRuntime.apply_fault`.
"""

from __future__ import annotations

import copy
from typing import Dict, List, Optional, Tuple

from ...core.echelonflow import EchelonFlow
from ...scheduling.base import Scheduler, SchedulerView
from ...scheduling.fairshare import FairSharingScheduler
from ..coordinator import Coordinator
from ..messages import ArrangementDescriptor, EchelonFlowRequest, FlowInfo
from .rpc import RpcChannel, RpcSpec, parse_rpc_spec

#: Weight multiplier for quarantined tenants: small enough that the
#: weighted-tardiness orderings rank them behind every healthy tenant
#: (Smith's rule divides positive lateness by the weight), large enough
#: to stay a valid positive EchelonFlow weight.
QUARANTINE_WEIGHT = 1e-3


class RuntimeAgent:
    """Per-framework agent process speaking to the coordinator over RPC.

    Duck-types :class:`~repro.system.EchelonFlowAgent` where it matters
    (``report_echelonflow`` / ``registered``), so
    :class:`~repro.system.FrameworkInstance` drives it unchanged.
    """

    def __init__(self, framework: str, runtime: "ControlPlaneRuntime") -> None:
        self.framework = framework
        self.runtime = runtime
        #: Process liveness (flipped by crash_agent / agent_restore).
        self.up = True
        #: Control-network reachability (partition_control with a target).
        self.partitioned = False
        #: True while the coordinator considers this agent dead.
        self.quarantined = False
        #: Sim-time the current liveness lease runs out (None = no lease yet).
        self.lease_expires: Optional[float] = None
        #: Coordinator epoch this agent last synced its state against;
        #: -1 forces a full resync on the next delivered heartbeat.
        self.synced_epoch = 0
        #: ef_id -> (request, live EchelonFlow) for everything reported.
        self.records: Dict[str, Tuple[EchelonFlowRequest, EchelonFlow]] = {}
        #: ef_id -> the object scheduling consults (parity with
        #: EchelonFlowAgent.registered).
        self.registered: Dict[str, EchelonFlow] = {}

    # -- EchelonFlow API -------------------------------------------------

    def report_echelonflow(self, echelonflow: EchelonFlow) -> EchelonFlow:
        """Report one EchelonFlow through the control plane."""
        if echelonflow.ef_id in self.registered:
            raise ValueError(
                f"agent {self.framework!r} already reported {echelonflow.ef_id!r}"
            )
        flows = tuple(
            FlowInfo(
                flow_id=flow.flow_id,
                src=flow.src,
                dst=flow.dst,
                size=flow.size,
                index_in_group=flow.index_in_group,
            )
            for flow in echelonflow.flows
        )
        request = EchelonFlowRequest(
            ef_id=echelonflow.ef_id,
            job_id=echelonflow.job_id or self.framework,
            framework=self.framework,
            arrangement=ArrangementDescriptor.from_arrangement(
                echelonflow.arrangement, echelonflow.index_count
            ),
            flows=flows,
        )
        registered = self.runtime.register(self, request, echelonflow)
        self.registered[echelonflow.ef_id] = registered
        return registered

    @property
    def ef_ids(self) -> Tuple[str, ...]:
        return tuple(self.records)


class ControlPlaneRuntime:
    """The crash-safe Coordinator/Agent service around one engine run."""

    def __init__(
        self,
        coordinator: Optional[Coordinator] = None,
        rpc: Optional[object] = None,
        seed: Optional[int] = None,
        lease: float = 0.25,
        heartbeat: float = 0.1,
        fallback_after: int = 2,
        recover_after: int = 2,
        checkpoint_every: int = 4,
        fallback: Optional[Scheduler] = None,
    ) -> None:
        if lease <= 0:
            raise ValueError(f"lease must be positive, got {lease}")
        if fallback_after < 1 or recover_after < 1:
            raise ValueError("fallback_after and recover_after must be >= 1")
        if checkpoint_every < 1:
            raise ValueError(
                f"checkpoint_every must be >= 1, got {checkpoint_every}"
            )
        self.coordinator = coordinator or Coordinator()
        self.base_spec: RpcSpec = parse_rpc_spec(rpc, seed)
        self.channel = RpcChannel(self.base_spec)
        self.lease = lease
        self.heartbeat = heartbeat
        self.fallback_after = fallback_after
        self.recover_after = recover_after
        self.checkpoint_every = checkpoint_every
        self.fallback = fallback if fallback is not None else FairSharingScheduler()
        self.engine = None
        #: Resolved lazily on first use (the injector attaches after the
        #: scheduler's on_attached hook, so the fault schedule is not
        #: known at attach time).
        self._active: Optional[bool] = None
        self._agents: Dict[str, RuntimeAgent] = {}
        # -- coordinator-side service state --
        self.coordinator_up = True
        self.global_partition = False
        self.epoch = 0
        #: Quarantined agents' ef_ids, excluded from the merged view.
        self.quarantined: set = set()
        #: Last checkpoint: WAL index + forked registry.
        self._checkpoint: Dict = {"wal_index": 0, "groups": {}}
        self._commits_since_checkpoint = 0
        # -- agent-side degraded-mode state --
        self.state = "coordinated"  # or "degraded"
        self.consecutive_failures = 0
        self.consecutive_successes = 0
        self.last_committed: Optional[Dict[int, float]] = None
        self._commit_pending = False
        self._retry_armed = False
        self._alloc_seq = 0
        self._hb_seq = 0
        self._resync_seq = 0
        self.counters: Dict[str, int] = {
            "registrations": 0,
            "registrations_deferred": 0,
            "duplicates_absorbed": 0,
            "heartbeats": 0,
            "heartbeats_lost": 0,
            "quarantines": 0,
            "readoptions": 0,
            "resynced_groups": 0,
            "rounds": 0,
            "round_failures": 0,
            "stale_rounds": 0,
            "degraded_rounds": 0,
            "degraded_enters": 0,
            "degraded_exits": 0,
            "commits": 0,
            "checkpoints": 0,
            "failovers": 0,
            "replayed_requests": 0,
            "recovered_groups": 0,
        }
        #: One record per control-plane state transition (the obs feed).
        self.control_log: List[Dict] = []

    # -- wiring ----------------------------------------------------------

    def attach(self, engine) -> None:
        if self.engine is not None and self.engine is not engine:
            raise ValueError(
                "ControlPlaneRuntime is already attached; build one per engine"
            )
        self.engine = engine

    def spawn_agent(self, framework: str) -> RuntimeAgent:
        if framework in self._agents:
            raise ValueError(f"agent {framework!r} already spawned")
        agent = RuntimeAgent(framework, self)
        self._agents[framework] = agent
        return agent

    @property
    def agents(self) -> Dict[str, RuntimeAgent]:
        return dict(self._agents)

    @property
    def active(self) -> bool:
        """True when any control-plane failure mode is in play this run."""
        if self._active is None:
            has_control = False
            injector = getattr(self.engine, "faults", None)
            if injector is not None:
                has_control = injector.schedule.has_control_faults
            self._active = (not self.base_spec.is_noop) or has_control
        return self._active

    # -- obs -------------------------------------------------------------

    def _emit(self, kind: str, now: float, **fields) -> Dict:
        record = {"time": now, "kind": kind, **fields}
        self.control_log.append(record)
        engine = self.engine
        if engine is not None and engine.obs is not None:
            notify = getattr(engine.obs, "on_control_event", None)
            if notify is not None:
                notify(record, now)
        return record

    def _now(self) -> float:
        return self.engine.now if self.engine is not None else 0.0

    # -- registration ----------------------------------------------------

    def register(
        self,
        agent: RuntimeAgent,
        request: EchelonFlowRequest,
        live: EchelonFlow,
    ) -> EchelonFlow:
        """Handle one agent registration; returns the object to schedule by."""
        self.counters["registrations"] += 1
        now = self._now()
        if agent.lease_expires is None:
            agent.lease_expires = now + self.lease
        if not self.active:
            # Bit-identical mirror of EchelonFlowAgent.report_echelonflow.
            registered = self.coordinator.register(request)
            for flow in live.flows:
                registered.add_flow(flow)
            return registered
        agent.records[request.ef_id] = (request, live)
        verdict = self.channel.send_with_retries(f"reg|{request.ef_id}")
        if not verdict.delivered:
            # Every attempt lost: defer to the heartbeat-driven resync.
            self.counters["registrations_deferred"] += 1
            agent.synced_epoch = -1
            self._emit("registration_deferred", now,
                       agent=agent.framework, ef_id=request.ef_id)
        elif verdict.latency > 0.0 and self.engine is not None:
            ef_id = request.ef_id
            self.engine.schedule_callback(
                now + verdict.latency,
                lambda: self._install(agent, ef_id),
            )
        else:
            self._install(agent, request.ef_id)
        return live

    def _install(self, agent: RuntimeAgent, ef_id: str) -> None:
        """Idempotently land one registration on the coordinator.

        Appends to the WAL on first delivery; later copies (duplicates,
        resyncs) only swap the live object back into the registry, which
        is what restores pinned reference times after a failover rebuilt
        the group from the log.
        """
        record = agent.records.get(ef_id)
        if record is None:
            return
        request, live = record
        registry = self.coordinator.echelonflows
        if ef_id in registry:
            if registry[ef_id] is live:
                self.counters["duplicates_absorbed"] += 1
                return
            registry[ef_id] = live
            self.counters["resynced_groups"] += 1
            return
        self.coordinator.register(request)
        registry[ef_id] = live

    # -- liveness pump ---------------------------------------------------

    def _pump(self, now: float) -> None:
        """Heartbeats, lease expiry, quarantine, re-adoption, resync."""
        reachable = self.coordinator_up and not self.global_partition
        for agent in self._agents.values():
            if not agent.up or agent.partitioned or not reachable:
                self._check_lease(agent, now)
                continue
            self._hb_seq += 1
            self.counters["heartbeats"] += 1
            verdict = self.channel.transmit(
                f"hb|{agent.framework}|{self._hb_seq}"
            )
            if not verdict.delivered:
                self.counters["heartbeats_lost"] += 1
                self._check_lease(agent, now)
                continue
            agent.lease_expires = now + self.lease
            if agent.quarantined:
                self._readopt(agent, now)
            if agent.synced_epoch < self.epoch:
                self._resync(agent, now)

    def _check_lease(self, agent: RuntimeAgent, now: float) -> None:
        if agent.quarantined or agent.lease_expires is None:
            return
        if now > agent.lease_expires:
            agent.quarantined = True
            self.quarantined.update(agent.ef_ids)
            self.counters["quarantines"] += 1
            self._emit("quarantine", now, agent=agent.framework,
                       groups=len(agent.records))

    def _readopt(self, agent: RuntimeAgent, now: float) -> None:
        agent.quarantined = False
        self.quarantined.difference_update(agent.ef_ids)
        agent.synced_epoch = -1  # state may have moved; force resync
        self.counters["readoptions"] += 1
        self._emit("readopt", now, agent=agent.framework)

    def _resync(self, agent: RuntimeAgent, now: float) -> None:
        self._resync_seq += 1
        verdict = self.channel.transmit(
            f"resync|{agent.framework}|e{self.epoch}|{self._resync_seq}"
        )
        if not verdict.delivered:
            return  # next delivered heartbeat retries
        before = self.counters["resynced_groups"]
        for ef_id in agent.records:
            self._install(agent, ef_id)
        agent.synced_epoch = self.epoch
        self._emit("resync", now, agent=agent.framework,
                   groups=self.counters["resynced_groups"] - before)

    # -- scheduling ------------------------------------------------------

    def allocate_passive(self, view: SchedulerView) -> Dict[int, float]:
        """Exactly CoordinatedScheduler.allocate -- the bit-identity path."""
        merged = dict(view.echelonflows)
        merged.update(self.coordinator.echelonflows)
        coordinator_view = SchedulerView(
            now=view.now,
            network=view.network,
            echelonflows=merged,
            trigger_cause=view.trigger_cause,
            injected_flows=view.injected_flows,
            departed_flows=view.departed_flows,
        )
        return self.coordinator.allocate(coordinator_view)

    def allocate_active(self, view: SchedulerView) -> Dict[int, float]:
        now = view.now
        self.counters["rounds"] += 1
        self._pump(now)
        if self._commit_pending:
            # A round is in flight; serve the last committed allocation
            # until its commit timer lands.
            self.counters["stale_rounds"] += 1
            return self._serve_stale(view)
        if not (self.coordinator_up and not self.global_partition):
            return self._round_failure(view, "unreachable")
        self._alloc_seq += 1
        verdict = self.channel.send_with_retries(f"alloc|{self._alloc_seq}")
        if not verdict.delivered:
            return self._round_failure(view, "rpc")
        # Round succeeded: hysteresis bookkeeping, then compute.
        self.consecutive_failures = 0
        self.consecutive_successes += 1
        if (
            self.state == "degraded"
            and self.consecutive_successes >= self.recover_after
        ):
            self.state = "coordinated"
            self.counters["degraded_exits"] += 1
            self._emit("degraded_exit", now)
        rates = self._coordinated_rates(view)
        if verdict.latency > 0.0 and self.engine is not None:
            self._commit_pending = True
            self.engine.schedule_callback(
                now + verdict.latency,
                lambda: self._commit(rates),
            )
            if self.state == "degraded":
                self.counters["degraded_rounds"] += 1
                return self.fallback.allocate(view)
            return self._serve_stale(view)
        self._record_commit(rates)
        if self.state == "degraded":
            self.counters["degraded_rounds"] += 1
            return self.fallback.allocate(view)
        return rates

    def _coordinated_rates(self, view: SchedulerView) -> Dict[int, float]:
        merged = dict(view.echelonflows)
        merged.update(self.coordinator.echelonflows)
        for ef_id in self.quarantined:
            group = merged.get(ef_id)
            if group is None:
                continue
            # A quarantined tenant's deadlines can't be trusted (its
            # agent is gone), so the coordinator serves it best-effort:
            # a down-weighted fork sorts behind every healthy tenant in
            # the weighted-tardiness orderings without perturbing the
            # live group the agent re-adopts on resync.
            demoted = group.fork()
            demoted.weight = group.weight * QUARANTINE_WEIGHT
            merged[ef_id] = demoted
        coordinator_view = SchedulerView(
            now=view.now,
            network=view.network,
            echelonflows=merged,
            trigger_cause=view.trigger_cause,
            injected_flows=view.injected_flows,
            departed_flows=view.departed_flows,
        )
        return self.coordinator.allocate(coordinator_view)

    def _commit(self, rates: Dict[int, float]) -> None:
        self._commit_pending = False
        self._record_commit(rates)
        # The TIMER event triggers a reschedule, which serves these
        # fresh rates (or issues the next round).

    def _record_commit(self, rates: Dict[int, float]) -> None:
        self.last_committed = dict(rates)
        self.counters["commits"] += 1
        self._commits_since_checkpoint += 1
        if self._commits_since_checkpoint >= self.checkpoint_every:
            self._take_checkpoint()

    def _take_checkpoint(self) -> None:
        self._commits_since_checkpoint = 0
        self._checkpoint = {
            "wal_index": len(self.coordinator.request_log),
            "groups": {
                ef_id: ef.fork()
                for ef_id, ef in self.coordinator.echelonflows.items()
            },
        }
        self.counters["checkpoints"] += 1
        self._emit("checkpoint", self._now(),
                   groups=len(self._checkpoint["groups"]),
                   wal_index=self._checkpoint["wal_index"])

    def _round_failure(self, view: SchedulerView, kind: str) -> Dict[int, float]:
        now = view.now
        self.consecutive_successes = 0
        self.consecutive_failures += 1
        self.counters["round_failures"] += 1
        if (
            self.state == "coordinated"
            and self.consecutive_failures >= self.fallback_after
        ):
            self.state = "degraded"
            self.counters["degraded_enters"] += 1
            self._emit("degraded_enter", now, cause=kind)
        if kind == "rpc" and not self._retry_armed and self.engine is not None:
            spec = self.channel.spec
            interval = max(spec.timeout + spec.backoff, 1e-3)
            self._retry_armed = True
            self.engine.schedule_callback(now + interval, self._retry_fired)
        if self.state == "degraded":
            self.counters["degraded_rounds"] += 1
            return self.fallback.allocate(view)
        return self._serve_stale(view)

    def _retry_fired(self) -> None:
        # The TIMER event's reschedule performs the actual retry.
        self._retry_armed = False

    def _serve_stale(self, view: SchedulerView) -> Dict[int, float]:
        """Last committed allocation, or fair share when it went stale.

        A committed allocation is only served when it still *covers*
        every active flow: a flow that arrived after the commit has no
        committed rate, and starving it until the next commit would
        stall pipelined jobs (sequential short flows each losing one
        commit interval compounds fast). Incomplete, infeasible, or
        absent commits degrade the round to local fair sharing instead.
        """
        committed = self.last_committed
        if committed:
            rates: Dict[int, float] = {}
            covered = True
            for state in view.active_states():
                flow_id = state.flow.flow_id
                rate = committed.get(flow_id)
                if rate is None:
                    covered = False
                    break
                rates[flow_id] = rate
            if covered and rates and view.network.validate_rates(rates):
                return rates
        return self.fallback.allocate(view)

    # -- fault dispatch --------------------------------------------------

    def apply_fault(self, event) -> None:
        """Dispatch one control-plane FaultEvent (called by the injector)."""
        now = self._now()
        action = event.action
        if action == "crash_agent":
            agent = self._agent_for(event.target)
            agent.up = False
            self._emit("agent_crash", now, agent=agent.framework)
        elif action == "agent_restore":
            agent = self._agent_for(event.target)
            agent.up = True
            agent.synced_epoch = -1
            self._emit("agent_restore", now, agent=agent.framework)
        elif action == "crash_coordinator":
            self.coordinator_up = False
            # In-memory registry dies with the process; the WAL
            # (request_log) is the durable part.
            self.coordinator.echelonflows.clear()
            self._emit("coordinator_crash", now)
        elif action == "coordinator_restore":
            self._failover(now)
        elif action == "partition_control":
            if event.target is not None:
                self._agent_for(event.target).partitioned = True
            else:
                self.global_partition = True
            self._emit("partition", now, agent=event.target)
        elif action == "partition_heal":
            if event.target is not None:
                self._agent_for(event.target).partitioned = False
            else:
                self.global_partition = False
                for agent in self._agents.values():
                    agent.partitioned = False
            self._emit("partition_heal", now, agent=event.target)
        elif action == "rpc_noise":
            parsed = parse_rpc_spec(event.spec)
            if "seed" not in (event.spec or ""):
                parsed = parsed.with_seed(self.base_spec.seed)
            self.channel = RpcChannel(parsed)
            self._emit("rpc_noise", now, spec=parsed.describe())
        elif action == "rpc_restore":
            self.channel = RpcChannel(self.base_spec)
            self._emit("rpc_restore", now, spec=self.base_spec.describe())
        else:  # pragma: no cover - the grammar should prevent this
            raise ValueError(f"unknown control-plane action {action!r}")

    def _agent_for(self, target: Optional[str]) -> RuntimeAgent:
        agent = self._agents.get(target or "")
        if agent is None:
            raise ValueError(
                f"control fault targets unknown agent {target!r}; "
                f"known agents: {sorted(self._agents)}"
            )
        return agent

    def _failover(self, now: float) -> None:
        """coordinator_restore: rebuild the registry, bump the epoch."""
        self.coordinator_up = True
        self.epoch += 1
        self.counters["failovers"] += 1
        checkpoint = self._checkpoint
        registry = self.coordinator.echelonflows
        registry.clear()
        for ef_id, forked in checkpoint["groups"].items():
            registry[ef_id] = forked.fork()
            self.counters["recovered_groups"] += 1
        replayed = 0
        for request in self.coordinator.request_log[checkpoint["wal_index"]:]:
            if request.ef_id in registry:
                continue
            # Rebuilt from the log alone: unpinned and memberless until
            # the owning agent resyncs its live object -- schedulers
            # treat such groups as deadline-less, which is safe.
            registry[request.ef_id] = EchelonFlow(
                request.ef_id,
                request.arrangement.build(),
                job_id=request.job_id,
            )
            replayed += 1
        self.counters["replayed_requests"] += replayed
        self._emit(
            "failover", now,
            recovered=len(checkpoint["groups"]),
            replayed=replayed,
            epoch=self.epoch,
        )

    # -- reporting / copying ---------------------------------------------

    def report(self) -> Dict:
        """JSON-able summary for the chaos table and obs dumps."""
        return {
            "mode": "active" if self.active else "passive",
            "state": self.state,
            "epoch": self.epoch,
            "channel": self.channel.report(),
            "quarantined": sorted(self.quarantined),
            **self.counters,
        }

    def __deepcopy__(self, memo):
        # The twin oracle deepcopies engine.scheduler; dragging the
        # engine along would copy the whole run. Copy everything else.
        clone = object.__new__(type(self))
        memo[id(self)] = clone
        for key, value in self.__dict__.items():
            if key == "engine":
                clone.engine = None
            else:
                clone.__dict__[key] = copy.deepcopy(value, memo)
        return clone


class ControlPlaneScheduler(Scheduler):
    """Engine adapter: schedules through a :class:`ControlPlaneRuntime`.

    Passive mode is bit-identical to
    :class:`~repro.system.CoordinatedScheduler`; active mode flags every
    invocation as a fallback so the differential twin oracle skips it
    (lossy control-plane rounds are intentionally not the reference
    allocation).
    """

    name = "control-plane"

    def __init__(self, runtime: ControlPlaneRuntime) -> None:
        self.runtime = runtime
        self.last_allocation_was_fallback = False

    @property
    def work_conserving(self) -> bool:
        if self.runtime.active:
            # Stale commits and quarantine rounds cannot promise it.
            return False
        return getattr(
            self.runtime.coordinator.algorithm, "work_conserving", False
        )

    def on_attached(self, engine) -> None:
        engine.control_plane = self.runtime
        self.runtime.attach(engine)

    def allocate(self, view: SchedulerView) -> Dict[int, float]:
        runtime = self.runtime
        if not runtime.active:
            self.last_allocation_was_fallback = False
            return runtime.allocate_passive(view)
        self.last_allocation_was_fallback = True
        return runtime.allocate_active(view)

    def fork(self) -> "ControlPlaneScheduler":
        clone = type(self)(copy.deepcopy(self.runtime))
        clone.last_allocation_was_fallback = self.last_allocation_was_fallback
        return clone

    def __deepcopy__(self, memo):
        clone = type(self)(copy.deepcopy(self.runtime, memo))
        clone.last_allocation_was_fallback = self.last_allocation_was_fallback
        memo[id(self)] = clone
        return clone
