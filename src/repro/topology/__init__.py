"""Network topologies, fabric builders, and routing."""

from .fabrics import (
    big_switch,
    dumbbell,
    fat_tree,
    leaf_spine,
    linear_chain,
    two_hosts,
)
from .graph import Link, Topology
from .routing import EcmpRouter, RoutingError, ShortestPathRouter, widest_bottleneck

__all__ = [
    "Topology",
    "Link",
    "big_switch",
    "dumbbell",
    "two_hosts",
    "linear_chain",
    "leaf_spine",
    "fat_tree",
    "ShortestPathRouter",
    "EcmpRouter",
    "RoutingError",
    "widest_bottleneck",
]
