"""Standard data-center fabric builders.

Three fabrics cover all experiments:

* :func:`big_switch` -- the non-blocking abstraction used by Varys and by the
  paper's motivating example: every host hangs off one giant switch, so the
  only contention points are host NICs ("ports").
* :func:`leaf_spine` -- a two-tier Clos; oversubscription makes core links
  contended, which exercises path-aware scheduling.
* :func:`fat_tree` -- the classic k-ary fat tree for scalability studies.

All builders name hosts ``h0, h1, ...`` so placement code can be generic.
"""

from __future__ import annotations

from typing import List, Optional

from .graph import Topology


def big_switch(
    n_hosts: int,
    host_bandwidth: float,
    name: str = "big-switch",
) -> Topology:
    """A single non-blocking switch with ``n_hosts`` hosts.

    Each host gets a full-duplex link of ``host_bandwidth`` to the switch;
    the fabric itself never congests, matching the big-switch model in which
    MADD's ``Gamma`` is exact.
    """
    if n_hosts < 1:
        raise ValueError(f"need at least one host, got {n_hosts}")
    topo = Topology(name)
    topo.add_switch("core")
    for i in range(n_hosts):
        host = f"h{i}"
        topo.add_host(host)
        topo.add_duplex_link(host, "core", host_bandwidth)
    return topo


def two_hosts(link_bandwidth: float, name: str = "two-hosts") -> Topology:
    """Two hosts joined by one full-duplex link -- the Fig. 2 setting."""
    topo = Topology(name)
    topo.add_host("h0")
    topo.add_host("h1")
    topo.add_duplex_link("h0", "h1", link_bandwidth)
    return topo


def linear_chain(
    n_hosts: int, link_bandwidth: float, name: str = "chain"
) -> Topology:
    """Hosts in a line, matching a pipeline-parallel stage placement.

    Host ``h{i}`` connects to ``h{i+1}`` with a full-duplex link. Pipeline
    activations travel forward along the chain and gradients backward.
    """
    if n_hosts < 2:
        raise ValueError(f"need at least two hosts, got {n_hosts}")
    topo = Topology(name)
    for i in range(n_hosts):
        topo.add_host(f"h{i}")
    for i in range(n_hosts - 1):
        topo.add_duplex_link(f"h{i}", f"h{i + 1}", link_bandwidth)
    return topo


def dumbbell(
    n_left: int,
    n_right: int,
    host_bandwidth: float,
    bottleneck_bandwidth: float,
    name: str = "dumbbell",
) -> Topology:
    """Two host groups joined by one shared bottleneck link.

    The canonical congestion topology: all left-to-right traffic squeezes
    through the middle, so cross-group flows always contend while
    intra-group flows never do.
    """
    if n_left < 1 or n_right < 1:
        raise ValueError("both sides need at least one host")
    if bottleneck_bandwidth <= 0:
        raise ValueError(
            f"bottleneck bandwidth must be positive, got {bottleneck_bandwidth}"
        )
    topo = Topology(name)
    topo.add_switch("sw-left")
    topo.add_switch("sw-right")
    topo.add_duplex_link("sw-left", "sw-right", bottleneck_bandwidth)
    host_index = 0
    for _ in range(n_left):
        host = f"h{host_index}"
        topo.add_host(host)
        topo.add_duplex_link(host, "sw-left", host_bandwidth)
        host_index += 1
    for _ in range(n_right):
        host = f"h{host_index}"
        topo.add_host(host)
        topo.add_duplex_link(host, "sw-right", host_bandwidth)
        host_index += 1
    return topo


def leaf_spine(
    n_leaves: int,
    hosts_per_leaf: int,
    host_bandwidth: float,
    n_spines: int = 2,
    oversubscription: float = 1.0,
    name: str = "leaf-spine",
) -> Topology:
    """A two-tier leaf-spine Clos fabric.

    Each leaf's total uplink capacity is ``hosts_per_leaf * host_bandwidth /
    oversubscription`` split evenly across spines. ``oversubscription > 1``
    makes the core a contention point.
    """
    if n_leaves < 1 or hosts_per_leaf < 1 or n_spines < 1:
        raise ValueError("leaf/host/spine counts must all be positive")
    if oversubscription <= 0:
        raise ValueError(f"oversubscription must be positive, got {oversubscription}")
    topo = Topology(name)
    uplink = hosts_per_leaf * host_bandwidth / oversubscription / n_spines
    for s in range(n_spines):
        topo.add_switch(f"spine{s}")
    host_index = 0
    for leaf_index in range(n_leaves):
        leaf = f"leaf{leaf_index}"
        topo.add_switch(leaf)
        for s in range(n_spines):
            topo.add_duplex_link(leaf, f"spine{s}", uplink)
        for _ in range(hosts_per_leaf):
            host = f"h{host_index}"
            topo.add_host(host)
            topo.add_duplex_link(host, leaf, host_bandwidth)
            host_index += 1
    return topo


def fat_tree(k: int, link_bandwidth: float, name: Optional[str] = None) -> Topology:
    """A k-ary fat tree (k even): ``k^3/4`` hosts, uniform link capacity.

    Nodes: ``(k/2)^2`` core switches, ``k`` pods each with ``k/2`` aggregation
    and ``k/2`` edge switches, ``k/2`` hosts per edge switch.
    """
    if k < 2 or k % 2 != 0:
        raise ValueError(f"fat tree arity must be even and >= 2, got {k}")
    half = k // 2
    topo = Topology(name or f"fat-tree-{k}")
    core: List[str] = []
    for i in range(half * half):
        switch = f"core{i}"
        topo.add_switch(switch)
        core.append(switch)
    host_index = 0
    for pod in range(k):
        aggs = []
        edges = []
        for a in range(half):
            agg = f"p{pod}a{a}"
            topo.add_switch(agg)
            aggs.append(agg)
        for e in range(half):
            edge = f"p{pod}e{e}"
            topo.add_switch(edge)
            edges.append(edge)
        for a, agg in enumerate(aggs):
            for e in range(half):
                topo.add_duplex_link(agg, edges[e], link_bandwidth)
            for c in range(half):
                topo.add_duplex_link(agg, core[a * half + c], link_bandwidth)
        for edge in edges:
            for _ in range(half):
                host = f"h{host_index}"
                topo.add_host(host)
                topo.add_duplex_link(host, edge, link_bandwidth)
                host_index += 1
    return topo
