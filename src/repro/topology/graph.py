"""Capacitated network topologies.

A :class:`Topology` is a directed multigraph of named nodes connected by
capacitated :class:`Link` objects. Hosts (GPU servers) are the only legal
flow endpoints; switches forward traffic. Routing (path selection) lives in
:mod:`repro.topology.routing`; this module only stores structure.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Dict, Iterable, Iterator, List, Optional, Tuple


@dataclass(eq=False)
class Link:
    """A directed link with a capacity in bytes per second.

    Links hash by identity (``eq=False``): every link is owned by exactly one
    :class:`Topology` and shared by reference, so identity semantics survive
    runtime capacity mutation (fault injection) without invalidating any dict
    keyed by the link object.
    """

    src: str
    dst: str
    capacity: float

    def __post_init__(self) -> None:
        if self.capacity <= 0:
            raise ValueError(
                f"link {self.src}->{self.dst} capacity must be positive, "
                f"got {self.capacity}"
            )
        if self.src == self.dst:
            raise ValueError(f"self-loop link at {self.src!r}")
        self.nominal_capacity = self.capacity

    @property
    def key(self) -> Tuple[str, str]:
        return (self.src, self.dst)


class Topology:
    """Directed capacitated graph with host/switch node roles."""

    def __init__(self, name: str = "topology") -> None:
        self.name = name
        self._hosts: Dict[str, dict] = {}
        self._switches: Dict[str, dict] = {}
        self._links: Dict[Tuple[str, str], Link] = {}
        self._out_links: Dict[str, List[Link]] = {}
        self._in_links: Dict[str, List[Link]] = {}

    # ------------------------------------------------------------------
    # construction
    # ------------------------------------------------------------------

    def add_host(self, name: str, **attrs) -> None:
        if name in self._hosts or name in self._switches:
            raise ValueError(f"duplicate node name {name!r}")
        self._hosts[name] = dict(attrs)

    def add_switch(self, name: str, **attrs) -> None:
        if name in self._hosts or name in self._switches:
            raise ValueError(f"duplicate node name {name!r}")
        self._switches[name] = dict(attrs)

    def add_link(self, src: str, dst: str, capacity: float) -> Link:
        """Add a directed link; both endpoints must already exist."""
        for node in (src, dst):
            if node not in self._hosts and node not in self._switches:
                raise KeyError(f"unknown node {node!r}")
        link = Link(src, dst, capacity)
        if link.key in self._links:
            raise ValueError(f"duplicate link {src!r}->{dst!r}")
        self._links[link.key] = link
        self._out_links.setdefault(src, []).append(link)
        self._in_links.setdefault(dst, []).append(link)
        return link

    def add_duplex_link(self, a: str, b: str, capacity: float) -> Tuple[Link, Link]:
        """Add a pair of directed links (full duplex)."""
        return self.add_link(a, b, capacity), self.add_link(b, a, capacity)

    def clone(self) -> "Topology":
        """An independent copy with fresh :class:`Link` objects.

        Current *and* nominal capacities are preserved, including the
        runtime-mutated ones fault injection leaves behind (a downed
        link's capacity 0 is legal at runtime but not at construction,
        so links are built at their nominal capacity and then restamped).
        Node attribute dicts are copied shallowly. Forked engines route
        and mutate capacities on the clone without touching the parent.
        """
        twin = Topology(self.name)
        for name, attrs in self._hosts.items():
            twin._hosts[name] = dict(attrs)
        for name, attrs in self._switches.items():
            twin._switches[name] = dict(attrs)
        for key, link in self._links.items():
            copied = twin.add_link(link.src, link.dst, link.nominal_capacity)
            copied.capacity = link.capacity
        return twin

    def set_link_capacity(self, src: str, dst: str, capacity: float) -> Link:
        """Mutate a link's capacity in place (fault injection / repair).

        Unlike construction, a runtime capacity of 0 is legal: it models a
        downed link. Negative capacities are rejected. Returns the link.
        """
        if capacity < 0:
            raise ValueError(
                f"link {src}->{dst} capacity must be >= 0, got {capacity}"
            )
        link = self.link(src, dst)
        link.capacity = capacity
        return link

    # ------------------------------------------------------------------
    # queries
    # ------------------------------------------------------------------

    @property
    def hosts(self) -> List[str]:
        return sorted(self._hosts)

    @property
    def switches(self) -> List[str]:
        return sorted(self._switches)

    @property
    def nodes(self) -> List[str]:
        return sorted(list(self._hosts) + list(self._switches))

    def is_host(self, name: str) -> bool:
        return name in self._hosts

    def has_node(self, name: str) -> bool:
        return name in self._hosts or name in self._switches

    def links(self) -> Iterator[Link]:
        return iter(self._links.values())

    def link(self, src: str, dst: str) -> Link:
        try:
            return self._links[(src, dst)]
        except KeyError:
            raise KeyError(f"no link {src!r}->{dst!r} in topology {self.name!r}")

    def has_link(self, src: str, dst: str) -> bool:
        return (src, dst) in self._links

    def out_links(self, node: str) -> List[Link]:
        return list(self._out_links.get(node, []))

    def in_links(self, node: str) -> List[Link]:
        return list(self._in_links.get(node, []))

    def host_egress_capacity(self, host: str) -> float:
        """Total uplink capacity of a host (its egress "port" in Varys terms)."""
        links = self._out_links.get(host, [])
        if not links:
            raise KeyError(f"host {host!r} has no outgoing links")
        return sum(link.capacity for link in links)

    def host_ingress_capacity(self, host: str) -> float:
        links = self._in_links.get(host, [])
        if not links:
            raise KeyError(f"host {host!r} has no incoming links")
        return sum(link.capacity for link in links)

    def validate_endpoints(self, src: str, dst: str) -> None:
        """Flow endpoints must be distinct hosts."""
        if not self.is_host(src):
            raise ValueError(f"flow source {src!r} is not a host")
        if not self.is_host(dst):
            raise ValueError(f"flow destination {dst!r} is not a host")
        if src == dst:
            raise ValueError(f"flow endpoints must differ ({src!r})")

    def __repr__(self) -> str:  # pragma: no cover - cosmetic
        return (
            f"Topology<{self.name} hosts={len(self._hosts)} "
            f"switches={len(self._switches)} links={len(self._links)}>"
        )
