"""Routing: turn (src, dst) host pairs into link paths.

Flow scheduling allocates rates on links along a fixed path, so routes are
computed once per topology and cached. Two policies:

* :class:`ShortestPathRouter` -- deterministic shortest path (ties broken by
  node name for reproducibility).
* :class:`EcmpRouter` -- equal-cost multi-path; picks among shortest paths by
  a stable hash of the flow id, approximating per-flow ECMP spraying.

Both return paths as tuples of :class:`~repro.topology.graph.Link`.
"""

from __future__ import annotations

import heapq
from typing import Dict, FrozenSet, List, Optional, Sequence, Set, Tuple

from .graph import Link, Topology


class RoutingError(Exception):
    """Raised when no path exists between requested endpoints."""


def _all_shortest_paths(
    topo: Topology,
    src: str,
    dst: str,
    limit: int = 16,
    blocked: Optional[FrozenSet[Tuple[str, str]]] = None,
) -> List[Tuple[str, ...]]:
    """Enumerate up to ``limit`` shortest hop-count node paths src -> dst.

    A small custom BFS/Dijkstra keeps the dependency surface minimal and the
    tie-breaking deterministic (lexicographic by node path). Links whose
    ``(src, dst)`` key is in ``blocked`` are treated as absent (downed).
    """
    if src == dst:
        return [(src,)]
    blocked = blocked or frozenset()
    # BFS level computation.
    dist: Dict[str, int] = {src: 0}
    frontier = [src]
    while frontier and dst not in dist:
        next_frontier: List[str] = []
        for node in frontier:
            for link in topo.out_links(node):
                if link.key in blocked:
                    continue
                if link.dst not in dist:
                    dist[link.dst] = dist[node] + 1
                    next_frontier.append(link.dst)
        frontier = next_frontier
    if dst not in dist:
        raise RoutingError(f"no path from {src!r} to {dst!r}")
    # Enumerate shortest paths by DFS over the BFS DAG, lexicographic order.
    target_len = dist[dst]
    paths: List[Tuple[str, ...]] = []

    def extend(path: List[str]) -> None:
        if len(paths) >= limit:
            return
        node = path[-1]
        if node == dst:
            paths.append(tuple(path))
            return
        if len(path) - 1 >= target_len:
            return
        for link in sorted(topo.out_links(node), key=lambda l: l.dst):
            if link.key in blocked:
                continue
            nxt = link.dst
            if dist.get(nxt, -1) == len(path):
                path.append(nxt)
                extend(path)
                path.pop()

    extend([src])
    return paths


def _shortest_paths_or_degraded(
    topo: Topology,
    src: str,
    dst: str,
    limit: int,
    blocked: FrozenSet[Tuple[str, str]],
) -> List[Tuple[str, ...]]:
    """Prefer paths that avoid blocked links; fall back to ignoring them.

    When an outage disconnects a host pair entirely (single-path fabrics,
    or every equal-cost path down), flows admitted during the outage still
    need a pinned route: they take the downed path and stall at zero
    capacity until the link restores -- the same stranded semantics
    in-flight flows get -- rather than failing admission.
    """
    if blocked:
        try:
            return _all_shortest_paths(topo, src, dst, limit, blocked)
        except RoutingError:
            pass
    return _all_shortest_paths(topo, src, dst, limit)


def _translate_path(
    topo: Topology, path: Sequence[Link]
) -> Tuple[Link, ...]:
    """Re-key a link path onto another topology's link objects."""
    return tuple(topo.link(link.src, link.dst) for link in path)


def _links_of(topo: Topology, node_path: Sequence[str]) -> Tuple[Link, ...]:
    return tuple(
        topo.link(node_path[i], node_path[i + 1]) for i in range(len(node_path) - 1)
    )


class _BlockingMixin:
    """Shared blocked-link bookkeeping for the routers.

    Blocking a link excludes it from every subsequently computed path (downed
    links during fault injection); already-admitted flows keep their pinned
    paths until explicitly migrated. Both operations clear the route cache.
    """

    _blocked: Set[Tuple[str, str]]

    def block_links(self, keys) -> None:
        changed = False
        for key in keys:
            key = tuple(key)
            if key not in self._blocked:
                self._blocked.add(key)
                changed = True
        if changed:
            self._cache.clear()

    def unblock_links(self, keys) -> None:
        changed = False
        for key in keys:
            key = tuple(key)
            if key in self._blocked:
                self._blocked.discard(key)
                changed = True
        if changed:
            self._cache.clear()

    @property
    def blocked_links(self) -> FrozenSet[Tuple[str, str]]:
        return frozenset(self._blocked)


class ShortestPathRouter(_BlockingMixin):
    """Deterministic single shortest path per host pair, cached."""

    def __init__(self, topology: Topology) -> None:
        self.topology = topology
        self._cache: Dict[Tuple[str, str], Tuple[Link, ...]] = {}
        self._blocked: Set[Tuple[str, str]] = set()

    def fork(self, topology: Topology) -> "ShortestPathRouter":
        """An equivalent router over a cloned topology.

        The blocked-link set carries over (keys are name pairs, valid on
        any clone); the path cache is translated link-by-link so the
        fork serves identical routes without recomputation.
        """
        twin = ShortestPathRouter(topology)
        twin._blocked = set(self._blocked)
        twin._cache = {
            pair: _translate_path(topology, path)
            for pair, path in self._cache.items()
        }
        return twin

    def path(self, src: str, dst: str, flow_id: Optional[int] = None) -> Tuple[Link, ...]:
        self.topology.validate_endpoints(src, dst)
        key = (src, dst)
        if key not in self._cache:
            node_paths = _shortest_paths_or_degraded(
                self.topology, src, dst, 1, frozenset(self._blocked)
            )
            self._cache[key] = _links_of(self.topology, node_paths[0])
        return self._cache[key]


class EcmpRouter(_BlockingMixin):
    """Flow-hashed equal-cost multi-path routing.

    All shortest paths between a host pair are enumerated once; a given flow
    always hashes to the same path, matching switch ECMP behaviour where a
    flow's five-tuple pins its path for its lifetime.
    """

    def __init__(self, topology: Topology, fanout_limit: int = 16) -> None:
        self.topology = topology
        self.fanout_limit = fanout_limit
        self._cache: Dict[Tuple[str, str], List[Tuple[Link, ...]]] = {}
        self._blocked: Set[Tuple[str, str]] = set()

    def fork(self, topology: Topology) -> "EcmpRouter":
        """An equivalent router over a cloned topology (see
        :meth:`ShortestPathRouter.fork`); candidate lists keep their
        order so flow-id hashing picks the same path on the fork."""
        twin = EcmpRouter(topology, fanout_limit=self.fanout_limit)
        twin._blocked = set(self._blocked)
        twin._cache = {
            pair: [_translate_path(topology, path) for path in paths]
            for pair, paths in self._cache.items()
        }
        return twin

    def paths(self, src: str, dst: str) -> List[Tuple[Link, ...]]:
        key = (src, dst)
        if key not in self._cache:
            self.topology.validate_endpoints(src, dst)
            node_paths = _shortest_paths_or_degraded(
                self.topology, src, dst, self.fanout_limit,
                frozenset(self._blocked),
            )
            self._cache[key] = [_links_of(self.topology, p) for p in node_paths]
        return self._cache[key]

    def path(self, src: str, dst: str, flow_id: Optional[int] = None) -> Tuple[Link, ...]:
        candidates = self.paths(src, dst)
        if flow_id is None:
            return candidates[0]
        # A deterministic small-prime hash keeps runs reproducible across
        # processes (unlike built-in hash() with randomized seeds for str).
        index = (flow_id * 2654435761) % len(candidates)
        return candidates[index]


def widest_bottleneck(path: Sequence[Link]) -> float:
    """The minimum capacity along a path: a single flow's max rate."""
    if not path:
        raise ValueError("empty path has no bottleneck")
    return min(link.capacity for link in path)
