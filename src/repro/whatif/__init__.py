"""Warm-started what-if queries against a simulated cluster run.

Operators of the paper's Fig. 7 system face counterfactual questions
constantly: *what happens to job 3's JCT if this link dies at t=40? if
we admit one more tenant halfway through? if we cancel a queued job?*
Answering by re-simulating from scratch repays the entire history before
the intervention point on every query.

This package answers them from a shared baseline run instead: the
:class:`WhatIfService` snapshots the baseline engine (PR 7's
snapshot/fork/restore spine), forks it at the query timestamp, applies
the intervention to the fork, and delta-resimulates only *forward* --
with sibling forks warm-starting one another through the shared
:class:`~repro.scheduling.cache.MemoizingScheduler` fingerprint cache.
Results come back as structured JCT/tardiness deltas plus the run-diff
report from :mod:`repro.obs.diagnosis`.

CLI: ``repro whatif`` (single query or ``--batch`` file);
benchmark: ``benchmarks/bench_whatif.py``; docs: ``docs/whatif.md``.
"""

from .queries import WhatIfQuery, WhatIfQueryError, parse_batch, parse_query
from .service import WhatIfError, WhatIfResult, WhatIfService
from .workload import cluster_engine_factory, cluster_job_builder

__all__ = [
    "WhatIfError",
    "WhatIfQuery",
    "WhatIfQueryError",
    "WhatIfResult",
    "WhatIfService",
    "cluster_engine_factory",
    "cluster_job_builder",
    "parse_batch",
    "parse_query",
]
