"""Grammar and parsing for what-if queries.

A query is a single token of the form::

    kind[:arg]@time[+duration][,key=value]...

mirroring the fault-spec grammar of :mod:`repro.faults.schedule` so
operators only learn one shape. ``time`` (and ``duration``) accept an
optional ``%`` suffix meaning *fraction of the baseline makespan* --
``kill_link:h0-leaf0@50%`` injects the failure halfway through the
baseline run regardless of its absolute length. Resolution to absolute
seconds happens in :meth:`WhatIfQuery.resolved`, once the service knows
the baseline end time.

Supported kinds:

``submit_job:paradigm``
    Admit one extra job of ``paradigm`` (``dp``/``fsdp``/``pp``/``tp``)
    at the query time. Options: ``layers=N``, ``hosts=N``.
``add_tenant:paradigm``
    Alias of ``submit_job`` with a tenant-sized default (``jobs=N``
    copies, default 2), modelling a new tenant's arrival.
``remove_job:job_id``
    Cancel a job whose arrival is still pending at the query time.
``kill_link:linkspec``
    Take links down (fail-stop) at the query time; ``+duration``
    schedules the matching restore.
``degrade_link:linkspec``
    Scale link capacity by ``factor=F`` (default 0.5); ``+duration``
    restores nominal capacity.

Link specs reuse the fault grammar verbatim (``h0-leaf0``,
``h0-leaf0/rev``, ``h0-leaf0|h1-leaf0``).
"""

from __future__ import annotations

import re
from dataclasses import dataclass, field
from typing import Dict, List, Optional, Tuple

_QUERY_KINDS = ("submit_job", "add_tenant", "remove_job", "kill_link", "degrade_link")
_LINK_KINDS = ("kill_link", "degrade_link")

_TIME_RE = re.compile(r"^(?P<value>[0-9]*\.?[0-9]+(?:[eE][-+]?[0-9]+)?)(?P<pct>%?)$")


class WhatIfQueryError(ValueError):
    """A query string does not parse or is semantically malformed."""


@dataclass(frozen=True)
class WhatIfQuery:
    """One parsed counterfactual intervention.

    ``time``/``duration`` are stored as ``(value, is_fraction)`` pairs;
    call :meth:`resolved` with the baseline makespan to get absolute
    seconds. ``arg`` is the ``:``-suffix (paradigm, job id, or raw link
    spec) and ``options`` the trailing ``k=v`` pairs, untyped -- each
    kind validates its own options when applied.
    """

    kind: str
    arg: str
    time: Tuple[float, bool]
    duration: Optional[Tuple[float, bool]] = None
    options: Dict[str, str] = field(default_factory=dict)
    raw: str = ""

    def resolved(self, makespan: float) -> Tuple[float, Optional[float]]:
        """Return ``(abs_time, abs_duration_or_None)`` in seconds."""
        value, pct = self.time
        time = value * makespan / 100.0 if pct else value
        duration: Optional[float] = None
        if self.duration is not None:
            dvalue, dpct = self.duration
            duration = dvalue * makespan / 100.0 if dpct else dvalue
        return time, duration

    def describe(self) -> str:
        return self.raw or f"{self.kind}:{self.arg}@{self.time[0]:g}"


def _parse_time(token: str, *, what: str, raw: str) -> Tuple[float, bool]:
    match = _TIME_RE.match(token)
    if match is None:
        raise WhatIfQueryError(f"bad {what} {token!r} in query {raw!r}")
    value = float(match.group("value"))
    if value < 0:
        raise WhatIfQueryError(f"negative {what} in query {raw!r}")
    return value, match.group("pct") == "%"


def parse_query(spec: str) -> WhatIfQuery:
    """Parse one ``kind[:arg]@time[+duration][,k=v]`` token."""
    raw = spec.strip()
    if not raw:
        raise WhatIfQueryError("empty what-if query")
    body, _, opt_blob = raw.partition(",")
    options: Dict[str, str] = {}
    if opt_blob:
        for pair in opt_blob.split(","):
            key, eq, value = pair.partition("=")
            if not eq or not key.strip() or not value.strip():
                raise WhatIfQueryError(f"bad option {pair!r} in query {raw!r}")
            options[key.strip()] = value.strip()
    head, at, when = body.partition("@")
    if not at:
        raise WhatIfQueryError(f"query {raw!r} is missing '@time'")
    kind, _, arg = head.partition(":")
    kind = kind.strip()
    arg = arg.strip()
    if kind not in _QUERY_KINDS:
        raise WhatIfQueryError(
            f"unknown query kind {kind!r} in {raw!r} "
            f"(expected one of {', '.join(_QUERY_KINDS)})"
        )
    if not arg:
        raise WhatIfQueryError(f"query kind {kind!r} needs a ':arg' in {raw!r}")
    when = when.strip()
    time_token, plus, duration_token = when.partition("+")
    time = _parse_time(time_token.strip(), what="time", raw=raw)
    duration: Optional[Tuple[float, bool]] = None
    if plus:
        if kind not in _LINK_KINDS:
            raise WhatIfQueryError(
                f"'+duration' only applies to link queries, not {kind!r} ({raw!r})"
            )
        duration = _parse_time(duration_token.strip(), what="duration", raw=raw)
        if duration[0] == 0:
            raise WhatIfQueryError(f"zero duration in query {raw!r}")
    return WhatIfQuery(
        kind=kind, arg=arg, time=time, duration=duration, options=options, raw=raw
    )


def parse_batch(text: str) -> List[WhatIfQuery]:
    """Parse a batch file: one query per line, ``#`` comments, blanks ok."""
    queries: List[WhatIfQuery] = []
    for lineno, line in enumerate(text.splitlines(), start=1):
        stripped = line.split("#", 1)[0].strip()
        if not stripped:
            continue
        try:
            queries.append(parse_query(stripped))
        except WhatIfQueryError as exc:
            raise WhatIfQueryError(f"line {lineno}: {exc}") from exc
    return queries
