"""The warm-started what-if query service.

:class:`WhatIfService` owns one *baseline* cluster run and answers
counterfactual queries against it. The crucial property is that a query
never re-simulates history before its intervention point:

1. At construction the service snapshots the freshly-built engine (the
   *genesis* handle, t=0) and runs the baseline to completion.
2. A query at time ``t`` finds the nearest cached
   :class:`~repro.simulator.StateHandle` at or before ``t``, forks it,
   and delta-resimulates only the gap ``[handle.time, t)``. The advanced
   state is snapshotted back into the handle cache, so repeated queries
   around the same region converge to O(forward simulation) each.
3. The fork shares the baseline's
   :class:`~repro.scheduling.MemoizingScheduler` fingerprint cache by
   reference (see :meth:`MemoizingScheduler.fork`), so scheduler
   invocations whose inputs match any earlier run -- baseline or sibling
   fork -- are cache hits. Capacity-lineage fingerprints keep this safe
   when forks diverge through link faults.
4. The intervention is applied to the fork and the fork runs to
   completion; results are diffed against the baseline with the
   :mod:`repro.obs.diagnosis` run-diff machinery.

``mode="cold"`` answers the same query by rebuilding the whole cluster
from scratch and replaying from t=0 -- the control arm that
``benchmarks/bench_whatif.py`` uses to report the warm-path speedup.
"""

from __future__ import annotations

import bisect
import time as _time
from dataclasses import dataclass, field
from functools import partial
from typing import Callable, Dict, List, Optional, Tuple

from ..faults import FaultInjector, parse_fault_spec
from ..obs.diagnosis import RunArtifacts, diff_runs
from ..simulator import Engine, EventKind, SimulationError, StateHandle, TIME_EPS
from .queries import WhatIfQuery, parse_query
from .workload import cluster_engine_factory, cluster_job_builder


class WhatIfError(ValueError):
    """A query is semantically invalid against this baseline."""


@dataclass(frozen=True)
class WhatIfResult:
    """Structured answer to one query. Everything is JSON-able via
    :meth:`to_json` except the parsed query itself."""

    query: WhatIfQuery
    mode: str
    time: float
    duration: Optional[float]
    baseline_makespan: float
    variant_makespan: float
    #: job id -> {"baseline": s|None, "variant": s|None, "delta": s|None}
    jct: Dict[str, Dict[str, Optional[float]]]
    #: EchelonFlow group id -> same triple for group tardiness
    tardiness: Dict[str, Dict[str, Optional[float]]]
    #: full run-diff report (repro.obs.diagnosis.diff_runs), baseline=a
    report: Dict
    wall_clock: float
    added_jobs: Tuple[str, ...] = ()
    removed_jobs: Tuple[str, ...] = ()

    @property
    def makespan_delta(self) -> float:
        return self.variant_makespan - self.baseline_makespan

    def to_json(self) -> Dict:
        return {
            "query": self.query.describe(),
            "mode": self.mode,
            "time": self.time,
            "duration": self.duration,
            "baseline_makespan": self.baseline_makespan,
            "variant_makespan": self.variant_makespan,
            "makespan_delta": self.makespan_delta,
            "added_jobs": list(self.added_jobs),
            "removed_jobs": list(self.removed_jobs),
            "jct": self.jct,
            "tardiness": self.tardiness,
            "report": self.report,
            "wall_clock": self.wall_clock,
        }


def _triples(
    baseline: Dict[str, float], variant: Dict[str, float]
) -> Dict[str, Dict[str, Optional[float]]]:
    out: Dict[str, Dict[str, Optional[float]]] = {}
    for key in sorted(set(baseline) | set(variant)):
        b = baseline.get(key)
        v = variant.get(key)
        out[key] = {
            "baseline": b,
            "variant": v,
            "delta": (v - b) if (b is not None and v is not None) else None,
        }
    return out


class WhatIfService:
    """Answers what-if queries against one shared baseline run.

    ``factory`` builds ``(engine, arrivals)`` -- an unrun engine with all
    baseline jobs submitted and a ``job_id -> arrival_time`` map. Use
    :meth:`build` for the standard Fig. 7-style cluster baseline. The
    engine's scheduler must support ``fork()`` (every shipped scheduler
    does); wrapping in :class:`MemoizingScheduler` is what makes warm
    starts effective, not merely correct.
    """

    def __init__(
        self,
        factory: Callable[[], Tuple[Engine, Dict[str, float]]],
        *,
        max_handles: int = 64,
        hosts_per_job: int = 4,
    ) -> None:
        self._factory = factory
        self._hosts_per_job = hosts_per_job
        self._max_handles = max_handles
        engine, arrivals = factory()
        self.arrivals: Dict[str, float] = dict(arrivals)
        #: genesis handle: the cluster with every tenant submitted, t=0.
        self.genesis: StateHandle = engine.snapshot()
        started = _time.perf_counter()
        self.baseline_trace = engine.run()
        self.baseline_wall_clock = _time.perf_counter() - started
        self.engine = engine
        self.baseline_makespan = engine.now
        self._baseline_artifacts = RunArtifacts.from_run(self.baseline_trace)
        self._baseline_jct = self._jct_map(engine)
        self._baseline_tardiness = self._tardiness_map(engine)
        # Sorted timeline of reusable handles (times strictly increasing).
        self._handle_times: List[float] = [self.genesis.time]
        self._handles: List[StateHandle] = [self.genesis]

    # -- construction ---------------------------------------------------

    @classmethod
    def build(cls, **kwargs) -> "WhatIfService":
        """Service over the standard cluster baseline; kwargs go to
        :func:`cluster_engine_factory` (hosts, jobs, scheduler, ...)."""
        hosts_per_job = kwargs.get("hosts_per_job", 4)
        return cls(
            partial(cluster_engine_factory, **kwargs),
            hosts_per_job=hosts_per_job,
        )

    # -- the handle timeline --------------------------------------------

    def _remember(self, handle: StateHandle) -> None:
        if len(self._handles) >= self._max_handles:
            return
        index = bisect.bisect_left(self._handle_times, handle.time)
        if (
            index < len(self._handle_times)
            and abs(self._handle_times[index] - handle.time) <= TIME_EPS
        ):
            return  # already have one here
        self._handle_times.insert(index, handle.time)
        self._handles.insert(index, handle)

    def fork_at(self, when: float) -> Engine:
        """A private engine advanced to exactly ``when`` (warm path).

        Forks the nearest cached handle at or before ``when`` and
        delta-resimulates the gap; the advanced state is cached for the
        next query in the neighbourhood.
        """
        if when < 0:
            raise WhatIfError(f"query time {when:g} is negative")
        index = bisect.bisect_right(self._handle_times, when + TIME_EPS) - 1
        handle = self._handles[max(index, 0)]
        fork = self.engine.fork(handle)
        if when > handle.time + TIME_EPS:
            fork.run(until=when)
            self._remember(fork.snapshot())
        return fork

    # -- applying interventions -----------------------------------------

    def _apply(
        self, engine: Engine, query: WhatIfQuery, when: float, duration
    ) -> Tuple[Tuple[str, ...], Tuple[str, ...], Dict[str, float]]:
        """Mutate ``engine`` per the query. Returns
        ``(added_jobs, removed_jobs, extra_arrivals)``."""
        if query.kind in ("kill_link", "degrade_link"):
            self._apply_link(engine, query, when, duration)
            return (), (), {}
        if query.kind == "remove_job":
            self._apply_remove(engine, query.arg)
            return (), (query.arg,), {}
        # submit_job / add_tenant
        copies = 1
        if query.kind == "add_tenant":
            copies = int(query.options.get("jobs", "2"))
            if copies < 1:
                raise WhatIfError(f"jobs={copies} must be >= 1")
        layers = int(query.options.get("layers", "8"))
        hosts = int(query.options.get("hosts", "0"))
        builder = cluster_job_builder(engine, self._hosts_per_job)
        added: List[str] = []
        extra: Dict[str, float] = {}
        for copy in range(copies):
            # Deterministic ids: every variant engine is a private fork,
            # so ids only need to be unique *within* one variant -- and
            # placement hashes the id, so the same query must get the
            # same id (and hosts) in warm, cold, and repeated runs.
            job_id = f"wi-{query.arg}{copy}"
            job = builder(query.arg, job_id, layers=layers, hosts=hosts)
            job.submit_to(engine, at_time=when)
            added.append(job_id)
            extra[job_id] = when
        return tuple(added), (), extra

    def _apply_link(
        self, engine: Engine, query: WhatIfQuery, when: float, duration
    ) -> None:
        action = "link_down" if query.kind == "kill_link" else "degrade"
        spec = f"{action}:{query.arg}@{when!r}"
        if duration is not None:
            spec += f"+{duration!r}"
        if action == "degrade":
            factor = float(query.options.get("factor", "0.5"))
            spec += f",factor={factor!r}"
        try:
            injector = FaultInjector(parse_fault_spec(spec))
            injector.attach(engine)
        except KeyError as exc:
            raise WhatIfError(
                f"query {query.describe()!r} names an unknown link: {exc}"
            ) from exc
        if engine.faults is None:
            engine.faults = injector

    def _apply_remove(self, engine: Engine, job_id: str) -> None:
        pending = None
        for event in engine.events.live_events():
            if event.kind is EventKind.JOB_ARRIVAL and event.payload == job_id:
                pending = event
                break
        if pending is None:
            detail = (
                "already started or finished"
                if job_id in engine._dags
                else "unknown job id"
            )
            raise WhatIfError(
                f"cannot remove job {job_id!r} at t={engine.now:g}: {detail} "
                "(remove_job only cancels jobs whose arrival is still pending)"
            )
        pending.cancelled = True
        del engine._dags[job_id]
        for ef_id in [
            ef_id
            for ef_id, group in engine.echelonflows.items()
            if group.job_id == job_id
        ]:
            del engine.echelonflows[ef_id]

    # -- result assembly ------------------------------------------------

    def _jct_map(
        self, engine: Engine, extra: Optional[Dict[str, float]] = None
    ) -> Dict[str, float]:
        arrivals = dict(self.arrivals)
        if extra:
            arrivals.update(extra)
        out: Dict[str, float] = {}
        for job_id in engine._dags:
            arrival = arrivals.get(job_id)
            if arrival is None:
                continue
            out[job_id] = engine.job_completion_time(job_id) - arrival
        return out

    @staticmethod
    def _tardiness_map(engine: Engine) -> Dict[str, float]:
        finishes = engine.trace.actual_finish_times()
        out: Dict[str, float] = {}
        for ef_id, group in engine.echelonflows.items():
            try:
                out[ef_id] = group.tardiness(finishes)
            except (KeyError, ValueError):
                continue  # group never materialized flows
        return out

    # -- query entry points ---------------------------------------------

    def run_query(
        self, query, *, mode: str = "warm", detail: str = "full"
    ) -> WhatIfResult:
        """Answer one query (a :class:`WhatIfQuery` or a spec string).

        ``mode="warm"`` uses the fork-and-delta-resimulate path;
        ``mode="cold"`` rebuilds the cluster and replays from t=0 --
        the benchmark control. The two agree to the memo cache's
        fingerprint quantum (1 part in 1e9): a warm fork may replay an
        allocation whose inputs sat within the quantum of its own.

        ``detail="full"`` includes the per-flow/stage run-diff report;
        ``detail="deltas"`` skips it (JCT/tardiness/makespan deltas only)
        -- the report dominates per-query cost on large traces, so batch
        sweeps that only rank interventions should use ``"deltas"``.
        """
        if isinstance(query, str):
            query = parse_query(query)
        if mode not in ("warm", "cold"):
            raise WhatIfError(f"mode must be 'warm' or 'cold', got {mode!r}")
        if detail not in ("full", "deltas"):
            raise WhatIfError(f"detail must be 'full' or 'deltas', got {detail!r}")
        when, duration = query.resolved(self.baseline_makespan)
        started = _time.perf_counter()
        if mode == "warm":
            variant = self.fork_at(when)
        else:
            variant, _ = self._factory()
        added, removed, extra = self._apply(variant, query, when, duration)
        try:
            variant.run()
        except SimulationError as exc:
            raise WhatIfError(
                f"counterfactual run for {query.describe()!r} cannot complete: "
                f"{exc} (a kill_link that permanently partitions the fabric "
                "deadlocks the cluster -- add '+duration' to restore the link)"
            ) from exc
        wall_clock = _time.perf_counter() - started

        variant_jct = self._jct_map(variant, extra)
        variant_tardiness = self._tardiness_map(variant)
        report: Dict = {}
        if detail == "full":
            report = diff_runs(
                self._baseline_artifacts, RunArtifacts.from_run(variant.trace)
            )
        return WhatIfResult(
            query=query,
            mode=mode,
            time=when,
            duration=duration,
            baseline_makespan=self.baseline_makespan,
            variant_makespan=variant.now,
            jct=_triples(self._baseline_jct, variant_jct),
            tardiness=_triples(self._baseline_tardiness, variant_tardiness),
            report=report,
            wall_clock=wall_clock,
            added_jobs=added,
            removed_jobs=removed,
        )

    def run_batch(
        self, queries, *, mode: str = "warm", detail: str = "full"
    ) -> List[WhatIfResult]:
        """Answer queries in order, sharing the handle and memo caches."""
        return [
            self.run_query(query, mode=mode, detail=detail)
            for query in queries
        ]
