"""Baseline cluster workload for the what-if service.

The service needs a deterministic, Fig. 7-shaped baseline: a big-switch
fabric with a handful of tenants running mixed DDLT paradigms at
staggered arrival times. :func:`cluster_engine_factory` builds exactly
that -- crucially under a *private* :class:`~repro.core.FlowIdAllocator`
(``engine.flow_ids``), so baseline, forks, and from-scratch replays all
mint identical flow ids without touching process-global state, and under
a :class:`~repro.scheduling.MemoizingScheduler` whose fingerprint cache
the service shares across sibling forks for warm starts.

:func:`cluster_job_builder` mints the extra jobs that ``submit_job`` /
``add_tenant`` queries admit, sized to the same model zoo entries so the
counterfactual load is comparable to the baseline tenants'.
"""

from __future__ import annotations

from typing import Callable, Dict, List, Optional, Sequence, Tuple

from ..core import FlowIdAllocator, use_flow_id_allocator
from ..core.units import gbps, megabytes
from ..scheduling import MemoizingScheduler, make_scheduler
from ..simulator import Engine
from ..topology import big_switch
from ..workloads import (
    BuiltJob,
    build_dp_allreduce,
    build_fsdp,
    build_pp_gpipe,
    build_tp_megatron,
    uniform_model,
)

PARADIGMS = ("dp", "fsdp", "pp", "tp")

#: (paradigm, arrival_time) cycle for the baseline tenants; arrivals are
#: staggered so forks taken mid-run see a mix of pending and in-flight
#: jobs -- the regime delta-resimulation is for.
_BASELINE_CYCLE: Tuple[Tuple[str, float], ...] = (
    ("dp", 0.0),
    ("fsdp", 0.02),
    ("pp", 0.05),
    ("dp", 0.08),
    ("tp", 0.11),
    ("fsdp", 0.15),
)


def _model(layers: int = 8):
    return uniform_model(
        f"whatif-u{layers}",
        layers,
        param_bytes_per_layer=megabytes(24),
        activation_bytes=megabytes(12),
        forward_time=0.004,
    )


def build_paradigm_job(
    paradigm: str,
    job_id: str,
    workers: Sequence[str],
    *,
    layers: int = 8,
    iterations: int = 1,
) -> BuiltJob:
    """Build one job of ``paradigm`` on ``workers`` (shared model zoo)."""
    model = _model(layers)
    if paradigm == "dp":
        return build_dp_allreduce(
            job_id, model, workers,
            bucket_bytes=megabytes(48), iterations=iterations,
        )
    if paradigm == "fsdp":
        return build_fsdp(job_id, model, workers, iterations=iterations)
    if paradigm == "pp":
        return build_pp_gpipe(
            job_id, model, workers, num_micro_batches=4, iterations=iterations
        )
    if paradigm == "tp":
        return build_tp_megatron(job_id, model, workers, iterations=iterations)
    raise ValueError(
        f"unknown paradigm {paradigm!r}; expected one of {PARADIGMS}"
    )


def cluster_job_builder(
    engine: Engine, hosts_per_job: int = 4
) -> Callable[[str, str, int, int], BuiltJob]:
    """Return a builder minting extra jobs for submit/add_tenant queries.

    The builder places jobs round-robin over the engine's hosts starting
    from a stable offset, and builds them under ``engine.flow_ids`` so
    flow ids stay engine-scoped (call it with the target *fork*, not the
    baseline). Signature: ``build(paradigm, job_id, layers, hosts)``.
    """
    host_names = engine.topology.hosts

    def build(
        paradigm: str, job_id: str, layers: int = 8, hosts: int = 0
    ) -> BuiltJob:
        count = hosts or hosts_per_job
        if count > len(host_names):
            raise ValueError(
                f"job wants {count} hosts but the fabric has {len(host_names)}"
            )
        # Deterministic placement: hash-free, spread by job ordinal.
        ordinal = sum(ord(ch) for ch in job_id)
        start = (ordinal * hosts_per_job) % len(host_names)
        workers = [
            host_names[(start + i) % len(host_names)] for i in range(count)
        ]
        with use_flow_id_allocator(engine.flow_ids):
            return build_paradigm_job(paradigm, job_id, workers, layers=layers)

    return build


def cluster_engine_factory(
    hosts: int = 16,
    jobs: int = 6,
    *,
    hosts_per_job: int = 4,
    bandwidth_gbps: float = 10.0,
    scheduler: str = "echelon",
    layers: int = 8,
    iterations: int = 2,
    sanitizer=None,
) -> Tuple[Engine, Dict[str, float]]:
    """Build the baseline engine with all tenants submitted (not yet run).

    Returns ``(engine, arrivals)`` where ``arrivals`` maps job id to its
    submission time. The scheduler is always wrapped in a
    :class:`MemoizingScheduler`; the engine owns a private flow-id
    allocator. Call :meth:`Engine.run` (or let :class:`WhatIfService`
    do it) to produce the baseline trace.
    """
    if hosts < hosts_per_job:
        raise ValueError(f"need >= {hosts_per_job} hosts, got {hosts}")
    topology = big_switch(hosts, gbps(bandwidth_gbps))
    host_names = topology.hosts
    inner = make_scheduler(scheduler)
    memo = inner if isinstance(inner, MemoizingScheduler) else MemoizingScheduler(inner)
    allocator = FlowIdAllocator()
    with use_flow_id_allocator(allocator):
        engine = Engine(topology, memo, sanitizer=sanitizer)
        arrivals: Dict[str, float] = {}
        built: List[Tuple[BuiltJob, float]] = []
        for index in range(jobs):
            paradigm, offset = _BASELINE_CYCLE[index % len(_BASELINE_CYCLE)]
            arrival = (index // len(_BASELINE_CYCLE)) * 0.2 + offset
            job_id = f"{paradigm}{index}"
            start = (index * hosts_per_job) % hosts
            workers = [
                host_names[(start + i) % hosts] for i in range(hosts_per_job)
            ]
            built.append(
                (
                    build_paradigm_job(
                        paradigm, job_id, workers,
                        layers=layers, iterations=iterations,
                    ),
                    arrival,
                )
            )
            arrivals[job_id] = arrival
        for job, arrival in built:
            job.submit_to(engine, at_time=arrival)
    return engine, arrivals
