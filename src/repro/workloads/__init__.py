"""DDLT training paradigms (Table 1) as executable workload generators."""

from .collectives import (
    direct_all_gather,
    flow_count,
    ps_pull,
    ps_push,
    ring_all_gather,
    ring_all_reduce,
    ring_reduce_scatter,
    total_bytes,
)
from .arrivals import (
    Arrival,
    ClusterManager,
    JobRecord,
    JobTemplate,
    poisson_arrivals,
)
from .collectives_extra import (
    ALLREDUCE_ALGORITHMS,
    all_reduce,
    halving_doubling_all_reduce,
    hierarchical_all_reduce,
    tree_all_reduce,
)
from .dp import build_dp_allreduce, build_dp_ps
from .faults import (
    degrade_link,
    fail_link,
    inject_background_stream,
    pause_device,
    scale_device_durations,
    with_straggler,
)
from .fsdp import build_fsdp, fsdp_arrangement
from .hybrid3d import build_hybrid_3d, grid_from_hosts
from .job import BuiltJob, add_collective
from .model import (
    GradientBucket,
    LayerSpec,
    ModelSpec,
    PipelineStagePartition,
    uniform_model,
)
from .placement import ClusterPlacer, PlacementError
from .pp import build_pipeline_segment, build_pp_gpipe
from .pp_1f1b import build_pp_1f1b, one_f_one_b_order
from .pp_interleaved import build_pp_interleaved
from .spec import SpecError, run_spec, run_spec_file
from .tp import build_tp_megatron
from .zoo import (
    alexnet,
    bert_large,
    get_model,
    gpt2_xl,
    model_names,
    resnet50,
    tiny_mlp,
    vgg16,
)

__all__ = [
    "Arrival",
    "ClusterManager",
    "JobRecord",
    "JobTemplate",
    "poisson_arrivals",
    "with_straggler",
    "scale_device_durations",
    "inject_background_stream",
    "pause_device",
    "fail_link",
    "degrade_link",
    "run_spec",
    "run_spec_file",
    "SpecError",
    "BuiltJob",
    "add_collective",
    "LayerSpec",
    "ModelSpec",
    "GradientBucket",
    "PipelineStagePartition",
    "uniform_model",
    "build_dp_allreduce",
    "build_dp_ps",
    "build_pp_gpipe",
    "build_pp_1f1b",
    "build_pp_interleaved",
    "one_f_one_b_order",
    "build_pipeline_segment",
    "build_tp_megatron",
    "build_fsdp",
    "build_hybrid_3d",
    "grid_from_hosts",
    "fsdp_arrangement",
    "ClusterPlacer",
    "PlacementError",
    "ring_all_reduce",
    "tree_all_reduce",
    "halving_doubling_all_reduce",
    "hierarchical_all_reduce",
    "all_reduce",
    "ALLREDUCE_ALGORITHMS",
    "ring_all_gather",
    "ring_reduce_scatter",
    "direct_all_gather",
    "ps_push",
    "ps_pull",
    "total_bytes",
    "flow_count",
    "alexnet",
    "vgg16",
    "resnet50",
    "bert_large",
    "gpt2_xl",
    "tiny_mlp",
    "get_model",
    "model_names",
]
