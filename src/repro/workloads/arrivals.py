"""Dynamic multi-tenant workloads: job arrival processes and a cluster
manager that admits, places, and retires jobs during a simulation.

The paper targets "a shared, highly dynamic network with competing
training jobs"; the static multi-job benches approximate that with
simultaneous submission. This module provides the real thing: a Poisson
(or trace-driven) arrival process over a template mix, first-fit placement
with queueing when the cluster is full, and host release on completion --
all driven through the engine's event loop, so network contention and
queueing delays interact exactly as they would in a live cluster.
"""

from __future__ import annotations

import random
from dataclasses import dataclass, field
from typing import Callable, Dict, List, Optional, Sequence, Tuple

from ..simulator.engine import Engine
from .job import BuiltJob
from .placement import ClusterPlacer

#: A builder receives (job_id, workers) and returns a fresh BuiltJob.
JobBuilder = Callable[[str, Sequence[str]], BuiltJob]


@dataclass(frozen=True)
class JobTemplate:
    """One entry in the workload mix."""

    name: str
    builder: JobBuilder
    worker_count: int
    #: Relative frequency in the mix.
    weight: float = 1.0

    def __post_init__(self) -> None:
        if self.worker_count < 1:
            raise ValueError(f"template {self.name!r} needs >= 1 workers")
        if self.weight <= 0:
            raise ValueError(f"template {self.name!r} weight must be positive")


@dataclass(frozen=True)
class Arrival:
    """One scheduled job arrival."""

    time: float
    template: JobTemplate
    job_id: str


def poisson_arrivals(
    templates: Sequence[JobTemplate],
    rate: float,
    count: int,
    seed: int = 0,
) -> List[Arrival]:
    """``count`` arrivals with exponential inter-arrival times at ``rate``.

    Templates are sampled by weight; fully deterministic given ``seed``.
    """
    if rate <= 0:
        raise ValueError(f"arrival rate must be positive, got {rate}")
    if count < 1:
        raise ValueError(f"need >= 1 arrivals, got {count}")
    if not templates:
        raise ValueError("need at least one job template")
    rng = random.Random(seed)
    weights = [t.weight for t in templates]
    clock = 0.0
    arrivals: List[Arrival] = []
    for index in range(count):
        clock += rng.expovariate(rate)
        template = rng.choices(list(templates), weights=weights, k=1)[0]
        arrivals.append(
            Arrival(time=clock, template=template, job_id=f"{template.name}-{index}")
        )
    return arrivals


@dataclass
class JobRecord:
    """Lifecycle of one job through the cluster manager."""

    arrival: Arrival
    submitted_at: Optional[float] = None
    completed_at: Optional[float] = None
    workers: Tuple[str, ...] = ()

    @property
    def queueing_delay(self) -> Optional[float]:
        if self.submitted_at is None:
            return None
        return self.submitted_at - self.arrival.time

    @property
    def completion_time(self) -> Optional[float]:
        """JCT including queueing (completion minus arrival)."""
        if self.completed_at is None:
            return None
        return self.completed_at - self.arrival.time


class ClusterManager:
    """Admission control + placement + release, driven by engine events.

    Usage::

        manager = ClusterManager(engine, placer)
        manager.schedule(arrivals)
        engine.run()
        manager.records  # per-job lifecycle

    Jobs that do not fit when they arrive wait in a FIFO queue and are
    admitted as earlier jobs complete and free their hosts.
    """

    def __init__(self, engine: Engine, placer: ClusterPlacer) -> None:
        self.engine = engine
        self.placer = placer
        self.records: Dict[str, JobRecord] = {}
        self._queue: List[Arrival] = []
        engine.job_completion_callbacks.append(self._on_job_complete)

    # ------------------------------------------------------------------

    def schedule(self, arrivals: Sequence[Arrival]) -> None:
        for arrival in arrivals:
            if arrival.job_id in self.records:
                raise ValueError(f"duplicate job id {arrival.job_id!r}")
            self.records[arrival.job_id] = JobRecord(arrival=arrival)
            self.engine.schedule_callback(
                arrival.time, lambda a=arrival: self._on_arrival(a)
            )

    def _on_arrival(self, arrival: Arrival) -> None:
        self._queue.append(arrival)
        self._drain_queue()

    def _on_job_complete(self, job_id: str) -> None:
        record = self.records.get(job_id)
        if record is None:
            return  # not one of ours
        record.completed_at = self.engine.now
        self.placer.release(job_id)
        self._drain_queue()

    def _drain_queue(self) -> None:
        # FIFO admission: head-of-line blocking is intentional (fairness);
        # a backfilling policy would go here.
        while self._queue:
            arrival = self._queue[0]
            if arrival.template.worker_count > len(self.placer.free_hosts):
                return
            workers = self.placer.place_contiguous(
                arrival.job_id, arrival.template.worker_count
            )
            job = arrival.template.builder(arrival.job_id, workers)
            if job.job_id != arrival.job_id:
                raise ValueError(
                    f"builder returned job id {job.job_id!r}, "
                    f"expected {arrival.job_id!r}"
                )
            job.submit_to(self.engine, at_time=self.engine.now)
            record = self.records[arrival.job_id]
            record.submitted_at = self.engine.now
            record.workers = tuple(workers)
            self._queue.pop(0)

    # ------------------------------------------------------------------

    @property
    def pending(self) -> int:
        return len(self._queue)

    def completed_records(self) -> List[JobRecord]:
        return [r for r in self.records.values() if r.completed_at is not None]

    def mean_jct(self) -> float:
        completed = self.completed_records()
        if not completed:
            raise ValueError("no completed jobs")
        return sum(r.completion_time for r in completed) / len(completed)

    def mean_queueing_delay(self) -> float:
        completed = self.completed_records()
        if not completed:
            raise ValueError("no completed jobs")
        return sum(r.queueing_delay for r in completed) / len(completed)
