"""Collective communication operators expanded into flow sets.

The paper's system sketch treats backends (NCCL/MPI/Gloo) as machinery that
turns collective calls into point-to-point flows; scheduling only sees the
flows. This module is that expansion:

* :func:`ring_all_reduce` -- reduce-scatter + all-gather on a ring:
  ``2(m-1)`` steps, each with ``m`` neighbor transfers of ``bytes/m``
  (matching Section 2.1's description of the m-worker ring).
* :func:`ring_all_gather` / :func:`ring_reduce_scatter` -- the halves, used
  directly by FSDP.
* :func:`ps_push` / :func:`ps_pull` -- parameter-server star patterns.
* :func:`direct_all_gather` -- each worker unicasts its shard to every
  peer; single-step alternative for small worker counts.

Every function returns ``List[List[Flow]]``: an ordered list of dependent
steps, each a set of concurrent flows. Flows are tagged with the caller's
EchelonFlow group and arrangement index so that "the flows in each
collective form a Coflow" (Section 4) falls out naturally.
"""

from __future__ import annotations

from typing import List, Optional, Sequence

from ..core.flow import Flow

StepList = List[List[Flow]]


def _check_ring(hosts: Sequence[str]) -> None:
    if len(hosts) < 2:
        raise ValueError(f"a ring collective needs >= 2 hosts, got {len(hosts)}")
    if len(set(hosts)) != len(hosts):
        raise ValueError("ring hosts must be distinct")


def _ring_steps(
    hosts: Sequence[str],
    num_steps: int,
    shard_bytes: float,
    group_id: Optional[str],
    index_in_group: int,
    job_id: Optional[str],
    tag: str,
) -> StepList:
    steps: StepList = []
    m = len(hosts)
    for step in range(num_steps):
        flows = [
            Flow(
                src=hosts[i],
                dst=hosts[(i + 1) % m],
                size=shard_bytes,
                group_id=group_id,
                index_in_group=index_in_group,
                job_id=job_id,
                tag=f"{tag}/step{step}",
            )
            for i in range(m)
        ]
        steps.append(flows)
    return steps


def ring_all_reduce(
    hosts: Sequence[str],
    total_bytes: float,
    group_id: Optional[str] = None,
    index_in_group: int = 0,
    job_id: Optional[str] = None,
    tag: str = "allreduce",
) -> StepList:
    """Bandwidth-optimal ring all-reduce: ``2(m-1)`` dependent steps.

    Each step moves one ``total_bytes/m`` shard between every neighbor pair,
    for the canonical ``2 * (m-1)/m * total_bytes`` per-host traffic.
    """
    _check_ring(hosts)
    if total_bytes <= 0:
        raise ValueError(f"total_bytes must be positive, got {total_bytes}")
    m = len(hosts)
    return _ring_steps(
        hosts, 2 * (m - 1), total_bytes / m, group_id, index_in_group, job_id, tag
    )


def ring_all_gather(
    hosts: Sequence[str],
    shard_bytes: float,
    group_id: Optional[str] = None,
    index_in_group: int = 0,
    job_id: Optional[str] = None,
    tag: str = "allgather",
) -> StepList:
    """Ring all-gather: ``m-1`` steps of ``shard_bytes`` neighbor transfers."""
    _check_ring(hosts)
    if shard_bytes <= 0:
        raise ValueError(f"shard_bytes must be positive, got {shard_bytes}")
    return _ring_steps(
        hosts, len(hosts) - 1, shard_bytes, group_id, index_in_group, job_id, tag
    )


def ring_reduce_scatter(
    hosts: Sequence[str],
    total_bytes: float,
    group_id: Optional[str] = None,
    index_in_group: int = 0,
    job_id: Optional[str] = None,
    tag: str = "reducescatter",
) -> StepList:
    """Ring reduce-scatter: ``m-1`` steps of ``total_bytes/m`` transfers."""
    _check_ring(hosts)
    if total_bytes <= 0:
        raise ValueError(f"total_bytes must be positive, got {total_bytes}")
    m = len(hosts)
    return _ring_steps(
        hosts, m - 1, total_bytes / m, group_id, index_in_group, job_id, tag
    )


def direct_all_gather(
    hosts: Sequence[str],
    shard_bytes: float,
    group_id: Optional[str] = None,
    index_in_group: int = 0,
    job_id: Optional[str] = None,
    tag: str = "allgather",
) -> StepList:
    """One-step all-gather: every host unicasts its shard to all peers."""
    _check_ring(hosts)
    if shard_bytes <= 0:
        raise ValueError(f"shard_bytes must be positive, got {shard_bytes}")
    flows = [
        Flow(
            src=src,
            dst=dst,
            size=shard_bytes,
            group_id=group_id,
            index_in_group=index_in_group,
            job_id=job_id,
            tag=f"{tag}/direct",
        )
        for src in hosts
        for dst in hosts
        if src != dst
    ]
    return [flows]


def ps_push(
    workers: Sequence[str],
    server: str,
    gradient_bytes: float,
    group_id: Optional[str] = None,
    index_in_group: int = 0,
    job_id: Optional[str] = None,
    tag: str = "ps-push",
) -> StepList:
    """Workers push gradients to the parameter server (one Coflow)."""
    if server in workers:
        raise ValueError(f"PS node {server!r} cannot also be a worker")
    if gradient_bytes <= 0:
        raise ValueError(f"gradient_bytes must be positive, got {gradient_bytes}")
    flows = [
        Flow(
            src=worker,
            dst=server,
            size=gradient_bytes,
            group_id=group_id,
            index_in_group=index_in_group,
            job_id=job_id,
            tag=tag,
        )
        for worker in workers
    ]
    return [flows]


def ps_pull(
    workers: Sequence[str],
    server: str,
    weight_bytes: float,
    group_id: Optional[str] = None,
    index_in_group: int = 0,
    job_id: Optional[str] = None,
    tag: str = "ps-pull",
) -> StepList:
    """The PS broadcasts updated weights back to workers (one Coflow)."""
    if server in workers:
        raise ValueError(f"PS node {server!r} cannot also be a worker")
    if weight_bytes <= 0:
        raise ValueError(f"weight_bytes must be positive, got {weight_bytes}")
    flows = [
        Flow(
            src=server,
            dst=worker,
            size=weight_bytes,
            group_id=group_id,
            index_in_group=index_in_group,
            job_id=job_id,
            tag=tag,
        )
        for worker in workers
    ]
    return [flows]


def total_bytes(steps: StepList) -> float:
    """Total payload of a collective across all steps."""
    return sum(flow.size for step in steps for flow in step)


def flow_count(steps: StepList) -> int:
    return sum(len(step) for step in steps)
