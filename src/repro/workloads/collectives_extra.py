"""Alternative all-reduce algorithms beyond the flat ring.

Real backends (NCCL, Gloo, BlueConnect, Blink) pick among topologies:

* :func:`tree_all_reduce` -- binary-tree reduce to a root, then broadcast
  back down: latency-optimal (O(log m) steps), bandwidth-suboptimal (the
  root's links carry the full payload).
* :func:`halving_doubling_all_reduce` -- recursive halving (reduce-
  scatter) then recursive doubling (all-gather) on power-of-two worker
  counts: log2(m) exchange rounds with geometrically shrinking payloads.
* :func:`hierarchical_all_reduce` -- BlueConnect-style decomposition for
  oversubscribed fabrics: ring reduce-scatter inside each locality group,
  ring all-reduce across group leaders, ring all-gather back inside the
  groups. Cross-fabric traffic shrinks by the group size.

All return the same ``List[List[Flow]]`` step structure as
:mod:`repro.workloads.collectives`, so DAG builders and EchelonFlow
grouping work unchanged -- from the scheduler's perspective these are just
different Coflow shapes, which is exactly how the paper's backend-agnostic
agent treats them.
"""

from __future__ import annotations

from typing import List, Optional, Sequence

from ..core.flow import Flow
from .collectives import (
    StepList,
    _check_ring,
    ring_all_gather,
    ring_all_reduce,
    ring_reduce_scatter,
)


def tree_all_reduce(
    hosts: Sequence[str],
    total_bytes: float,
    group_id: Optional[str] = None,
    index_in_group: int = 0,
    job_id: Optional[str] = None,
    tag: str = "tree-allreduce",
) -> StepList:
    """Binary-tree reduce followed by binary-tree broadcast.

    Reduce phase: at level ``k``, host ``i`` (with ``i % 2^(k+1) != 0``)
    sends its partial sum (full ``total_bytes``) to host ``i - 2^k``.
    Broadcast mirrors the tree back down.
    """
    _check_ring(hosts)
    if total_bytes <= 0:
        raise ValueError(f"total_bytes must be positive, got {total_bytes}")
    m = len(hosts)
    steps: StepList = []
    # Reduce toward hosts[0].
    stride = 1
    while stride < m:
        flows = []
        for i in range(0, m, 2 * stride):
            j = i + stride
            if j < m:
                flows.append(
                    Flow(
                        src=hosts[j],
                        dst=hosts[i],
                        size=total_bytes,
                        group_id=group_id,
                        index_in_group=index_in_group,
                        job_id=job_id,
                        tag=f"{tag}/reduce-s{stride}",
                    )
                )
        if flows:
            steps.append(flows)
        stride *= 2
    # Broadcast back down, mirroring the reduce tree.
    stride //= 2
    while stride >= 1:
        flows = []
        for i in range(0, m, 2 * stride):
            j = i + stride
            if j < m:
                flows.append(
                    Flow(
                        src=hosts[i],
                        dst=hosts[j],
                        size=total_bytes,
                        group_id=group_id,
                        index_in_group=index_in_group,
                        job_id=job_id,
                        tag=f"{tag}/bcast-s{stride}",
                    )
                )
        if flows:
            steps.append(flows)
        stride //= 2
    return steps


def halving_doubling_all_reduce(
    hosts: Sequence[str],
    total_bytes: float,
    group_id: Optional[str] = None,
    index_in_group: int = 0,
    job_id: Optional[str] = None,
    tag: str = "hd-allreduce",
) -> StepList:
    """Recursive halving/doubling; requires a power-of-two host count."""
    _check_ring(hosts)
    if total_bytes <= 0:
        raise ValueError(f"total_bytes must be positive, got {total_bytes}")
    m = len(hosts)
    if m & (m - 1):
        raise ValueError(f"halving-doubling needs a power-of-two count, got {m}")
    steps: StepList = []
    # Recursive halving (reduce-scatter): distance doubles, payload halves.
    distance = 1
    payload = total_bytes / 2.0
    while distance < m:
        flows = []
        for i in range(m):
            peer = i ^ distance
            flows.append(
                Flow(
                    src=hosts[i],
                    dst=hosts[peer],
                    size=payload,
                    group_id=group_id,
                    index_in_group=index_in_group,
                    job_id=job_id,
                    tag=f"{tag}/halve-d{distance}",
                )
            )
        steps.append(flows)
        distance *= 2
        payload /= 2.0
    # Recursive doubling (all-gather): mirror with growing payloads.
    distance = m // 2
    payload = total_bytes / m
    while distance >= 1:
        flows = []
        for i in range(m):
            peer = i ^ distance
            flows.append(
                Flow(
                    src=hosts[i],
                    dst=hosts[peer],
                    size=payload,
                    group_id=group_id,
                    index_in_group=index_in_group,
                    job_id=job_id,
                    tag=f"{tag}/double-d{distance}",
                )
            )
        steps.append(flows)
        distance //= 2
        payload *= 2.0
    return steps


def hierarchical_all_reduce(
    groups: Sequence[Sequence[str]],
    total_bytes: float,
    group_id: Optional[str] = None,
    index_in_group: int = 0,
    job_id: Optional[str] = None,
    tag: str = "hier-allreduce",
) -> StepList:
    """Three-phase locality-aware all-reduce (BlueConnect-style).

    ``groups`` partitions the workers by locality (e.g. one group per
    leaf). Phase 1: ring reduce-scatter inside each group (concurrent
    across groups). Phase 2: ring all-reduce of the scattered shards
    across same-rank leaders. Phase 3: ring all-gather inside each group.
    Cross-group traffic is ``1/|group|`` of a flat ring's.
    """
    groups = [tuple(g) for g in groups]
    if len(groups) < 2:
        raise ValueError("need at least two locality groups")
    sizes = {len(g) for g in groups}
    if len(sizes) != 1:
        raise ValueError("locality groups must have equal sizes")
    group_size = sizes.pop()
    if group_size < 2:
        raise ValueError("each locality group needs >= 2 hosts")
    all_hosts = [h for g in groups for h in g]
    if len(set(all_hosts)) != len(all_hosts):
        raise ValueError("groups must be disjoint")
    if total_bytes <= 0:
        raise ValueError(f"total_bytes must be positive, got {total_bytes}")

    kwargs = dict(
        group_id=group_id, index_in_group=index_in_group, job_id=job_id
    )
    steps: StepList = []
    # Phase 1: intra-group reduce-scatter, concurrent across groups.
    phase1 = [
        ring_reduce_scatter(g, total_bytes, tag=f"{tag}/rs-g{gi}", **kwargs)
        for gi, g in enumerate(groups)
    ]
    for step_index in range(group_size - 1):
        steps.append([f for per_group in phase1 for f in per_group[step_index]])
    # Phase 2: cross-group ring all-reduce per shard-rank.
    shard = total_bytes / group_size
    phase2 = [
        ring_all_reduce(
            [g[rank] for g in groups], shard, tag=f"{tag}/xg-r{rank}", **kwargs
        )
        for rank in range(group_size)
    ]
    for step_index in range(2 * (len(groups) - 1)):
        steps.append([f for per_rank in phase2 for f in per_rank[step_index]])
    # Phase 3: intra-group all-gather.
    phase3 = [
        ring_all_gather(g, shard, tag=f"{tag}/ag-g{gi}", **kwargs)
        for gi, g in enumerate(groups)
    ]
    for step_index in range(group_size - 1):
        steps.append([f for per_group in phase3 for f in per_group[step_index]])
    return steps


ALLREDUCE_ALGORITHMS = {
    "ring": ring_all_reduce,
    "tree": tree_all_reduce,
    "halving-doubling": halving_doubling_all_reduce,
}


def all_reduce(
    algorithm: str,
    hosts: Sequence[str],
    total_bytes: float,
    **kwargs,
) -> StepList:
    """Dispatch an all-reduce by algorithm name ('ring', 'tree', ...)."""
    try:
        builder = ALLREDUCE_ALGORITHMS[algorithm]
    except KeyError:
        raise KeyError(
            f"unknown all-reduce algorithm {algorithm!r}; "
            f"available: {sorted(ALLREDUCE_ALGORITHMS)}"
        )
    return builder(hosts, total_bytes, **kwargs)
