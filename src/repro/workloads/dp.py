"""Data parallelism: AllReduce and Parameter Server variants (Fig. 4).

Per iteration and per worker: forward pass, then per-bucket backward
computations in reverse layer order, each releasing that bucket's gradient
synchronization. The paper's Case I: the gradient flows of one bucket form
a **Coflow** (Eq. 5 arrangement) because the optimizer step -- and hence the
next iteration -- can only proceed once they all finish.

* **AllReduce**: each bucket runs a ring all-reduce across workers.
* **PS**: each bucket's push flows form one Coflow; the PS then updates and
  the pull (weight broadcast) flows form another Coflow, "as the completion
  of them all signifies the start of the next training iteration".

Gradient bucketing overlaps communication with the remaining backward
computation, which is why even Coflow-compliant DP benefits from scheduling
across jobs.
"""

from __future__ import annotations

from typing import List, Optional, Sequence

from ..core.arrangement import CoflowArrangement
from ..core.echelonflow import EchelonFlow
from ..simulator.dag import TaskDag
from .collectives import ps_pull, ps_push, ring_all_reduce
from .collectives_extra import all_reduce
from .job import BuiltJob, add_collective, check_hosts
from .model import ModelSpec


def _bucket_backward_tasks(
    dag: TaskDag,
    model: ModelSpec,
    worker: str,
    iteration: int,
    forward_task: str,
    buckets,
) -> List[str]:
    """Per-bucket backward chain on one worker; returns bwd task ids."""
    task_ids: List[str] = []
    previous = forward_task
    for bucket in buckets:
        duration = sum(model.layers[i].backward_time for i in bucket.layer_indices)
        task_id = f"it{iteration}/bwd/{worker}/b{bucket.index}"
        dag.add_compute(
            task_id,
            device=worker,
            duration=duration,
            deps=[previous],
            priority=bucket.index,
            tag=f"bwd bucket {bucket.index}",
        )
        task_ids.append(task_id)
        previous = task_id
    return task_ids


def build_dp_allreduce(
    job_id: str,
    model: ModelSpec,
    workers: Sequence[str],
    bucket_bytes: float,
    iterations: int = 1,
    update_time: float = 0.0,
    algorithm: str = "ring",
) -> BuiltJob:
    """Data parallelism with per-bucket all-reduce.

    ``algorithm`` selects the collective implementation ("ring", "tree",
    or "halving-doubling"); the EchelonFlow grouping is identical either
    way -- each bucket's flows form one Coflow.
    """
    workers = check_hosts(workers)
    if iterations < 1:
        raise ValueError(f"iterations must be >= 1, got {iterations}")
    dag = TaskDag(job_id)
    echelonflows: List[EchelonFlow] = []
    buckets = model.gradient_buckets(bucket_bytes)
    barrier_deps: List[str] = []

    for iteration in range(iterations):
        fwd_tasks = []
        for worker in workers:
            task_id = f"it{iteration}/fwd/{worker}"
            dag.add_compute(
                task_id,
                device=worker,
                duration=model.total_forward_time,
                deps=barrier_deps,
                tag="forward",
            )
            fwd_tasks.append(task_id)
        sync_tails: List[str] = []
        per_worker_bwd = {
            worker: _bucket_backward_tasks(
                dag, model, worker, iteration, fwd_task, buckets
            )
            for worker, fwd_task in zip(workers, fwd_tasks)
        }
        for bucket in buckets:
            ef_id = f"{job_id}/it{iteration}/ar{bucket.index}"
            steps = all_reduce(
                algorithm,
                workers,
                bucket.param_bytes,
                group_id=ef_id,
                job_id=job_id,
                tag=f"allreduce b{bucket.index}",
            )
            coflow = EchelonFlow(ef_id, CoflowArrangement(), job_id=job_id)
            for step in steps:
                for flow in step:
                    coflow.add_flow(flow)
            echelonflows.append(coflow)
            deps = [per_worker_bwd[worker][bucket.index] for worker in workers]
            tail = add_collective(dag, ef_id, steps, deps=deps)
            sync_tails.append(tail)
        if update_time > 0:
            updates = []
            for worker in workers:
                task_id = f"it{iteration}/update/{worker}"
                dag.add_compute(
                    task_id,
                    device=worker,
                    duration=update_time,
                    deps=sync_tails,
                    tag="optimizer",
                )
                updates.append(task_id)
            barrier_deps = updates
        else:
            barrier_id = f"it{iteration}/barrier"
            dag.add_barrier(barrier_id, deps=sync_tails)
            barrier_deps = [barrier_id]

    return BuiltJob(
        dag=dag,
        echelonflows=echelonflows,
        paradigm="dp-allreduce",
        meta={
            "workers": list(workers),
            "buckets": len(buckets),
            "iterations": iterations,
            "model": model.name,
        },
    )


def build_dp_ps(
    job_id: str,
    model: ModelSpec,
    workers: Sequence[str],
    server: str,
    bucket_bytes: float,
    iterations: int = 1,
    update_time: float = 0.0,
) -> BuiltJob:
    """Data parallelism with a (logical) parameter server."""
    workers = check_hosts(workers)
    if server in workers:
        raise ValueError(f"PS node {server!r} cannot also be a worker")
    if iterations < 1:
        raise ValueError(f"iterations must be >= 1, got {iterations}")
    dag = TaskDag(job_id)
    echelonflows: List[EchelonFlow] = []
    buckets = model.gradient_buckets(bucket_bytes)
    barrier_deps: List[str] = []

    for iteration in range(iterations):
        fwd_tasks = []
        for worker in workers:
            task_id = f"it{iteration}/fwd/{worker}"
            dag.add_compute(
                task_id,
                device=worker,
                duration=model.total_forward_time,
                deps=barrier_deps,
                tag="forward",
            )
            fwd_tasks.append(task_id)
        per_worker_bwd = {
            worker: _bucket_backward_tasks(
                dag, model, worker, iteration, fwd_task, buckets
            )
            for worker, fwd_task in zip(workers, fwd_tasks)
        }
        pull_tails: List[str] = []
        for bucket in buckets:
            push_ef = f"{job_id}/it{iteration}/push{bucket.index}"
            push_steps = ps_push(
                workers,
                server,
                bucket.param_bytes,
                group_id=push_ef,
                job_id=job_id,
                tag=f"push b{bucket.index}",
            )
            push_coflow = EchelonFlow(push_ef, CoflowArrangement(), job_id=job_id)
            for flow in push_steps[0]:
                push_coflow.add_flow(flow)
            echelonflows.append(push_coflow)
            deps = [per_worker_bwd[worker][bucket.index] for worker in workers]
            push_tail = add_collective(dag, push_ef, push_steps, deps=deps)

            update_id = f"it{iteration}/ps-update/b{bucket.index}"
            dag.add_compute(
                update_id,
                device=server,
                duration=update_time,
                deps=[push_tail],
                priority=bucket.index,
                tag="ps update",
            )

            pull_ef = f"{job_id}/it{iteration}/pull{bucket.index}"
            pull_steps = ps_pull(
                workers,
                server,
                bucket.param_bytes,
                group_id=pull_ef,
                job_id=job_id,
                tag=f"pull b{bucket.index}",
            )
            pull_coflow = EchelonFlow(pull_ef, CoflowArrangement(), job_id=job_id)
            for flow in pull_steps[0]:
                pull_coflow.add_flow(flow)
            echelonflows.append(pull_coflow)
            pull_tails.append(add_collective(dag, pull_ef, pull_steps, deps=[update_id]))

        barrier_id = f"it{iteration}/barrier"
        dag.add_barrier(barrier_id, deps=pull_tails)
        barrier_deps = [barrier_id]

    return BuiltJob(
        dag=dag,
        echelonflows=echelonflows,
        paradigm="dp-ps",
        meta={
            "workers": list(workers),
            "server": server,
            "buckets": len(buckets),
            "iterations": iterations,
            "model": model.name,
        },
    )
