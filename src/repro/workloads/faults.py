"""Fault and perturbation utilities: stragglers and background traffic.

Production clusters deviate from profiles: a device thermally throttles, a
tenant's traffic bursts, a job starts late. These helpers perturb built
jobs and engines so experiments can measure how schedules *recover* -- the
core promise of tardiness-anchored deadlines (Fig. 6b).

Note the difference from :mod:`repro.profiling.noise`: noise corrupts the
*arrangement* while reality stays nominal; faults corrupt *reality* while
the arrangement keeps claiming the nominal pattern.

Link-level faults (outages, degradation, flapping) and scheduler crashes
live in :mod:`repro.faults`; this module re-exports the chaos surface and
adds the :func:`fail_link` / :func:`degrade_link` conveniences so it stays
the single import point for fault experiments.
"""

from __future__ import annotations

from typing import Callable, Dict, List, Optional, Sequence

from ..core.flow import Flow
from ..faults import (  # noqa: F401  (re-exported chaos surface)
    FaultEvent,
    FaultInjector,
    FaultSchedule,
    FaultSpecError,
    ResilientScheduler,
    SchedulerCrash,
    parse_fault_spec,
)
from ..simulator.dag import TaskDag, TaskKind
from ..simulator.engine import Engine
from .job import BuiltJob


def scale_device_durations(dag: TaskDag, device: str, factor: float) -> TaskDag:
    """A copy of ``dag`` with every compute on ``device`` scaled by
    ``factor`` (> 1 models a straggler GPU, < 1 a faster replacement).

    Comm tasks keep their original Flow objects, so the returned DAG must
    be submitted *instead of* the original, never alongside it.
    """
    if factor <= 0:
        raise ValueError(f"scale factor must be positive, got {factor}")
    scaled = TaskDag(dag.job_id)
    for task_id in dag.topological_order():
        task = dag.task(task_id)
        if task.kind is TaskKind.COMPUTE:
            duration = task.duration
            if task.device == device:
                duration *= factor
            scaled.add_compute(
                task_id,
                device=task.device,
                duration=duration,
                deps=task.deps,
                priority=task.priority,
                tag=task.tag,
            )
        elif task.kind is TaskKind.COMM:
            scaled.add_comm(task_id, list(task.flows), deps=task.deps, tag=task.tag)
        else:
            scaled.add_barrier(task_id, deps=task.deps, tag=task.tag)
    return scaled


def with_straggler(job: BuiltJob, device: str, factor: float) -> BuiltJob:
    """The job with one straggler device; EchelonFlows are unchanged --
    their arrangements still describe the *nominal* computation pattern,
    exactly the mismatch a real straggler creates."""
    return BuiltJob(
        dag=scale_device_durations(job.dag, device, factor),
        echelonflows=job.echelonflows,
        paradigm=job.paradigm,
        meta={**job.meta, "straggler": (device, factor)},
    )


def inject_background_stream(
    engine: Engine,
    src: str,
    dst: str,
    flow_size: float,
    period: float,
    count: int,
    start_time: float = 0.0,
    job_id: Optional[str] = None,
) -> List[Flow]:
    """Schedule ``count`` ungrouped flows of ``flow_size`` every ``period``.

    Models a bursty co-tenant the coordinator knows nothing about (no
    EchelonFlow registration). Returns the flows for later inspection.
    """
    if period <= 0:
        raise ValueError(f"period must be positive, got {period}")
    if count < 1:
        raise ValueError(f"count must be >= 1, got {count}")
    flows: List[Flow] = []
    for k in range(count):
        flow = Flow(src, dst, flow_size, job_id=job_id, tag=f"bg{k}")
        engine.inject_background_flow(flow, at_time=start_time + k * period)
        flows.append(flow)
    return flows


def _attach_link_events(engine: Engine, events: List[FaultEvent]) -> FaultInjector:
    injector = FaultInjector(FaultSchedule(events))
    injector.attach(engine)
    return injector


def fail_link(
    engine: Engine,
    src: str,
    dst: str,
    at_time: float,
    duration: Optional[float] = None,
    directed: bool = False,
) -> FaultInjector:
    """Take the ``src``-``dst`` link down at ``at_time``.

    With ``duration`` the link restores to nominal capacity afterwards;
    without it the outage is permanent. ``directed=False`` (default) hits
    both directions of the duplex pair. Thin wrapper over
    :class:`repro.faults.FaultInjector`; returns the attached injector.
    """
    links = ((src, dst),) if directed else ((src, dst), (dst, src))
    events = [FaultEvent(time=at_time, action="link_down", links=links)]
    if duration is not None:
        if duration <= 0:
            raise ValueError(f"duration must be positive, got {duration}")
        events.append(
            FaultEvent(time=at_time + duration, action="link_restore", links=links)
        )
    return _attach_link_events(engine, events)


def degrade_link(
    engine: Engine,
    src: str,
    dst: str,
    at_time: float,
    factor: float,
    duration: Optional[float] = None,
    directed: bool = False,
) -> FaultInjector:
    """Drop the ``src``-``dst`` link to ``factor`` x nominal capacity.

    ``0 < factor < 1``; with ``duration`` the link restores afterwards.
    Thin wrapper over :class:`repro.faults.FaultInjector`; returns the
    attached injector.
    """
    links = ((src, dst),) if directed else ((src, dst), (dst, src))
    events = [
        FaultEvent(time=at_time, action="degrade", links=links, factor=factor)
    ]
    if duration is not None:
        if duration <= 0:
            raise ValueError(f"duration must be positive, got {duration}")
        events.append(
            FaultEvent(time=at_time + duration, action="link_restore", links=links)
        )
    return _attach_link_events(engine, events)


def pause_device(engine: Engine, device: str, at_time: float, duration: float) -> None:
    """Occupy a device with a filler task (e.g. a co-located inference
    burst or a GC pause) for ``duration`` starting at ``at_time``.

    Implemented as a one-task job with maximal priority so it preempts
    nothing running but blocks the queue while active.
    """
    if duration <= 0:
        raise ValueError(f"duration must be positive, got {duration}")
    dag = TaskDag(f"_pause/{device}/{at_time}")
    dag.add_compute(
        "pause",
        device=device,
        duration=duration,
        priority=-(10 ** 9),  # runs as soon as the device frees up
        tag="pause",
    )
    engine.submit(dag, at_time=at_time)
