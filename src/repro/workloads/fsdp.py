"""Fully-Sharded Data Parallelism (ZeRO-3 style, Fig. 3) -- Case III.

Parameters are sharded across workers; before each layer's forward (and
again before its backward) the full layer is reassembled with an
all-gather, and after each layer's backward the gradient shards are
dispatched with a reduce-scatter.

EchelonFlow structure (Eq. 7): the flows of each all-gather form a Coflow;
the ``2n`` all-gather Coflows of one iteration concatenate into a single
EchelonFlow whose per-Coflow ideal finish times ramp by ``T_fwd`` through
the forward phase and ``T_bwd`` through the backward phase. Member flows
carry the Coflow's index as their arrangement index, so flows inside one
all-gather share an ideal finish time while consecutive all-gathers are
staggered -- "staggered Coflow finish time" in Table 1.

Reduce-scatter flows per layer form independent Coflows, equivalent to DP
gradient synchronization from the network's perspective.

``prefetch_limit`` bounds how many layers ahead the all-gather pipeline may
run (memory pressure in real FSDP); the communication/computation overlap
it creates is exactly why simultaneous Coflow finish times are wrong here.
"""

from __future__ import annotations

from typing import List, Optional, Sequence

from ..core.arrangement import (
    CoflowArrangement,
    PhasedArrangement,
    TabledArrangement,
)
from ..core.echelonflow import EchelonFlow
from ..simulator.dag import TaskDag
from .collectives import ring_all_gather, ring_reduce_scatter
from .job import BuiltJob, add_collective, check_hosts
from .model import ModelSpec


def fsdp_arrangement(model: ModelSpec, exact: bool = False):
    """Eq. 7 arrangement for a model: forward ramp then backward ramp.

    The paper's Eq. 7 uses two profiled constants ``T_fwd``/``T_bwd``; with
    ``exact=True`` a :class:`TabledArrangement` uses the true per-layer
    durations instead (useful for heterogeneous models).
    """
    n = model.num_layers
    if not exact:
        t_fwd = model.total_forward_time / n
        t_bwd = model.total_backward_time / n
        return PhasedArrangement(
            layers=n, forward_distance=t_fwd, backward_distance=t_bwd
        )
    offsets = [0.0]
    total = 0.0
    for layer in model.layers[:-1]:
        total += layer.forward_time
        offsets.append(total)
    # Transition into the backward phase: the last layer's forward gates
    # the first backward all-gather.
    total += model.layers[-1].forward_time
    offsets.append(total)
    for layer in list(reversed(model.layers))[:-1]:
        total += layer.backward_time
        offsets.append(total)
    return TabledArrangement(tuple(offsets))


def build_fsdp(
    job_id: str,
    model: ModelSpec,
    workers: Sequence[str],
    iterations: int = 1,
    prefetch_limit: int = 2,
    update_time: float = 0.0,
    exact_arrangement: bool = False,
) -> BuiltJob:
    """ZeRO-3/FSDP job: layer-wise all-gather + reduce-scatter."""
    workers = check_hosts(workers)
    if iterations < 1:
        raise ValueError(f"iterations must be >= 1, got {iterations}")
    if prefetch_limit < 1:
        raise ValueError(f"prefetch_limit must be >= 1, got {prefetch_limit}")
    m = len(workers)
    n = model.num_layers
    dag = TaskDag(job_id)
    echelonflows: List[EchelonFlow] = []
    barrier_deps: List[str] = []

    for it in range(iterations):
        ag_ef = EchelonFlow(
            f"{job_id}/it{it}/ag",
            fsdp_arrangement(model, exact=exact_arrangement),
            job_id=job_id,
        )
        echelonflows.append(ag_ef)

        # ---------------- forward phase ----------------
        # All-gathers are gated by *memory* (how far compute has advanced),
        # not by each other: up to ``prefetch_limit`` layer gathers may be
        # in flight concurrently, which is exactly the contention that
        # makes simultaneous Coflow finish times wrong for FSDP (Fig. 3).
        fwd_ag_tail: dict = {}
        fwd_tasks = {worker: [] for worker in workers}
        for li, layer in enumerate(model.layers):
            deps = list(barrier_deps)
            if li >= prefetch_limit:
                # Memory bound: can't gather layer li until layer
                # li - prefetch_limit's forward ran everywhere.
                gate = li - prefetch_limit
                deps.extend(f"it{it}/F{gate}/{w}" for w in workers)
            steps = ring_all_gather(
                workers,
                max(layer.param_bytes / m, 1.0),
                group_id=ag_ef.ef_id,
                index_in_group=li,
                job_id=job_id,
                tag=f"ag fwd l{li}",
            )
            for step in steps:
                for flow in step:
                    ag_ef.add_flow(flow)
            fwd_ag_tail[li] = add_collective(dag, f"it{it}/ag{li}", steps, deps=deps)
            for worker in workers:
                fdeps = [fwd_ag_tail[li]]
                if li > 0:
                    fdeps.append(f"it{it}/F{li - 1}/{worker}")
                task_id = f"it{it}/F{li}/{worker}"
                dag.add_compute(
                    task_id,
                    device=worker,
                    duration=layer.forward_time,
                    deps=fdeps,
                    priority=li,
                    tag=f"F l{li}",
                )
                fwd_tasks[worker].append(task_id)

        # ---------------- backward phase ----------------
        # Backward prefetch begins at the loss: the first
        # ``prefetch_limit`` re-gathers are gated by the last forward
        # compute, later ones by backward progress (memory again).
        rs_tails: List[str] = []
        bwd_ag_tail: dict = {}
        for k, li in enumerate(reversed(range(n))):
            layer = model.layers[li]
            index = n + k
            if k >= prefetch_limit:
                gate_layer = n - 1 - (k - prefetch_limit)
                deps = [f"it{it}/B{gate_layer}/{w}" for w in workers]
            else:
                deps = [f"it{it}/F{n - 1}/{w}" for w in workers]
            steps = ring_all_gather(
                workers,
                max(layer.param_bytes / m, 1.0),
                group_id=ag_ef.ef_id,
                index_in_group=index,
                job_id=job_id,
                tag=f"ag bwd l{li}",
            )
            for step in steps:
                for flow in step:
                    ag_ef.add_flow(flow)
            bwd_ag_tail[k] = add_collective(dag, f"it{it}/ag-b{li}", steps, deps=deps)

            for worker in workers:
                bdeps = [bwd_ag_tail[k]]
                if k == 0:
                    bdeps.append(f"it{it}/F{n - 1}/{worker}")
                else:
                    bdeps.append(f"it{it}/B{li + 1}/{worker}")
                dag.add_compute(
                    f"it{it}/B{li}/{worker}",
                    device=worker,
                    duration=layer.backward_time,
                    deps=bdeps,
                    priority=n + k,
                    tag=f"B l{li}",
                )

            rs_ef_id = f"{job_id}/it{it}/rs{li}"
            rs_steps = ring_reduce_scatter(
                workers,
                max(layer.param_bytes, 1.0),
                group_id=rs_ef_id,
                job_id=job_id,
                tag=f"rs l{li}",
            )
            rs_ef = EchelonFlow(rs_ef_id, CoflowArrangement(), job_id=job_id)
            for step in rs_steps:
                for flow in step:
                    rs_ef.add_flow(flow)
            echelonflows.append(rs_ef)
            rs_deps = [f"it{it}/B{li}/{w}" for w in workers]
            rs_tails.append(add_collective(dag, rs_ef_id, rs_steps, deps=rs_deps))

        tails = rs_tails + [f"it{it}/B0/{w}" for w in workers]
        if update_time > 0:
            updates = []
            for worker in workers:
                task_id = f"it{it}/update/{worker}"
                dag.add_compute(
                    task_id,
                    device=worker,
                    duration=update_time,
                    deps=tails,
                    tag="optimizer",
                )
                updates.append(task_id)
            barrier_deps = updates
        else:
            barrier_id = f"it{it}/barrier"
            dag.add_barrier(barrier_id, deps=tails)
            barrier_deps = [barrier_id]

    return BuiltJob(
        dag=dag,
        echelonflows=echelonflows,
        paradigm="fsdp",
        meta={
            "workers": list(workers),
            "layers": n,
            "iterations": iterations,
            "prefetch_limit": prefetch_limit,
            "model": model.name,
        },
    )
