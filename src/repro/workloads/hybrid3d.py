"""3D hybrid parallelism: TP x PP x DP in one job (Megatron-LM style).

The paper's introduction motivates EchelonFlow with models like MT-NLG
530B, which train with *all three* parallel dimensions at once:

* **TP** inside a stage: each pipeline stage is sharded across a tensor-
  parallel group; every layer's forward/backward ends in an all-reduce
  within the group (Eq. 5 Coflows).
* **PP** across stages: activations/gradients travel between consecutive
  stages' TP groups as point-to-point transfers, micro-batch by
  micro-batch (Eq. 6 staggered EchelonFlows per boundary and per
  TP rank).
* **DP** across replicas: after the pipeline flush, each stage's
  parameter shard is all-reduced across the data-parallel replicas
  (Eq. 5 Coflows, one per stage per bucket).

The resulting EchelonFlow mix is exactly why a *unified* abstraction is
needed: one job simultaneously emits same-finish Coflows and staggered
EchelonFlows, and a scheduler keyed to either alone mis-handles the other.

Worker grid: ``workers[replica][stage][tp_rank]``; helpers build it from
a flat host list.
"""

from __future__ import annotations

from typing import Dict, List, Optional, Sequence, Tuple

from ..core.arrangement import CoflowArrangement, StaggeredArrangement
from ..core.echelonflow import EchelonFlow
from ..core.flow import Flow
from ..simulator.dag import TaskDag
from .collectives import ring_all_reduce
from .job import BuiltJob
from .model import ModelSpec


def grid_from_hosts(
    hosts: Sequence[str], dp: int, pp: int, tp: int
) -> List[List[List[str]]]:
    """Shape a flat host list into the [replica][stage][tp_rank] grid.

    Hosts are assigned TP-innermost (TP groups get adjacent hosts, the
    standard locality-aware mapping).
    """
    needed = dp * pp * tp
    if len(hosts) < needed:
        raise ValueError(f"need {needed} hosts for dp={dp} pp={pp} tp={tp}")
    if len(set(hosts[:needed])) != needed:
        raise ValueError("hosts must be distinct")
    grid: List[List[List[str]]] = []
    index = 0
    for _replica in range(dp):
        stages: List[List[str]] = []
        for _stage in range(pp):
            stages.append(list(hosts[index : index + tp]))
            index += tp
        grid.append(stages)
    return grid


def build_hybrid_3d(
    job_id: str,
    model: ModelSpec,
    grid: Sequence[Sequence[Sequence[str]]],
    num_micro_batches: int,
    iterations: int = 1,
    dp_bucket_bytes: Optional[float] = None,
) -> BuiltJob:
    """Build a TP x PP x DP job over a worker grid.

    ``grid[replica][stage][tp_rank]``; all replicas must share the same
    (pp, tp) shape. Per-stage compute is divided by the TP degree and the
    micro-batch count; TP all-reduces are emitted per stage per
    micro-batch (fused over the stage's layers, the Megatron-LM
    sequence-parallel fusion); DP gradient all-reduces are emitted per
    stage after the flush.
    """
    grid = [list(map(list, replica)) for replica in grid]
    if not grid:
        raise ValueError("empty worker grid")
    dp = len(grid)
    pp = len(grid[0])
    tp = len(grid[0][0]) if pp else 0
    for replica in grid:
        if len(replica) != pp or any(len(group) != tp for group in replica):
            raise ValueError("all replicas must share the same (pp, tp) shape")
    if pp < 1 or tp < 1:
        raise ValueError("need at least one stage and one TP rank")
    flat = [h for replica in grid for group in replica for h in group]
    if len(set(flat)) != len(flat):
        raise ValueError("grid hosts must be distinct")
    if num_micro_batches < 1:
        raise ValueError(f"need >= 1 micro-batches, got {num_micro_batches}")
    if iterations < 1:
        raise ValueError(f"iterations must be >= 1, got {iterations}")

    stages = model.pipeline_partition(pp) if pp > 1 else None
    if stages is not None:
        stage_fwd = [s.forward_time for s in stages]
        stage_bwd = [s.backward_time for s in stages]
        stage_act = [s.boundary_activation_bytes for s in stages]
        stage_params = [
            sum(model.layers[i].param_bytes for i in s.layer_indices) for s in stages
        ]
        stage_act_sync = [
            sum(model.layers[i].activation_bytes for i in s.layer_indices)
            for s in stages
        ]
    else:
        stage_fwd = [model.total_forward_time]
        stage_bwd = [model.total_backward_time]
        stage_act = [model.layers[-1].activation_bytes]
        stage_params = [model.total_param_bytes]
        stage_act_sync = [sum(l.activation_bytes for l in model.layers)]

    m_frac = 1.0 / num_micro_batches
    dag = TaskDag(job_id)
    echelonflows: List[EchelonFlow] = []
    barrier_deps: List[str] = []

    def fwd_task(it, r, s, m):
        return f"it{it}/r{r}/F{s}.{m}"

    def bwd_task(it, r, s, m):
        return f"it{it}/r{r}/B{s}.{m}"

    for it in range(iterations):
        # Per-replica, per-boundary staggered EchelonFlows (PP traffic).
        pp_fwd_efs: Dict[Tuple[int, int], EchelonFlow] = {}
        pp_bwd_efs: Dict[Tuple[int, int], EchelonFlow] = {}
        for r in range(dp):
            for s in range(pp - 1):
                ef = EchelonFlow(
                    f"{job_id}/it{it}/r{r}/fwd{s}-{s + 1}",
                    StaggeredArrangement(
                        distance=stage_fwd[s + 1] * m_frac / tp
                    ),
                    job_id=job_id,
                )
                pp_fwd_efs[(r, s)] = ef
                echelonflows.append(ef)
                ef = EchelonFlow(
                    f"{job_id}/it{it}/r{r}/bwd{s + 1}-{s}",
                    StaggeredArrangement(distance=stage_bwd[s] * m_frac / tp),
                    job_id=job_id,
                )
                pp_bwd_efs[(r, s)] = ef
                echelonflows.append(ef)

        # ---------------- forward ----------------
        for r in range(dp):
            replica = grid[r]
            for s in range(pp):
                for m in range(num_micro_batches):
                    deps = list(barrier_deps)
                    if m > 0:
                        deps.append(fwd_task(it, r, s, m - 1))
                    if s > 0:
                        deps.append(f"it{it}/r{r}/act{s - 1}.{m}")
                    # TP-sharded compute on every rank of the group.
                    rank_tasks = []
                    for k, worker in enumerate(replica[s]):
                        task_id = f"{fwd_task(it, r, s, m)}/k{k}"
                        dag.add_compute(
                            task_id,
                            device=worker,
                            duration=stage_fwd[s] * m_frac / tp,
                            deps=deps,
                            priority=m,
                            tag=f"F s{s} mb{m}",
                        )
                        rank_tasks.append(task_id)
                    # TP activation all-reduce inside the group.
                    if tp > 1:
                        ef_id = f"{job_id}/it{it}/r{r}/as{s}.{m}"
                        steps = ring_all_reduce(
                            replica[s],
                            max(stage_act_sync[s] * m_frac, 1.0),
                            group_id=ef_id,
                            job_id=job_id,
                            tag=f"tp-as s{s} mb{m}",
                        )
                        coflow = EchelonFlow(ef_id, CoflowArrangement(), job_id=job_id)
                        for step in steps:
                            for flow in step:
                                coflow.add_flow(flow)
                        echelonflows.append(coflow)
                        from .job import add_collective

                        tail = add_collective(dag, ef_id, steps, deps=rank_tasks)
                        join_deps = [tail]
                    else:
                        join_deps = rank_tasks
                    dag.add_barrier(fwd_task(it, r, s, m), deps=join_deps)
                    # PP activation transfer to the next stage (rank-wise).
                    if s < pp - 1:
                        flows = []
                        for k in range(tp):
                            flow = Flow(
                                src=replica[s][k],
                                dst=replica[s + 1][k],
                                size=max(stage_act[s] * m_frac / tp, 1.0),
                                group_id=pp_fwd_efs[(r, s)].ef_id,
                                index_in_group=m,
                                job_id=job_id,
                                tag=f"act r{r} s{s}->s{s + 1} mb{m}",
                            )
                            pp_fwd_efs[(r, s)].add_flow(flow)
                            flows.append(flow)
                        dag.add_comm(
                            f"it{it}/r{r}/act{s}.{m}",
                            flows,
                            deps=[fwd_task(it, r, s, m)],
                            tag=f"act s{s} mb{m}",
                        )

        # ---------------- backward (GPipe flush order) ----------------
        for r in range(dp):
            replica = grid[r]
            for s in reversed(range(pp)):
                for k_rev, m in enumerate(reversed(range(num_micro_batches))):
                    deps = []
                    if k_rev > 0:
                        deps.append(bwd_task(it, r, s, m + 1))
                    if s == pp - 1:
                        if k_rev == 0:
                            deps.append(fwd_task(it, r, s, num_micro_batches - 1))
                    else:
                        deps.append(f"it{it}/r{r}/grad{s + 1}.{m}")
                    rank_tasks = []
                    for k, worker in enumerate(replica[s]):
                        task_id = f"{bwd_task(it, r, s, m)}/k{k}"
                        dag.add_compute(
                            task_id,
                            device=worker,
                            duration=stage_bwd[s] * m_frac / tp,
                            deps=deps,
                            priority=num_micro_batches + k_rev,
                            tag=f"B s{s} mb{m}",
                        )
                        rank_tasks.append(task_id)
                    dag.add_barrier(bwd_task(it, r, s, m), deps=rank_tasks)
                    if s > 0:
                        flows = []
                        for k in range(tp):
                            flow = Flow(
                                src=replica[s][k],
                                dst=replica[s - 1][k],
                                size=max(stage_act[s - 1] * m_frac / tp, 1.0),
                                group_id=pp_bwd_efs[(r, s - 1)].ef_id,
                                index_in_group=k_rev,
                                job_id=job_id,
                                tag=f"grad r{r} s{s}->s{s - 1} mb{m}",
                            )
                            pp_bwd_efs[(r, s - 1)].add_flow(flow)
                            flows.append(flow)
                        dag.add_comm(
                            f"it{it}/r{r}/grad{s}.{m}",
                            flows,
                            deps=[bwd_task(it, r, s, m)],
                            tag=f"grad s{s} mb{m}",
                        )

        # ---------------- DP gradient sync across replicas ----------------
        sync_tails: List[str] = []
        if dp > 1:
            from .job import add_collective

            for s in range(pp):
                for k in range(tp):
                    ef_id = f"{job_id}/it{it}/dp-ar/s{s}k{k}"
                    ring_hosts = [grid[r][s][k] for r in range(dp)]
                    steps = ring_all_reduce(
                        ring_hosts,
                        max(stage_params[s] / tp, 1.0),
                        group_id=ef_id,
                        job_id=job_id,
                        tag=f"dp-ar s{s} k{k}",
                    )
                    coflow = EchelonFlow(ef_id, CoflowArrangement(), job_id=job_id)
                    for step in steps:
                        for flow in step:
                            coflow.add_flow(flow)
                    echelonflows.append(coflow)
                    deps = [bwd_task(it, r, s, 0) for r in range(dp)]
                    sync_tails.append(add_collective(dag, ef_id, steps, deps=deps))
        else:
            sync_tails = [
                bwd_task(it, 0, s, 0) for s in range(pp)
            ]

        barrier_id = f"it{it}/barrier"
        dag.add_barrier(barrier_id, deps=sync_tails)
        barrier_deps = [barrier_id]

    return BuiltJob(
        dag=dag,
        echelonflows=echelonflows,
        paradigm="hybrid-3d",
        meta={
            "dp": dp,
            "pp": pp,
            "tp": tp,
            "micro_batches": num_micro_batches,
            "iterations": iterations,
            "model": model.name,
        },
    )
