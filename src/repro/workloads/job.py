"""Common job-building machinery shared by all paradigm builders.

A paradigm builder turns (model, placement, hyper-parameters) into a
:class:`BuiltJob`: a task DAG plus the EchelonFlows that describe its
communication pattern, exactly the information the framework reports to the
EchelonFlow Agent in the system sketch ("the framework breaks down the
workflow into EchelonFlows ... and reports the arrangement function and
per-flow information").
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Dict, Iterable, List, Optional, Sequence, Tuple

from ..core.echelonflow import EchelonFlow
from ..simulator.dag import TaskDag
from .collectives import StepList


@dataclass
class BuiltJob:
    """A ready-to-submit training job."""

    dag: TaskDag
    echelonflows: List[EchelonFlow] = field(default_factory=list)
    #: Paradigm name ("dp-allreduce", "pp-gpipe", ...), for reporting.
    paradigm: str = ""
    #: Free-form metadata (iteration markers, profiled times, ...).
    meta: Dict[str, object] = field(default_factory=dict)

    @property
    def job_id(self) -> str:
        return self.dag.job_id

    def submit_to(self, engine, at_time: float = 0.0) -> None:
        """Convenience: submit DAG and register EchelonFlows with an engine."""
        engine.submit(self.dag, at_time=at_time, echelonflows=tuple(self.echelonflows))


def add_collective(
    dag: TaskDag,
    task_prefix: str,
    steps: StepList,
    deps: Iterable[str] = (),
    tag: str = "",
) -> str:
    """Append a multi-step collective to a DAG as chained comm tasks.

    Step ``i`` depends on step ``i-1`` (ring algorithms are inherently
    sequential); the first step takes the caller's ``deps``. Returns the
    task id of the final step, which downstream tasks should depend on.
    """
    if not steps:
        raise ValueError(f"collective {task_prefix!r} has no steps")
    previous: Optional[str] = None
    for step_index, flows in enumerate(steps):
        task_id = f"{task_prefix}/s{step_index}"
        step_deps = list(deps) if previous is None else [previous]
        dag.add_comm(task_id, flows, deps=step_deps, tag=tag or task_prefix)
        previous = task_id
    assert previous is not None
    return previous


def check_hosts(hosts: Sequence[str], minimum: int = 2) -> Tuple[str, ...]:
    hosts = tuple(hosts)
    if len(hosts) < minimum:
        raise ValueError(f"need at least {minimum} hosts, got {len(hosts)}")
    if len(set(hosts)) != len(hosts):
        raise ValueError("hosts must be distinct")
    return hosts
