"""Neural-network model descriptions.

Only the quantities that reach the network matter to flow scheduling: per-
layer parameter bytes (gradient/weight traffic), activation bytes at layer
boundaries (pipeline traffic), and profiled compute durations (the
"distance" of the arrangement function). :class:`ModelSpec` carries exactly
these, plus helpers for gradient bucketing (DP), stage partitioning (PP),
and layer sharding (TP/FSDP).
"""

from __future__ import annotations

from dataclasses import dataclass, replace
from typing import List, Sequence, Tuple


@dataclass(frozen=True)
class LayerSpec:
    """One layer (or fused block) of a model."""

    name: str
    param_bytes: float
    activation_bytes: float
    forward_time: float
    backward_time: float

    def __post_init__(self) -> None:
        if self.param_bytes < 0 or self.activation_bytes < 0:
            raise ValueError(f"layer {self.name!r} has negative sizes")
        if self.forward_time < 0 or self.backward_time < 0:
            raise ValueError(f"layer {self.name!r} has negative compute times")

    def scaled(self, compute_scale: float = 1.0, size_scale: float = 1.0) -> "LayerSpec":
        return replace(
            self,
            param_bytes=self.param_bytes * size_scale,
            activation_bytes=self.activation_bytes * size_scale,
            forward_time=self.forward_time * compute_scale,
            backward_time=self.backward_time * compute_scale,
        )


@dataclass(frozen=True)
class GradientBucket:
    """A fused set of consecutive layers synchronized together (DP/FSDP)."""

    index: int
    layer_indices: Tuple[int, ...]
    param_bytes: float


@dataclass(frozen=True)
class PipelineStagePartition:
    """A contiguous slice of layers assigned to one pipeline stage."""

    index: int
    layer_indices: Tuple[int, ...]
    forward_time: float
    backward_time: float
    #: Bytes crossing the boundary *out of* this stage in the forward pass.
    boundary_activation_bytes: float


@dataclass(frozen=True)
class ModelSpec:
    """An ordered stack of layers."""

    name: str
    layers: Tuple[LayerSpec, ...]

    def __post_init__(self) -> None:
        if not self.layers:
            raise ValueError(f"model {self.name!r} has no layers")
        object.__setattr__(self, "layers", tuple(self.layers))

    # ------------------------------------------------------------------
    # aggregates
    # ------------------------------------------------------------------

    @property
    def num_layers(self) -> int:
        return len(self.layers)

    @property
    def total_param_bytes(self) -> float:
        return sum(layer.param_bytes for layer in self.layers)

    @property
    def total_forward_time(self) -> float:
        return sum(layer.forward_time for layer in self.layers)

    @property
    def total_backward_time(self) -> float:
        return sum(layer.backward_time for layer in self.layers)

    def scaled(self, compute_scale: float = 1.0, size_scale: float = 1.0) -> "ModelSpec":
        return ModelSpec(
            name=self.name,
            layers=tuple(
                layer.scaled(compute_scale, size_scale) for layer in self.layers
            ),
        )

    # ------------------------------------------------------------------
    # partitioning helpers
    # ------------------------------------------------------------------

    def gradient_buckets(self, bucket_bytes: float) -> List[GradientBucket]:
        """Fuse layers (in *backward* order) into buckets of ~bucket_bytes.

        PyTorch DDP-style bucketing: gradients materialize from the last
        layer backwards, so bucket 0 holds the deepest layers.
        """
        if bucket_bytes <= 0:
            raise ValueError(f"bucket_bytes must be positive, got {bucket_bytes}")
        buckets: List[GradientBucket] = []
        current: List[int] = []
        current_bytes = 0.0
        for layer_index in reversed(range(self.num_layers)):
            layer = self.layers[layer_index]
            current.append(layer_index)
            current_bytes += layer.param_bytes
            if current_bytes >= bucket_bytes:
                buckets.append(
                    GradientBucket(len(buckets), tuple(current), current_bytes)
                )
                current, current_bytes = [], 0.0
        if current:
            buckets.append(GradientBucket(len(buckets), tuple(current), current_bytes))
        return buckets

    def pipeline_partition(self, num_stages: int) -> List[PipelineStagePartition]:
        """Split layers into contiguous stages balanced by compute time."""
        if num_stages <= 0:
            raise ValueError(f"num_stages must be positive, got {num_stages}")
        if num_stages > self.num_layers:
            raise ValueError(
                f"cannot split {self.num_layers} layers into {num_stages} stages"
            )
        total_time = self.total_forward_time + self.total_backward_time
        target = total_time / num_stages
        stages: List[PipelineStagePartition] = []
        current: List[int] = []
        current_time = 0.0
        stage_index = 0
        for layer_index, layer in enumerate(self.layers):
            current.append(layer_index)
            current_time += layer.forward_time + layer.backward_time
            remaining_layers = self.num_layers - layer_index - 1
            remaining_stages = num_stages - stage_index - 1
            if (
                current_time >= target and remaining_stages > 0
            ) or remaining_layers == remaining_stages > 0:
                stages.append(self._make_stage(stage_index, current))
                current, current_time = [], 0.0
                stage_index += 1
        if current:
            stages.append(self._make_stage(stage_index, current))
        if len(stages) != num_stages:
            raise RuntimeError(
                f"partitioning produced {len(stages)} stages, wanted {num_stages}"
            )
        return stages

    def _make_stage(self, index: int, layer_indices: List[int]) -> PipelineStagePartition:
        layers = [self.layers[i] for i in layer_indices]
        return PipelineStagePartition(
            index=index,
            layer_indices=tuple(layer_indices),
            forward_time=sum(l.forward_time for l in layers),
            backward_time=sum(l.backward_time for l in layers),
            boundary_activation_bytes=layers[-1].activation_bytes,
        )


def uniform_model(
    name: str,
    num_layers: int,
    param_bytes_per_layer: float,
    activation_bytes: float,
    forward_time: float,
    backward_time: float = None,
) -> ModelSpec:
    """A homogeneous model: identical layers -- handy for controlled tests."""
    if backward_time is None:
        backward_time = 2.0 * forward_time  # the usual ~2x fwd rule of thumb
    layers = tuple(
        LayerSpec(
            name=f"layer{i}",
            param_bytes=param_bytes_per_layer,
            activation_bytes=activation_bytes,
            forward_time=forward_time,
            backward_time=backward_time,
        )
        for i in range(num_layers)
    )
    return ModelSpec(name=name, layers=layers)
