"""Job placement: assigning a job's workers to cluster hosts.

Multi-tenant GPU clusters fragment (the paper cites Jeon et al.'s trace
analysis), so jobs rarely get clean contiguous allocations. The policies
here produce the host lists that paradigm builders consume.
"""

from __future__ import annotations

import random
from typing import List, Optional, Sequence

from ..topology.graph import Topology


class PlacementError(Exception):
    """Not enough free hosts to place a job."""


class ClusterPlacer:
    """Tracks host occupancy and hands out placements."""

    def __init__(self, topology: Topology) -> None:
        self.topology = topology
        self._free: List[str] = list(topology.hosts)
        self._assignments: dict = {}

    @property
    def free_hosts(self) -> List[str]:
        return list(self._free)

    def assignment(self, job_id: str) -> List[str]:
        return list(self._assignments[job_id])

    def _take(self, job_id: str, hosts: Sequence[str]) -> List[str]:
        for host in hosts:
            self._free.remove(host)
        self._assignments[job_id] = list(hosts)
        return list(hosts)

    def place_contiguous(self, job_id: str, count: int) -> List[str]:
        """First-fit: the first ``count`` free hosts in topology order."""
        if count > len(self._free):
            raise PlacementError(
                f"job {job_id!r} needs {count} hosts, only {len(self._free)} free"
            )
        return self._take(job_id, self._free[:count])

    def place_spread(self, job_id: str, count: int, stride: int = 2) -> List[str]:
        """Strided placement: every ``stride``-th free host (fragmentation)."""
        if count > len(self._free):
            raise PlacementError(
                f"job {job_id!r} needs {count} hosts, only {len(self._free)} free"
            )
        picked: List[str] = []
        index = 0
        while len(picked) < count:
            picked.append(self._free[index % len(self._free)])
            index += stride
            # Fall back to linear fill once strides wrap onto used slots.
            while index < len(self._free) and self._free[index % len(self._free)] in picked:
                index += 1
        # Deduplicate preserving order (strides may collide on small pools).
        seen = []
        for host in picked:
            if host not in seen:
                seen.append(host)
        remaining = [h for h in self._free if h not in seen]
        while len(seen) < count:
            seen.append(remaining.pop(0))
        return self._take(job_id, seen[:count])

    def place_random(
        self, job_id: str, count: int, rng: Optional[random.Random] = None
    ) -> List[str]:
        """Uniform random placement (seeded for reproducibility)."""
        if count > len(self._free):
            raise PlacementError(
                f"job {job_id!r} needs {count} hosts, only {len(self._free)} free"
            )
        rng = rng or random.Random(0)
        hosts = rng.sample(self._free, count)
        return self._take(job_id, hosts)

    def release(self, job_id: str) -> None:
        hosts = self._assignments.pop(job_id, [])
        self._free.extend(hosts)
        self._free.sort()
