"""Pipeline parallelism (GPipe-style, Fig. 1) -- the paper's Case II.

The model is partitioned into contiguous stages, one per worker; each
mini-batch is split into micro-batches that stream through the stages.
Activations flow forward between consecutive stages and activation
gradients flow backward, as point-to-point transfers.

EchelonFlows: all forward transfers between one worker pair in one
iteration form an EchelonFlow with the Eq. 6 staggered arrangement -- flow
``f_j`` (micro-batch ``j``) should ideally finish ``T`` after ``f_{j-1}``,
where ``T`` is the *consumer's* per-micro-batch computation time (profiled).
Backward transfers form the symmetric EchelonFlow with the consumer's
backward time as the distance.

:func:`build_pipeline_segment` is the two-worker slice of this pattern used
by the Fig. 2 motivating example and the Fig. 6 intuition figure.
"""

from __future__ import annotations

from typing import List, Optional, Sequence

from ..core.arrangement import StaggeredArrangement
from ..core.echelonflow import EchelonFlow
from ..core.flow import Flow
from ..simulator.dag import TaskDag
from .job import BuiltJob, check_hosts
from .model import ModelSpec


def build_pp_gpipe(
    job_id: str,
    model: ModelSpec,
    workers: Sequence[str],
    num_micro_batches: int,
    iterations: int = 1,
    update_time: float = 0.0,
) -> BuiltJob:
    """GPipe: forward all micro-batches, flush, backward in reverse order."""
    workers = check_hosts(workers)
    if num_micro_batches < 1:
        raise ValueError(f"need >= 1 micro-batches, got {num_micro_batches}")
    if iterations < 1:
        raise ValueError(f"iterations must be >= 1, got {iterations}")

    num_stages = len(workers)
    stages = model.pipeline_partition(num_stages)
    m_frac = 1.0 / num_micro_batches
    fwd_time = [stage.forward_time * m_frac for stage in stages]
    bwd_time = [stage.backward_time * m_frac for stage in stages]
    act_bytes = [stage.boundary_activation_bytes * m_frac for stage in stages]

    dag = TaskDag(job_id)
    echelonflows: List[EchelonFlow] = []
    barrier_deps: List[str] = []

    for it in range(iterations):
        # Per-boundary EchelonFlows for this iteration (fresh reference each
        # iteration: the job "recalibrates ... whenever a new EchelonFlow is
        # generated").
        fwd_efs = []
        bwd_efs = []
        for s in range(num_stages - 1):
            fwd_ef = EchelonFlow(
                f"{job_id}/it{it}/fwd{s}-{s + 1}",
                StaggeredArrangement(distance=fwd_time[s + 1]),
                job_id=job_id,
            )
            fwd_efs.append(fwd_ef)
            bwd_ef = EchelonFlow(
                f"{job_id}/it{it}/bwd{s + 1}-{s}",
                StaggeredArrangement(distance=bwd_time[s]),
                job_id=job_id,
            )
            bwd_efs.append(bwd_ef)
        echelonflows.extend(fwd_efs)
        echelonflows.extend(bwd_efs)

        # Forward phase.
        for s in range(num_stages):
            for m in range(num_micro_batches):
                deps = list(barrier_deps)
                if m > 0:
                    deps.append(f"it{it}/F{s}.{m - 1}")
                if s > 0:
                    deps.append(f"it{it}/actr{s - 1}.{m}/s0")
                dag.add_compute(
                    f"it{it}/F{s}.{m}",
                    device=workers[s],
                    duration=fwd_time[s],
                    deps=deps,
                    priority=m,
                    tag=f"F mb{m}",
                )
                if s < num_stages - 1:
                    flow = Flow(
                        src=workers[s],
                        dst=workers[s + 1],
                        size=act_bytes[s],
                        group_id=fwd_efs[s].ef_id,
                        index_in_group=m,
                        job_id=job_id,
                        tag=f"act s{s}->s{s + 1} mb{m}",
                    )
                    fwd_efs[s].add_flow(flow)
                    dag.add_comm(
                        f"it{it}/actr{s}.{m}/s0",
                        [flow],
                        deps=[f"it{it}/F{s}.{m}"],
                        tag=f"act mb{m}",
                    )

        # Backward phase: reverse micro-batch order per stage.
        for s in reversed(range(num_stages)):
            for k, m in enumerate(reversed(range(num_micro_batches))):
                deps = []
                if k > 0:
                    deps.append(f"it{it}/B{s}.{m + 1}")
                if s == num_stages - 1:
                    if k == 0:
                        deps.append(f"it{it}/F{s}.{num_micro_batches - 1}")
                else:
                    deps.append(f"it{it}/gradr{s + 1}.{m}/s0")
                dag.add_compute(
                    f"it{it}/B{s}.{m}",
                    device=workers[s],
                    duration=bwd_time[s],
                    deps=deps,
                    priority=num_micro_batches + k,
                    tag=f"B mb{m}",
                )
                if s > 0:
                    flow = Flow(
                        src=workers[s],
                        dst=workers[s - 1],
                        size=act_bytes[s - 1],
                        group_id=bwd_efs[s - 1].ef_id,
                        index_in_group=k,
                        job_id=job_id,
                        tag=f"grad s{s}->s{s - 1} mb{m}",
                    )
                    bwd_efs[s - 1].add_flow(flow)
                    dag.add_comm(
                        f"it{it}/gradr{s}.{m}/s0",
                        [flow],
                        deps=[f"it{it}/B{s}.{m}"],
                        tag=f"grad mb{m}",
                    )

        # Synchronous flush: every stage's last backward gates the update.
        tails = [f"it{it}/B{s}.0" for s in range(num_stages)]
        if update_time > 0:
            updates = []
            for s, worker in enumerate(workers):
                task_id = f"it{it}/update/{worker}"
                dag.add_compute(
                    task_id,
                    device=worker,
                    duration=update_time,
                    deps=tails,
                    tag="optimizer",
                )
                updates.append(task_id)
            barrier_deps = updates
        else:
            barrier_id = f"it{it}/barrier"
            dag.add_barrier(barrier_id, deps=tails)
            barrier_deps = [barrier_id]

    return BuiltJob(
        dag=dag,
        echelonflows=echelonflows,
        paradigm="pp-gpipe",
        meta={
            "workers": list(workers),
            "stages": num_stages,
            "micro_batches": num_micro_batches,
            "iterations": iterations,
            "model": model.name,
            "fwd_time": fwd_time,
            "bwd_time": bwd_time,
        },
    )


def build_pipeline_segment(
    job_id: str,
    src: str,
    dst: str,
    release_times: Sequence[float],
    flow_sizes: Sequence[float],
    consumer_compute_times: Sequence[float],
    distance: Optional[float] = None,
) -> BuiltJob:
    """A two-worker pipeline slice: the Fig. 2 / Fig. 6 setting.

    The producer releases micro-batch ``j``'s activations at
    ``release_times[j]`` (modelled as a chain of producer computes whose
    durations are the release gaps); the consumer processes micro-batches in
    order, taking ``consumer_compute_times[j]`` each. All transfers form one
    EchelonFlow with the Eq. 6 staggered arrangement; ``distance`` defaults
    to the (uniform) consumer compute time, as profiling would report.
    """
    if not (len(release_times) == len(flow_sizes) == len(consumer_compute_times)):
        raise ValueError("release/size/compute lists must have equal lengths")
    if not release_times:
        raise ValueError("need at least one micro-batch")
    if list(release_times) != sorted(release_times):
        raise ValueError("release times must be non-decreasing")
    if src == dst:
        raise ValueError("producer and consumer must differ")
    if distance is None:
        distance = consumer_compute_times[0]

    dag = TaskDag(job_id)
    echelonflow = EchelonFlow(
        f"{job_id}/ef", StaggeredArrangement(distance=distance), job_id=job_id
    )

    previous_release: Optional[str] = None
    previous_compute: Optional[str] = None
    last_release_time = 0.0
    for m, (release, size, compute) in enumerate(
        zip(release_times, flow_sizes, consumer_compute_times)
    ):
        gap = release - (last_release_time if previous_release else 0.0)
        release_task = f"rel{m}"
        deps = [previous_release] if previous_release else []
        dag.add_compute(
            release_task,
            device=src,
            duration=gap if previous_release else release,
            deps=deps,
            priority=m,
            tag=f"produce mb{m}",
        )
        last_release_time = release
        previous_release = release_task

        flow = Flow(
            src=src,
            dst=dst,
            size=size,
            group_id=echelonflow.ef_id,
            index_in_group=m,
            job_id=job_id,
            tag=f"act mb{m}",
        )
        echelonflow.add_flow(flow)
        comm_task = f"xfer{m}"
        dag.add_comm(comm_task, [flow], deps=[release_task], tag=f"xfer mb{m}")

        compute_task = f"cons{m}"
        compute_deps = [comm_task]
        if previous_compute:
            compute_deps.append(previous_compute)
        dag.add_compute(
            compute_task,
            device=dst,
            duration=compute,
            deps=compute_deps,
            priority=m,
            tag=f"consume mb{m}",
        )
        previous_compute = compute_task

    return BuiltJob(
        dag=dag,
        echelonflows=[echelonflow],
        paradigm="pp-segment",
        meta={
            "micro_batches": len(release_times),
            "distance": distance,
        },
    )
