"""1F1B pipeline parallelism (PipeDream-flush / Megatron-LM schedule).

The paper notes that later PP implementations "create similar computation
pipelines, while reordering computations and data transmissions based on
the data dependency", and that their flow relations "can also be expressed
as an arrangement function, albeit more complicated than Eq. 6". This
module is that case: the synchronous 1F1B schedule.

Schedule per stage ``s`` of ``p`` stages with ``m`` micro-batches:

* **warm-up**: run ``p - s`` forward micro-batches;
* **steady state**: alternate one backward, one forward (1B1F from the
  stage's perspective) until forwards are exhausted;
* **cool-down**: drain the remaining backwards.

Compared to GPipe this caps in-flight activations at ``p - s`` instead of
``m``, and it *interleaves* forward and backward traffic on every
boundary, so the ideal finish times of a boundary's forward flows are no
longer spaced uniformly by ``T_fwd``: once the consumer enters steady
state each forward is consumed one full (``T_fwd + T_bwd``) cycle after
the previous one. The arrangement is therefore a :class:`TabledArrangement`
built from the consumer's simulated schedule -- exactly what profiling
would produce.
"""

from __future__ import annotations

from typing import Dict, List, Sequence, Tuple

from ..core.arrangement import TabledArrangement
from ..core.echelonflow import EchelonFlow
from ..core.flow import Flow
from ..simulator.dag import TaskDag
from .job import BuiltJob, check_hosts
from .model import ModelSpec


def one_f_one_b_order(
    stage: int, num_stages: int, num_micro_batches: int
) -> List[Tuple[str, int]]:
    """The per-stage task order of synchronous 1F1B.

    Returns a list of ("F" | "B", micro_batch) pairs. Warm-up depth is
    ``min(num_stages - stage, num_micro_batches)``.
    """
    if not 0 <= stage < num_stages:
        raise ValueError(f"stage {stage} out of range for {num_stages} stages")
    if num_micro_batches < 1:
        raise ValueError(f"need >= 1 micro-batches, got {num_micro_batches}")
    warmup = min(num_stages - stage, num_micro_batches)
    order: List[Tuple[str, int]] = []
    forward_next = 0
    backward_next = 0
    for _ in range(warmup):
        order.append(("F", forward_next))
        forward_next += 1
    while forward_next < num_micro_batches:
        order.append(("B", backward_next))
        backward_next += 1
        order.append(("F", forward_next))
        forward_next += 1
    while backward_next < num_micro_batches:
        order.append(("B", backward_next))
        backward_next += 1
    return order


def _consumption_offsets(
    order: Sequence[Tuple[str, int]],
    kind: str,
    fwd_time: float,
    bwd_time: float,
) -> List[float]:
    """Ideal-finish offsets for the flows feeding tasks of ``kind``.

    Offset ``j`` is the time (relative to the first such task's data
    needs) at which the consumer *starts* the j-th task of that kind in an
    ideally-fed pipeline -- i.e. the cumulative compute time of everything
    the stage runs before it. This is the "more complicated than Eq. 6"
    arrangement: constant ``T`` spacing during warm-up, ``T_f + T_b``
    spacing in steady state.
    """
    offsets: List[float] = []
    clock = 0.0
    for task_kind, _mb in order:
        if task_kind == kind:
            offsets.append(clock)
        clock += fwd_time if task_kind == "F" else bwd_time
    if not offsets:
        return offsets
    base = offsets[0]
    return [value - base for value in offsets]


def _insert_in_topological_order(dag: TaskDag, pending: List[dict]) -> None:
    """Add task specs to the DAG respecting their mutual dependencies.

    Dependencies on tasks already present in the DAG (e.g. the previous
    iteration's barrier) are treated as satisfied.
    """
    by_id = {spec["task_id"]: spec for spec in pending}
    indegree = {
        task_id: sum(1 for dep in spec["deps"] if dep in by_id)
        for task_id, spec in by_id.items()
    }
    successors: Dict[str, List[str]] = {task_id: [] for task_id in by_id}
    for task_id, spec in by_id.items():
        for dep in spec["deps"]:
            if dep in by_id:
                successors[dep].append(task_id)
    frontier = sorted(tid for tid, deg in indegree.items() if deg == 0)
    added = 0
    while frontier:
        task_id = frontier.pop(0)
        spec = by_id[task_id]
        if spec["kind"] == "compute":
            dag.add_compute(
                task_id,
                device=spec["device"],
                duration=spec["duration"],
                deps=spec["deps"],
                priority=spec["priority"],
                tag=spec["tag"],
            )
        else:
            dag.add_comm(task_id, spec["flows"], deps=spec["deps"], tag=spec["tag"])
        added += 1
        newly_ready = []
        for successor in successors[task_id]:
            indegree[successor] -= 1
            if indegree[successor] == 0:
                newly_ready.append(successor)
        frontier.extend(newly_ready)
        frontier.sort()
    if added != len(pending):
        raise RuntimeError("1F1B task specs contain a dependency cycle")


def build_pp_1f1b(
    job_id: str,
    model: ModelSpec,
    workers: Sequence[str],
    num_micro_batches: int,
    iterations: int = 1,
    update_time: float = 0.0,
) -> BuiltJob:
    """Synchronous 1F1B pipeline job with profiled TabledArrangements."""
    workers = check_hosts(workers)
    if num_micro_batches < 1:
        raise ValueError(f"need >= 1 micro-batches, got {num_micro_batches}")
    if iterations < 1:
        raise ValueError(f"iterations must be >= 1, got {iterations}")

    num_stages = len(workers)
    stages = model.pipeline_partition(num_stages)
    m_frac = 1.0 / num_micro_batches
    fwd_time = [s.forward_time * m_frac for s in stages]
    bwd_time = [s.backward_time * m_frac for s in stages]
    act_bytes = [s.boundary_activation_bytes * m_frac for s in stages]
    orders = [
        one_f_one_b_order(s, num_stages, num_micro_batches)
        for s in range(num_stages)
    ]

    dag = TaskDag(job_id)
    echelonflows: List[EchelonFlow] = []
    barrier_deps: List[str] = []

    for it in range(iterations):
        fwd_efs: List[EchelonFlow] = []
        bwd_efs: List[EchelonFlow] = []
        for s in range(num_stages - 1):
            consumer = s + 1
            fwd_offsets = _consumption_offsets(
                orders[consumer], "F", fwd_time[consumer], bwd_time[consumer]
            )
            fwd_efs.append(
                EchelonFlow(
                    f"{job_id}/it{it}/fwd{s}-{s + 1}",
                    TabledArrangement(tuple(fwd_offsets)),
                    job_id=job_id,
                )
            )
            bwd_offsets = _consumption_offsets(
                orders[s], "B", fwd_time[s], bwd_time[s]
            )
            bwd_efs.append(
                EchelonFlow(
                    f"{job_id}/it{it}/bwd{s + 1}-{s}",
                    TabledArrangement(tuple(bwd_offsets)),
                    job_id=job_id,
                )
            )
        echelonflows.extend(fwd_efs)
        echelonflows.extend(bwd_efs)

        # Collect task specs first: 1F1B has forward references (a stage's
        # backward depends on the downstream stage's gradient comm), so
        # specs are inserted into the DAG in topological order afterwards.
        pending: List[dict] = []

        for s, order in enumerate(orders):
            previous_task = None
            for position, (kind, mb) in enumerate(order):
                deps = list(barrier_deps)
                if previous_task is not None:
                    deps.append(previous_task)
                if kind == "F":
                    task_id = f"it{it}/F{s}.{mb}"
                    if s > 0:
                        deps.append(f"it{it}/actr{s - 1}.{mb}/s0")
                    pending.append(
                        {
                            "task_id": task_id,
                            "kind": "compute",
                            "device": workers[s],
                            "duration": fwd_time[s],
                            "deps": deps,
                            "priority": position,
                            "tag": f"F mb{mb}",
                        }
                    )
                    if s < num_stages - 1:
                        flow = Flow(
                            src=workers[s],
                            dst=workers[s + 1],
                            size=act_bytes[s],
                            group_id=fwd_efs[s].ef_id,
                            index_in_group=mb,  # forwards consumed in mb order
                            job_id=job_id,
                            tag=f"act s{s}->s{s + 1} mb{mb}",
                        )
                        fwd_efs[s].add_flow(flow)
                        pending.append(
                            {
                                "task_id": f"it{it}/actr{s}.{mb}/s0",
                                "kind": "comm",
                                "flows": [flow],
                                "deps": [task_id],
                                "tag": f"act mb{mb}",
                            }
                        )
                else:
                    task_id = f"it{it}/B{s}.{mb}"
                    if s < num_stages - 1:
                        deps.append(f"it{it}/gradr{s + 1}.{mb}/s0")
                    else:
                        deps.append(f"it{it}/F{s}.{mb}")
                    pending.append(
                        {
                            "task_id": task_id,
                            "kind": "compute",
                            "device": workers[s],
                            "duration": bwd_time[s],
                            "deps": deps,
                            "priority": position,
                            "tag": f"B mb{mb}",
                        }
                    )
                    if s > 0:
                        flow = Flow(
                            src=workers[s],
                            dst=workers[s - 1],
                            size=act_bytes[s - 1],
                            group_id=bwd_efs[s - 1].ef_id,
                            index_in_group=mb,  # backwards in mb order too
                            job_id=job_id,
                            tag=f"grad s{s}->s{s - 1} mb{mb}",
                        )
                        bwd_efs[s - 1].add_flow(flow)
                        pending.append(
                            {
                                "task_id": f"it{it}/gradr{s}.{mb}/s0",
                                "kind": "comm",
                                "flows": [flow],
                                "deps": [task_id],
                                "tag": f"grad mb{mb}",
                            }
                        )
                previous_task = task_id

        _insert_in_topological_order(dag, pending)

        tails = [f"it{it}/B{s}.{num_micro_batches - 1}" for s in range(num_stages)]
        if update_time > 0:
            updates = []
            for s, worker in enumerate(workers):
                update_id = f"it{it}/update/{worker}"
                dag.add_compute(
                    update_id,
                    device=worker,
                    duration=update_time,
                    deps=tails,
                    tag="optimizer",
                )
                updates.append(update_id)
            barrier_deps = updates
        else:
            barrier_id = f"it{it}/barrier"
            dag.add_barrier(barrier_id, deps=tails)
            barrier_deps = [barrier_id]

    return BuiltJob(
        dag=dag,
        echelonflows=echelonflows,
        paradigm="pp-1f1b",
        meta={
            "workers": list(workers),
            "stages": num_stages,
            "micro_batches": num_micro_batches,
            "iterations": iterations,
            "model": model.name,
        },
    )
