"""Interleaved pipeline parallelism (Megatron-LM virtual stages).

Each worker hosts ``v`` non-contiguous model chunks instead of one
contiguous stage: worker ``w`` runs chunks ``w, w+p, w+2p, ...`` of the
``p*v``-chunk partition, so a micro-batch loops around the worker ring
``v`` times per pass. Finer chunks shrink the pipeline fill/drain bubble
by roughly ``1/v`` at the cost of ``v``-fold more boundary traffic --
including a wrap-around hop from the last worker back to the first.

EchelonFlows: one staggered (Eq. 6) group per chunk boundary and
direction, distance = the consuming chunk's per-micro-batch time. With
``v = 1`` this degenerates exactly to :func:`build_pp_gpipe`'s structure.
The schedule is the flush (GPipe-style) variant of interleaving: all
forwards, then all backwards -- the 1F1B-interleaved reordering of the
same chunks is what `build_pp_1f1b` models for ``v = 1``.
"""

from __future__ import annotations

from typing import Dict, List, Optional, Sequence

from ..core.arrangement import StaggeredArrangement
from ..core.echelonflow import EchelonFlow
from ..core.flow import Flow
from ..simulator.dag import TaskDag
from .job import BuiltJob, check_hosts
from .model import ModelSpec


def build_pp_interleaved(
    job_id: str,
    model: ModelSpec,
    workers: Sequence[str],
    num_micro_batches: int,
    virtual_stages: int = 2,
    iterations: int = 1,
    update_time: float = 0.0,
) -> BuiltJob:
    """GPipe-flush pipeline over ``len(workers) * virtual_stages`` chunks."""
    workers = check_hosts(workers)
    if num_micro_batches < 1:
        raise ValueError(f"need >= 1 micro-batches, got {num_micro_batches}")
    if virtual_stages < 1:
        raise ValueError(f"virtual_stages must be >= 1, got {virtual_stages}")
    if iterations < 1:
        raise ValueError(f"iterations must be >= 1, got {iterations}")

    p = len(workers)
    num_chunks = p * virtual_stages
    if num_chunks > model.num_layers:
        raise ValueError(
            f"{num_chunks} chunks exceed the model's {model.num_layers} layers"
        )
    chunks = model.pipeline_partition(num_chunks)
    m_frac = 1.0 / num_micro_batches
    fwd_time = [c.forward_time * m_frac for c in chunks]
    bwd_time = [c.backward_time * m_frac for c in chunks]
    act_bytes = [c.boundary_activation_bytes * m_frac for c in chunks]

    def worker_of(chunk: int) -> str:
        return workers[chunk % p]

    dag = TaskDag(job_id)
    echelonflows: List[EchelonFlow] = []
    barrier_deps: List[str] = []

    for it in range(iterations):
        fwd_efs: Dict[int, EchelonFlow] = {}
        bwd_efs: Dict[int, EchelonFlow] = {}
        for c in range(num_chunks - 1):
            fwd_efs[c] = EchelonFlow(
                f"{job_id}/it{it}/fwd{c}-{c + 1}",
                StaggeredArrangement(distance=fwd_time[c + 1]),
                job_id=job_id,
            )
            bwd_efs[c] = EchelonFlow(
                f"{job_id}/it{it}/bwd{c + 1}-{c}",
                StaggeredArrangement(distance=bwd_time[c]),
                job_id=job_id,
            )
        echelonflows.extend(fwd_efs.values())
        echelonflows.extend(bwd_efs.values())

        # Forward phase over all chunks.
        for c in range(num_chunks):
            for m in range(num_micro_batches):
                deps = list(barrier_deps)
                if m > 0:
                    deps.append(f"it{it}/F{c}.{m - 1}")
                if c > 0:
                    deps.append(f"it{it}/actr{c - 1}.{m}")
                dag.add_compute(
                    f"it{it}/F{c}.{m}",
                    device=worker_of(c),
                    duration=fwd_time[c],
                    deps=deps,
                    # Earlier chunks and earlier micro-batches first.
                    priority=c * num_micro_batches + m,
                    tag=f"F c{c} mb{m}",
                )
                if c < num_chunks - 1:
                    flow = Flow(
                        src=worker_of(c),
                        dst=worker_of(c + 1),
                        size=max(act_bytes[c], 1.0),
                        group_id=fwd_efs[c].ef_id,
                        index_in_group=m,
                        job_id=job_id,
                        tag=f"act c{c}->c{c + 1} mb{m}",
                    )
                    fwd_efs[c].add_flow(flow)
                    dag.add_comm(
                        f"it{it}/actr{c}.{m}",
                        [flow],
                        deps=[f"it{it}/F{c}.{m}"],
                        tag=f"act mb{m}",
                    )

        # Backward phase, reverse chunk and micro-batch order.
        backward_base = num_chunks * num_micro_batches
        for c in reversed(range(num_chunks)):
            for k, m in enumerate(reversed(range(num_micro_batches))):
                deps = []
                if k > 0:
                    deps.append(f"it{it}/B{c}.{m + 1}")
                if c == num_chunks - 1:
                    if k == 0:
                        deps.append(f"it{it}/F{c}.{num_micro_batches - 1}")
                else:
                    deps.append(f"it{it}/gradr{c + 1}.{m}")
                dag.add_compute(
                    f"it{it}/B{c}.{m}",
                    device=worker_of(c),
                    duration=bwd_time[c],
                    deps=deps,
                    priority=backward_base + (num_chunks - 1 - c) * num_micro_batches + k,
                    tag=f"B c{c} mb{m}",
                )
                if c > 0:
                    flow = Flow(
                        src=worker_of(c),
                        dst=worker_of(c - 1),
                        size=max(act_bytes[c - 1], 1.0),
                        group_id=bwd_efs[c - 1].ef_id,
                        index_in_group=k,
                        job_id=job_id,
                        tag=f"grad c{c}->c{c - 1} mb{m}",
                    )
                    bwd_efs[c - 1].add_flow(flow)
                    dag.add_comm(
                        f"it{it}/gradr{c}.{m}",
                        [flow],
                        deps=[f"it{it}/B{c}.{m}"],
                        tag=f"grad mb{m}",
                    )

        tails = [f"it{it}/B{c}.0" for c in range(num_chunks)]
        if update_time > 0:
            updates = []
            for worker in workers:
                task_id = f"it{it}/update/{worker}"
                dag.add_compute(
                    task_id,
                    device=worker,
                    duration=update_time,
                    deps=tails,
                    tag="optimizer",
                )
                updates.append(task_id)
            barrier_deps = updates
        else:
            barrier_id = f"it{it}/barrier"
            dag.add_barrier(barrier_id, deps=tails)
            barrier_deps = [barrier_id]

    return BuiltJob(
        dag=dag,
        echelonflows=echelonflows,
        paradigm="pp-interleaved",
        meta={
            "workers": list(workers),
            "virtual_stages": virtual_stages,
            "chunks": num_chunks,
            "micro_batches": num_micro_batches,
            "iterations": iterations,
            "model": model.name,
        },
    )
