"""Declarative experiment specs: a JSON-able dict in, results out.

Reviewers and users should be able to describe an experiment without
writing Python. A spec names a topology, a scheduler, and a list of jobs;
:func:`run_spec` builds and runs everything and returns plain-data
results. The CLI exposes this as ``python -m repro run-spec spec.json``.

Example spec::

    {
      "topology": {"kind": "big_switch", "hosts": 8, "bandwidth_gbps": 10},
      "scheduler": {"name": "echelon", "ordering": "hybrid"},
      "jobs": [
        {"name": "bert", "paradigm": "fsdp", "model": "bert_large",
         "workers": 4, "arrival": 0.0},
        {"name": "resnet", "paradigm": "dp-allreduce", "model": "resnet50",
         "workers": 4, "arrival": 0.01, "bucket_mb": 25}
      ]
    }

Workers may be an integer (hosts assigned first-fit in spec order) or an
explicit host list.

An optional ``"faults"`` key takes a chaos spec (string grammar or JSON
list, see ``docs/robustness.md``); the scheduler is then wrapped in a
:class:`~repro.faults.ResilientScheduler` so crash faults degrade
gracefully.
"""

from __future__ import annotations

import json
from typing import Dict, List, Optional, Sequence

from ..core.units import gbps, megabytes
from ..scheduling import make_scheduler
from ..simulator.engine import Engine
from ..topology import big_switch, dumbbell, fat_tree, leaf_spine, linear_chain
from .dp import build_dp_allreduce, build_dp_ps
from .fsdp import build_fsdp
from .job import BuiltJob
from .pp import build_pp_gpipe
from .pp_1f1b import build_pp_1f1b
from .pp_interleaved import build_pp_interleaved
from .tp import build_tp_megatron
from .zoo import get_model

PARADIGMS = (
    "dp-allreduce",
    "dp-ps",
    "pp-gpipe",
    "pp-1f1b",
    "pp-interleaved",
    "tp",
    "fsdp",
)


class SpecError(ValueError):
    """The spec is malformed."""


def _build_topology(spec: Dict):
    kind = spec.get("kind", "big_switch")
    bandwidth = gbps(float(spec.get("bandwidth_gbps", 10.0)))
    if kind == "big_switch":
        return big_switch(int(spec["hosts"]), bandwidth)
    if kind == "linear_chain":
        return linear_chain(int(spec["hosts"]), bandwidth)
    if kind == "leaf_spine":
        return leaf_spine(
            n_leaves=int(spec.get("leaves", 2)),
            hosts_per_leaf=int(spec.get("hosts_per_leaf", 4)),
            host_bandwidth=bandwidth,
            n_spines=int(spec.get("spines", 2)),
            oversubscription=float(spec.get("oversubscription", 1.0)),
        )
    if kind == "fat_tree":
        return fat_tree(int(spec.get("k", 4)), bandwidth)
    if kind == "dumbbell":
        return dumbbell(
            n_left=int(spec.get("left", 2)),
            n_right=int(spec.get("right", 2)),
            host_bandwidth=bandwidth,
            bottleneck_bandwidth=gbps(
                float(spec.get("bottleneck_gbps", spec.get("bandwidth_gbps", 10.0)))
            ),
        )
    raise SpecError(f"unknown topology kind {kind!r}")


def _resolve_workers(
    job_spec: Dict, hosts: Sequence[str], cursor: int
) -> (List[str], int):
    workers = job_spec.get("workers", 2)
    if isinstance(workers, int):
        if cursor + workers > len(hosts):
            raise SpecError(
                f"job {job_spec.get('name')!r} needs {workers} hosts but only "
                f"{len(hosts) - cursor} remain unassigned"
            )
        chosen = list(hosts[cursor : cursor + workers])
        return chosen, cursor + workers
    if isinstance(workers, (list, tuple)):
        missing = [w for w in workers if w not in hosts]
        if missing:
            raise SpecError(f"unknown hosts in worker list: {missing}")
        return list(workers), cursor
    raise SpecError(f"workers must be an int or a host list, got {workers!r}")


def _build_job(job_spec: Dict, workers: List[str], extra_host: Optional[str]) -> BuiltJob:
    name = job_spec.get("name")
    if not name:
        raise SpecError("every job needs a 'name'")
    paradigm = job_spec.get("paradigm", "dp-allreduce")
    if paradigm not in PARADIGMS:
        raise SpecError(f"unknown paradigm {paradigm!r}; options: {PARADIGMS}")
    model = get_model(
        job_spec.get("model", "resnet50"),
        batch_scale=float(job_spec.get("batch_scale", 1.0)),
    )
    iterations = int(job_spec.get("iterations", 1))
    bucket = megabytes(float(job_spec.get("bucket_mb", 50.0)))
    micro_batches = int(job_spec.get("micro_batches", 4))
    if paradigm == "dp-allreduce":
        return build_dp_allreduce(
            name, model, workers, bucket_bytes=bucket, iterations=iterations,
            algorithm=job_spec.get("allreduce", "ring"),
        )
    if paradigm == "dp-ps":
        if extra_host is None:
            raise SpecError("dp-ps needs a spare host for the parameter server")
        return build_dp_ps(
            name, model, workers, extra_host, bucket_bytes=bucket,
            iterations=iterations,
        )
    if paradigm == "pp-gpipe":
        return build_pp_gpipe(name, model, workers, micro_batches, iterations)
    if paradigm == "pp-1f1b":
        return build_pp_1f1b(name, model, workers, micro_batches, iterations)
    if paradigm == "pp-interleaved":
        return build_pp_interleaved(
            name, model, workers, micro_batches, iterations=iterations,
            virtual_stages=int(job_spec.get("virtual_stages", 2)),
        )
    if paradigm == "tp":
        return build_tp_megatron(name, model, workers, iterations=iterations)
    return build_fsdp(
        name, model, workers, iterations=iterations,
        prefetch_limit=int(job_spec.get("prefetch_limit", 2)),
    )


def run_spec(
    spec: Dict,
    *,
    instrumentation=None,
    profile: bool = False,
    faults=None,
    detail: bool = False,
):
    """Build and run a spec; returns plain-data per-job results.

    ``instrumentation`` (a :class:`repro.obs.Instrumentation`) observes
    the run; ``profile`` wraps the scheduler in a
    :class:`repro.obs.ProfiledScheduler` (reachable afterwards as
    ``engine.scheduler``). ``faults`` (a spec string or
    :class:`repro.faults.FaultSchedule`) injects runtime faults; it
    overrides the spec's own ``"faults"`` key, and either form wraps the
    scheduler in a :class:`repro.faults.ResilientScheduler`. With
    ``detail=True`` the return value is the triple
    ``(results, trace, engine)`` instead of just ``results``, so callers
    can export traces and metrics reports.
    """
    if "jobs" not in spec or not spec["jobs"]:
        raise SpecError("spec needs a non-empty 'jobs' list")
    topology = _build_topology(spec.get("topology", {"hosts": 4}))
    scheduler_spec = dict(spec.get("scheduler", {"name": "echelon"}))
    scheduler_name = scheduler_spec.pop("name", "echelon")
    scheduler = make_scheduler(scheduler_name, **scheduler_spec)
    if faults is None:
        faults = spec.get("faults")
    if faults:
        from ..faults import FaultSchedule, ResilientScheduler

        # Parse and validate against the topology now, so a typo'd link
        # in the chaos spec fails the build instead of firing mid-run.
        if isinstance(faults, str):
            faults = FaultSchedule.parse(faults)
        elif isinstance(faults, (list, dict)):
            faults = FaultSchedule.from_json(faults)
        if isinstance(faults, FaultSchedule):
            faults.validate_links(topology)
        scheduler = ResilientScheduler(scheduler)
    if profile:
        from ..obs import ProfiledScheduler

        registry = instrumentation.registry if instrumentation is not None else None
        scheduler = ProfiledScheduler(scheduler, registry=registry)
    engine = Engine(
        topology,
        scheduler,
        scheduling_interval=spec.get("scheduling_interval"),
        device_slots=spec.get("device_slots", 1),
        instrumentation=instrumentation,
        faults=faults or None,
    )
    hosts = topology.hosts
    cursor = 0
    jobs: List[BuiltJob] = []
    for job_spec in spec["jobs"]:
        workers, cursor = _resolve_workers(job_spec, hosts, cursor)
        extra_host = hosts[cursor] if cursor < len(hosts) else None
        if job_spec.get("paradigm") == "dp-ps" and isinstance(
            job_spec.get("workers", 2), int
        ):
            cursor += 1  # the PS consumed one more host
        job = _build_job(job_spec, workers, extra_host)
        job.submit_to(engine, at_time=float(job_spec.get("arrival", 0.0)))
        jobs.append(job)
    trace = engine.run()
    results = {
        "makespan": trace.end_time,
        "scheduler": scheduler_name,
        "scheduler_invocations": engine.scheduler_invocations,
        "jobs": {},
    }
    for job, job_spec in zip(jobs, spec["jobs"]):
        arrival = float(job_spec.get("arrival", 0.0))
        completion = engine.job_completion_time(job.job_id)
        results["jobs"][job.job_id] = {
            "paradigm": job.paradigm,
            "completion_time": completion - arrival,
            "flows": len(trace.flows_of_job(job.job_id)),
        }
    if detail:
        return results, trace, engine
    return results


def run_spec_file(path: str, **kwargs):
    """Load a JSON spec from disk and run it (kwargs as in run_spec)."""
    with open(path) as handle:
        spec = json.load(handle)
    return run_spec(spec, **kwargs)
