"""Tensor parallelism (Megatron-style, Fig. 5) -- Coflow-compliant Case I.

Every layer's parameters are sharded across all workers; each layer's
forward computation ends in an all-reduce of activations and each layer's
backward computation ends in an all-reduce of gradients. The flows of each
all-reduce "fall into a Coflow, as they altogether barrier computation in
the next layer" -- so the arrangement is Eq. 5 per layer.
"""

from __future__ import annotations

from typing import List, Sequence

from ..core.arrangement import CoflowArrangement
from ..core.echelonflow import EchelonFlow
from ..simulator.dag import TaskDag
from .collectives import ring_all_reduce
from .job import BuiltJob, add_collective, check_hosts
from .model import ModelSpec


def build_tp_megatron(
    job_id: str,
    model: ModelSpec,
    workers: Sequence[str],
    iterations: int = 1,
    update_time: float = 0.0,
    sync_every_layer: bool = True,
) -> BuiltJob:
    """Megatron TP: per-layer forward and backward all-reduces.

    Compute is sharded: each worker runs ``1/m`` of every layer's time.
    ``sync_every_layer=False`` fuses backward gradient all-reduces with the
    following layer's compute dependency removed (a "relaxed" variant used
    only in tests).
    """
    workers = check_hosts(workers)
    if iterations < 1:
        raise ValueError(f"iterations must be >= 1, got {iterations}")
    m = len(workers)
    dag = TaskDag(job_id)
    echelonflows: List[EchelonFlow] = []
    barrier_deps: List[str] = []

    for it in range(iterations):
        # Forward: layer computes on all workers, then activation all-reduce.
        previous_sync: List[str] = list(barrier_deps)
        for li, layer in enumerate(model.layers):
            computes = []
            for worker in workers:
                task_id = f"it{it}/F{li}/{worker}"
                dag.add_compute(
                    task_id,
                    device=worker,
                    duration=layer.forward_time / m,
                    deps=previous_sync,
                    priority=li,
                    tag=f"F layer{li}",
                )
                computes.append(task_id)
            ef_id = f"{job_id}/it{it}/as{li}"
            steps = ring_all_reduce(
                workers,
                max(layer.activation_bytes, 1.0),
                group_id=ef_id,
                job_id=job_id,
                tag=f"act sync l{li}",
            )
            coflow = EchelonFlow(ef_id, CoflowArrangement(), job_id=job_id)
            for step in steps:
                for flow in step:
                    coflow.add_flow(flow)
            echelonflows.append(coflow)
            tail = add_collective(dag, ef_id, steps, deps=computes)
            previous_sync = [tail]

        # Backward: reverse layer order, gradient all-reduce per layer.
        for li in reversed(range(model.num_layers)):
            layer = model.layers[li]
            computes = []
            for worker in workers:
                task_id = f"it{it}/B{li}/{worker}"
                dag.add_compute(
                    task_id,
                    device=worker,
                    duration=layer.backward_time / m,
                    deps=previous_sync,
                    priority=model.num_layers + (model.num_layers - 1 - li),
                    tag=f"B layer{li}",
                )
                computes.append(task_id)
            ef_id = f"{job_id}/it{it}/gs{li}"
            steps = ring_all_reduce(
                workers,
                max(layer.param_bytes / m, 1.0),
                group_id=ef_id,
                job_id=job_id,
                tag=f"grad sync l{li}",
            )
            coflow = EchelonFlow(ef_id, CoflowArrangement(), job_id=job_id)
            for step in steps:
                for flow in step:
                    coflow.add_flow(flow)
            echelonflows.append(coflow)
            tail = add_collective(dag, ef_id, steps, deps=computes)
            previous_sync = [tail] if sync_every_layer else computes

        barrier_id = f"it{it}/barrier"
        if update_time > 0:
            updates = []
            for worker in workers:
                task_id = f"it{it}/update/{worker}"
                dag.add_compute(
                    task_id,
                    device=worker,
                    duration=update_time,
                    deps=previous_sync,
                    tag="optimizer",
                )
                updates.append(task_id)
            dag.add_barrier(barrier_id, deps=updates)
        else:
            dag.add_barrier(barrier_id, deps=previous_sync)
        barrier_deps = [barrier_id]

    return BuiltJob(
        dag=dag,
        echelonflows=echelonflows,
        paradigm="tp-megatron",
        meta={
            "workers": list(workers),
            "layers": model.num_layers,
            "iterations": iterations,
            "model": model.name,
        },
    )
