"""A zoo of realistically-sized model specs.

Parameter counts follow the published architectures (AlexNet 61M ... GPT-2
XL 1.5B); per-layer compute times come from a simple roofline: a layer
touching ``P`` parameter bytes on a ``throughput``-bytes-per-second
accelerator takes ``arithmetic_intensity * P / throughput`` seconds forward
and twice that backward. Absolute times are synthetic, but the *ratios*
between communication volume and computation time -- which decide every
scheduling outcome -- track the real models.

All sizes assume fp32 parameters (4 bytes) and fp16-ish activations unless
noted; ``batch_scale`` inflates activations and compute with batch size.
"""

from __future__ import annotations

from typing import Dict, List

from ..core.units import MB
from .model import LayerSpec, ModelSpec

#: Effective parameter-bytes-per-second of the synthetic accelerator. One
#: "V100-ish" device re-touches each parameter byte ~25x per sample; tuned
#: so a ResNet-50 iteration lands near tens of milliseconds.
_DEVICE_THROUGHPUT = 2.0e12
_INTENSITY = 25.0

BYTES_PER_PARAM = 4.0


def _layer(
    name: str,
    params_m: float,
    activation_mb: float,
    batch_scale: float,
    intensity: float = _INTENSITY,
) -> LayerSpec:
    param_bytes = params_m * 1e6 * BYTES_PER_PARAM
    forward = intensity * param_bytes * batch_scale / _DEVICE_THROUGHPUT
    return LayerSpec(
        name=name,
        param_bytes=param_bytes,
        activation_bytes=activation_mb * MB * batch_scale,
        forward_time=forward,
        backward_time=2.0 * forward,
    )


def alexnet(batch_scale: float = 1.0) -> ModelSpec:
    """AlexNet, ~61M parameters; conv trunk plus three fat FC layers."""
    layers = [
        _layer("conv1", 0.035, 4.0, batch_scale),
        _layer("conv2", 0.31, 3.0, batch_scale),
        _layer("conv3", 0.88, 2.5, batch_scale),
        _layer("conv4", 1.33, 2.5, batch_scale),
        _layer("conv5", 0.89, 1.5, batch_scale),
        _layer("fc6", 37.75, 1.0, batch_scale),
        _layer("fc7", 16.78, 1.0, batch_scale),
        _layer("fc8", 4.1, 0.25, batch_scale),
    ]
    return ModelSpec("alexnet", tuple(layers))


def vgg16(batch_scale: float = 1.0) -> ModelSpec:
    """VGG-16, ~138M parameters; notoriously communication-heavy for DP."""
    layers: List[LayerSpec] = []
    conv_params = [0.04, 0.11, 0.22, 0.44, 0.88, 1.18, 2.36, 2.36, 2.36, 2.36, 2.36]
    for i, params in enumerate(conv_params):
        layers.append(_layer(f"conv{i + 1}", params, 6.0, batch_scale))
    layers.append(_layer("fc1", 102.76, 2.0, batch_scale))
    layers.append(_layer("fc2", 16.78, 1.0, batch_scale))
    layers.append(_layer("fc3", 4.1, 0.25, batch_scale))
    return ModelSpec("vgg16", tuple(layers))


def resnet50(batch_scale: float = 1.0) -> ModelSpec:
    """ResNet-50, ~25.6M parameters over 16 residual blocks + stem/head."""
    layers: List[LayerSpec] = [_layer("stem", 0.12, 8.0, batch_scale)]
    stage_blocks = [(3, 0.22), (4, 0.61), (6, 1.22), (3, 3.67)]
    index = 0
    for blocks, params in stage_blocks:
        for _ in range(blocks):
            layers.append(_layer(f"block{index}", params, 4.0, batch_scale))
            index += 1
    layers.append(_layer("head", 2.05, 0.1, batch_scale))
    return ModelSpec("resnet50", tuple(layers))


def bert_large(batch_scale: float = 1.0) -> ModelSpec:
    """BERT-Large, ~340M parameters: embeddings + 24 transformer layers."""
    layers: List[LayerSpec] = [_layer("embed", 31.8, 8.0, batch_scale, intensity=2.0)]
    for i in range(24):
        layers.append(_layer(f"xf{i}", 12.6, 8.0, batch_scale))
    layers.append(_layer("pooler", 1.05, 0.5, batch_scale))
    return ModelSpec("bert_large", tuple(layers))


def gpt2_xl(batch_scale: float = 1.0) -> ModelSpec:
    """GPT-2 XL, ~1.5B parameters: embeddings + 48 transformer layers."""
    layers: List[LayerSpec] = [_layer("embed", 80.0, 12.0, batch_scale, intensity=2.0)]
    for i in range(48):
        layers.append(_layer(f"xf{i}", 29.5, 12.0, batch_scale))
    return ModelSpec("gpt2_xl", tuple(layers))


def tiny_mlp(batch_scale: float = 1.0) -> ModelSpec:
    """A 4-layer toy model for fast tests."""
    layers = [_layer(f"fc{i}", 1.0, 1.0, batch_scale) for i in range(4)]
    return ModelSpec("tiny_mlp", tuple(layers))


_ZOO = {
    "alexnet": alexnet,
    "vgg16": vgg16,
    "resnet50": resnet50,
    "bert_large": bert_large,
    "gpt2_xl": gpt2_xl,
    "tiny_mlp": tiny_mlp,
}


def model_names() -> List[str]:
    return sorted(_ZOO)


def get_model(name: str, batch_scale: float = 1.0) -> ModelSpec:
    try:
        builder = _ZOO[name]
    except KeyError:
        raise KeyError(f"unknown model {name!r}; available: {model_names()}")
    return builder(batch_scale)
