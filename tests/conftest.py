"""Suite-wide pytest wiring.

Loads the repro.check pytest plugin so the whole suite can run under the
runtime sanitizer: ``pytest --repro-check=strict`` (or ``REPRO_CHECK=strict``)
sanitizes every Engine any test constructs, with zero test edits.
"""

pytest_plugins = ("repro.check.pytest_plugin",)
