"""Rate allocation primitives, including hypothesis invariants."""

import pytest
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.simulator.allocation import (
    FlowDemand,
    feasible,
    greedy_priority_fill,
    link_capacities,
    max_min_fair,
    residual_capacities,
)
from repro.topology.graph import Link


def _demand(flow_id, links, weight=1.0, cap=None):
    return FlowDemand(flow_id=flow_id, path=tuple(links), weight=weight, cap=cap)


L_AB = Link("a", "b", 10.0)
L_BC = Link("b", "c", 10.0)
L_CD = Link("c", "d", 4.0)


class TestMaxMinFair:
    def test_single_flow_gets_bottleneck(self):
        rates = max_min_fair([_demand(1, [L_AB, L_CD])])
        assert rates[1] == pytest.approx(4.0)

    def test_equal_split_on_shared_link(self):
        rates = max_min_fair([_demand(1, [L_AB]), _demand(2, [L_AB])])
        assert rates[1] == pytest.approx(5.0)
        assert rates[2] == pytest.approx(5.0)

    def test_weighted_split(self):
        rates = max_min_fair(
            [_demand(1, [L_AB], weight=3.0), _demand(2, [L_AB], weight=1.0)]
        )
        assert rates[1] == pytest.approx(7.5)
        assert rates[2] == pytest.approx(2.5)

    def test_water_filling_redistributes(self):
        # Flow 1 bottlenecked at 4 on CD; flow 2 takes the rest of AB.
        rates = max_min_fair([_demand(1, [L_AB, L_CD]), _demand(2, [L_AB])])
        assert rates[1] == pytest.approx(4.0)
        assert rates[2] == pytest.approx(6.0)

    def test_flow_cap_honoured(self):
        rates = max_min_fair([_demand(1, [L_AB], cap=2.0), _demand(2, [L_AB])])
        assert rates[1] == pytest.approx(2.0)
        assert rates[2] == pytest.approx(8.0)

    def test_empty(self):
        assert max_min_fair([]) == {}

    def test_respects_available_override(self):
        rates = max_min_fair([_demand(1, [L_AB])], available={("a", "b"): 1.0})
        assert rates[1] == pytest.approx(1.0)


class TestGreedyPriorityFill:
    def test_first_flow_takes_bottleneck(self):
        rates = greedy_priority_fill([_demand(1, [L_AB]), _demand(2, [L_AB])])
        assert rates[1] == pytest.approx(10.0)
        assert rates[2] == pytest.approx(0.0)

    def test_disjoint_paths_both_full(self):
        rates = greedy_priority_fill([_demand(1, [L_AB]), _demand(2, [L_CD])])
        assert rates[1] == pytest.approx(10.0)
        assert rates[2] == pytest.approx(4.0)

    def test_base_rates_are_added_to(self):
        rates = greedy_priority_fill(
            [_demand(1, [L_AB])], base_rates={1: 3.0}, available={("a", "b"): 2.0}
        )
        assert rates[1] == pytest.approx(5.0)

    def test_cap_limits_total(self):
        rates = greedy_priority_fill([_demand(1, [L_AB], cap=4.0)])
        assert rates[1] == pytest.approx(4.0)


class TestFeasibility:
    def test_feasible_allocation(self):
        demands = [_demand(1, [L_AB]), _demand(2, [L_AB])]
        assert feasible(demands, {1: 5.0, 2: 5.0})
        assert not feasible(demands, {1: 8.0, 2: 8.0})

    def test_negative_rate_infeasible(self):
        assert not feasible([_demand(1, [L_AB])], {1: -1.0})

    def test_cap_violation_infeasible(self):
        assert not feasible([_demand(1, [L_AB], cap=2.0)], {1: 3.0})

    def test_residual_capacities(self):
        demands = [_demand(1, [L_AB, L_BC])]
        residual = residual_capacities(demands, {1: 4.0})
        assert residual[("a", "b")] == pytest.approx(6.0)
        assert residual[("b", "c")] == pytest.approx(6.0)

    def test_link_capacities_collects_all(self):
        caps = link_capacities([_demand(1, [L_AB, L_CD])])
        assert caps == {("a", "b"): 10.0, ("c", "d"): 4.0}


def test_demand_validation():
    with pytest.raises(ValueError):
        _demand(1, [])
    with pytest.raises(ValueError):
        _demand(1, [L_AB], weight=0.0)
    with pytest.raises(ValueError):
        _demand(1, [L_AB], cap=-1.0)


# ----------------------------------------------------------------------
# property-based invariants
# ----------------------------------------------------------------------

_links = [
    Link("a", "b", 7.0),
    Link("b", "c", 3.0),
    Link("a", "c", 5.0),
    Link("c", "d", 2.0),
    Link("b", "d", 9.0),
]


@st.composite
def demand_sets(draw):
    count = draw(st.integers(min_value=1, max_value=8))
    demands = []
    for flow_id in range(count):
        size = draw(st.integers(min_value=1, max_value=len(_links)))
        indices = draw(
            st.lists(
                st.integers(min_value=0, max_value=len(_links) - 1),
                min_size=size,
                max_size=size,
                unique=True,
            )
        )
        weight = draw(st.floats(min_value=0.1, max_value=4.0))
        demands.append(
            FlowDemand(
                flow_id=flow_id,
                path=tuple(_links[i] for i in indices),
                weight=weight,
            )
        )
    return demands


@given(demand_sets())
@settings(max_examples=60, deadline=None)
def test_max_min_is_always_feasible(demands):
    rates = max_min_fair(demands)
    assert feasible(demands, rates, tolerance=1e-6)
    assert all(rate >= 0 for rate in rates.values())


@given(demand_sets())
@settings(max_examples=60, deadline=None)
def test_max_min_is_pareto_no_free_capacity_for_anyone(demands):
    """Every flow is blocked by at least one saturated link on its path."""
    rates = max_min_fair(demands)
    residual = residual_capacities(demands, rates)
    for demand in demands:
        min_residual = min(residual[link.key] for link in demand.path)
        assert min_residual <= 1e-6, (
            f"flow {demand.flow_id} could still grow by {min_residual}"
        )


@given(demand_sets())
@settings(max_examples=60, deadline=None)
def test_greedy_fill_is_feasible_and_work_conserving(demands):
    rates = greedy_priority_fill(demands)
    assert feasible(demands, rates, tolerance=1e-6)
    residual = residual_capacities(demands, rates)
    for demand in demands:
        min_residual = min(residual[link.key] for link in demand.path)
        assert min_residual <= 1e-6
