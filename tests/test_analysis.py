"""Metrics, timeline rendering, and table formatting."""

import pytest

from repro.analysis import (
    comp_finish_time,
    flow_completion_times,
    format_comparison,
    format_table,
    gpu_idleness,
    iteration_time,
    job_completion_time,
    mean,
    percentile,
    pipeline_bubble_fraction,
    render_device_timeline,
    render_flow_timeline,
    speedup,
    tardiness_report,
)
from repro.core.flow import Flow
from repro.scheduling import FairSharingScheduler
from repro.simulator import Engine, TaskDag
from repro.simulator.trace import ComputeSpan, SimulationTrace
from repro.topology import two_hosts


def _run_simple():
    engine = Engine(two_hosts(2.0), FairSharingScheduler())
    dag = TaskDag("j")
    dag.add_compute("p", device="h0", duration=1.0, tag="produce 0")
    dag.add_comm("x", [Flow("h0", "h1", 4.0, job_id="j")], deps=["p"])
    dag.add_compute("c", device="h1", duration=1.0, deps=["x"], tag="consume 0")
    engine.submit(dag)
    return engine.run()


class TestMetrics:
    def test_comp_finish_and_job_completion(self):
        trace = _run_simple()
        assert comp_finish_time(trace) == pytest.approx(4.0)
        assert job_completion_time(trace, "j") == pytest.approx(4.0)
        with pytest.raises(KeyError):
            job_completion_time(trace, "ghost")

    def test_iteration_time(self):
        trace = _run_simple()
        assert iteration_time(trace, "j", 2) == pytest.approx(2.0)
        with pytest.raises(ValueError):
            iteration_time(trace, "j", 0)

    def test_gpu_idleness(self):
        trace = _run_simple()
        report = gpu_idleness(trace)
        # h0 busy its whole window; h1's window is a single span.
        assert report.device_idle_fraction("h0") == pytest.approx(0.0)
        assert report.device_idle_fraction("h1") == pytest.approx(0.0)
        report_h = gpu_idleness(trace, horizon=4.0)
        # h0 busy 1.0 of [0, 4].
        assert report_h.device_idle_fraction("h0") == pytest.approx(0.75)
        assert 0.0 <= report_h.idle_fraction <= 1.0

    def test_bubble_fraction_formula(self):
        assert pipeline_bubble_fraction(4, 4) == pytest.approx(3.0 / 7.0)
        assert pipeline_bubble_fraction(1, 8) == 0.0
        with pytest.raises(ValueError):
            pipeline_bubble_fraction(0, 4)

    def test_flow_completion_times(self):
        trace = _run_simple()
        assert flow_completion_times(trace) == [pytest.approx(2.0)]

    def test_stats_helpers(self):
        assert mean([1.0, 3.0]) == 2.0
        assert percentile([1, 2, 3, 4], 50) == 2
        assert percentile([1, 2, 3, 4], 100) == 4
        assert speedup(10.0, 5.0) == 2.0
        with pytest.raises(ValueError):
            mean([])
        with pytest.raises(ValueError):
            percentile([], 50)
        with pytest.raises(ValueError):
            percentile([1], 150)
        with pytest.raises(ValueError):
            speedup(1.0, 0.0)

    def test_tardiness_report_skips_incomplete_groups(self):
        from repro.core.arrangement import CoflowArrangement
        from repro.core.echelonflow import EchelonFlow

        trace = _run_simple()
        pending = EchelonFlow("pending", CoflowArrangement())
        pending.add_flow(Flow("h0", "h1", 1.0, group_id="pending"))
        report = tardiness_report(trace, [pending])
        assert report.per_echelonflow == {}


class TestRendering:
    def test_device_timeline_renders_rows(self):
        trace = _run_simple()
        art = render_device_timeline(trace, width=40)
        assert "h0" in art and "h1" in art
        assert "|" in art

    def test_device_timeline_empty(self):
        assert "empty" in render_device_timeline(SimulationTrace())

    def test_flow_timeline(self):
        trace = _run_simple()
        art = render_flow_timeline(trace, width=40)
        assert "=" in art

    def test_flow_timeline_empty(self):
        assert "no flows" in render_flow_timeline(SimulationTrace())


class TestTables:
    def test_format_table_alignment(self):
        table = format_table(
            ["name", "value"],
            [["fair", 1.23456], ["echelon", 0.5]],
            title="T",
        )
        lines = table.splitlines()
        assert lines[0] == "T"
        assert "fair" in table and "1.235" in table

    def test_format_table_row_length_mismatch(self):
        with pytest.raises(ValueError):
            format_table(["a"], [[1, 2]])

    def test_format_comparison(self):
        line = format_comparison("fig2", 8, 8.0, note="exact")
        assert "paper=8" in line and "measured=8.0" in line and "exact" in line
