"""Arrangement functions: Eqs. 5, 6, 7 and profiled tables."""

import pytest

from repro.core.arrangement import (
    CoflowArrangement,
    PhasedArrangement,
    StaggeredArrangement,
    TabledArrangement,
    arrangement_from_compute_durations,
)


class TestCoflowArrangement:
    def test_all_offsets_zero(self):
        arr = CoflowArrangement()
        assert [arr.offset(j) for j in range(5)] == [0.0] * 5

    def test_ideal_finish_times_equal_reference(self):
        arr = CoflowArrangement()
        assert arr.ideal_finish_times(7.5, 4) == [7.5] * 4

    def test_is_coflow(self):
        assert CoflowArrangement().is_coflow(10)

    def test_negative_index_rejected(self):
        with pytest.raises(IndexError):
            CoflowArrangement().offset(-1)


class TestStaggeredArrangement:
    def test_eq6_recurrence(self):
        # d_0 = r; d_j = d_{j-1} + T.
        arr = StaggeredArrangement(distance=2.0)
        times = arr.ideal_finish_times(reference_time=3.0, count=4)
        assert times == [3.0, 5.0, 7.0, 9.0]

    def test_zero_distance_degenerates_to_coflow(self):
        arr = StaggeredArrangement(distance=0.0)
        assert arr.is_coflow(5)

    def test_positive_distance_is_not_coflow(self):
        assert not StaggeredArrangement(distance=1.0).is_coflow(2)
        # ... but trivially a coflow with a single flow.
        assert StaggeredArrangement(distance=1.0).is_coflow(1)

    def test_negative_distance_rejected(self):
        with pytest.raises(ValueError):
            StaggeredArrangement(distance=-1.0)


class TestPhasedArrangement:
    def test_eq7_forward_then_backward(self):
        # n = 3 layers, T_fwd = 1, T_bwd = 2:
        # offsets: C0=0, C1=1, C2=2 (forward), C3=4, C4=6, C5=8 (backward).
        arr = PhasedArrangement(layers=3, forward_distance=1.0, backward_distance=2.0)
        offsets = [arr.offset(i) for i in range(6)]
        assert offsets == [0.0, 1.0, 2.0, 4.0, 6.0, 8.0]

    def test_out_of_range_rejected(self):
        arr = PhasedArrangement(layers=2, forward_distance=1.0, backward_distance=1.0)
        arr.offset(3)  # 2n - 1 = 3 is the last valid index
        with pytest.raises(IndexError):
            arr.offset(4)

    def test_single_layer(self):
        arr = PhasedArrangement(layers=1, forward_distance=5.0, backward_distance=7.0)
        assert arr.offset(0) == 0.0
        assert arr.offset(1) == 7.0

    def test_validation(self):
        with pytest.raises(ValueError):
            PhasedArrangement(layers=0, forward_distance=1.0, backward_distance=1.0)
        with pytest.raises(ValueError):
            PhasedArrangement(layers=2, forward_distance=-1.0, backward_distance=1.0)


class TestTabledArrangement:
    def test_lookup(self):
        arr = TabledArrangement((0.0, 1.0, 1.5))
        assert arr.offset(2) == 1.5

    def test_requires_monotonicity(self):
        with pytest.raises(ValueError):
            TabledArrangement((0.0, 2.0, 1.0))

    def test_out_of_range(self):
        arr = TabledArrangement((0.0,))
        with pytest.raises(IndexError):
            arr.offset(1)

    def test_equal_offsets_is_coflow(self):
        assert TabledArrangement((1.0, 1.0, 1.0)).is_coflow(3)


class TestValidateAndBuilders:
    def test_validate_passes_for_monotone(self):
        StaggeredArrangement(distance=1.0).validate(10)

    def test_from_compute_durations(self):
        # Durations [2, 3, 4]: flow j's ideal finish trails by the sum of
        # the first j durations -> offsets [0, 2, 5].
        arr = arrangement_from_compute_durations([2.0, 3.0, 4.0])
        assert [arr.offset(j) for j in range(3)] == [0.0, 2.0, 5.0]

    def test_from_empty_durations(self):
        arr = arrangement_from_compute_durations([])
        assert arr.offset(0) == 0.0

    def test_from_negative_duration_rejected(self):
        with pytest.raises(ValueError):
            arrangement_from_compute_durations([1.0, -2.0, 3.0])

    def test_ideal_finish_times_rejects_negative_count(self):
        with pytest.raises(ValueError):
            CoflowArrangement().ideal_finish_times(0.0, -1)
