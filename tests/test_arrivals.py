"""Dynamic arrivals and the cluster manager."""

import pytest

from repro import Engine, big_switch
from repro.core.units import gbps, megabytes
from repro.scheduling import EchelonMaddScheduler, FairSharingScheduler
from repro.workloads import (
    ClusterManager,
    JobTemplate,
    build_dp_allreduce,
    poisson_arrivals,
    uniform_model,
)
from repro.workloads.placement import ClusterPlacer

MODEL = uniform_model(
    "u4",
    4,
    param_bytes_per_layer=megabytes(20),
    activation_bytes=megabytes(5),
    forward_time=0.01,
)


def _dp_template(name="dp", workers=2, weight=1.0):
    return JobTemplate(
        name,
        lambda jid, ws: build_dp_allreduce(
            jid, MODEL, ws, bucket_bytes=megabytes(40)
        ),
        worker_count=workers,
        weight=weight,
    )


class TestPoissonArrivals:
    def test_deterministic_given_seed(self):
        template = _dp_template()
        a = poisson_arrivals([template], rate=5.0, count=10, seed=3)
        b = poisson_arrivals([template], rate=5.0, count=10, seed=3)
        assert [x.time for x in a] == [x.time for x in b]
        assert [x.job_id for x in a] == [x.job_id for x in b]

    def test_times_increase(self):
        times = [a.time for a in poisson_arrivals([_dp_template()], 2.0, 20, seed=1)]
        assert times == sorted(times)
        assert times[0] > 0

    def test_rate_controls_spacing(self):
        slow = poisson_arrivals([_dp_template()], rate=1.0, count=200, seed=5)
        fast = poisson_arrivals([_dp_template()], rate=10.0, count=200, seed=5)
        assert fast[-1].time < slow[-1].time

    def test_mix_respects_weights(self):
        common = _dp_template("common", weight=10.0)
        rare = _dp_template("rare", weight=0.1)
        arrivals = poisson_arrivals([common, rare], rate=1.0, count=300, seed=7)
        names = [a.template.name for a in arrivals]
        assert names.count("common") > names.count("rare")

    def test_validation(self):
        with pytest.raises(ValueError):
            poisson_arrivals([_dp_template()], rate=0.0, count=1)
        with pytest.raises(ValueError):
            poisson_arrivals([_dp_template()], rate=1.0, count=0)
        with pytest.raises(ValueError):
            poisson_arrivals([], rate=1.0, count=1)
        with pytest.raises(ValueError):
            JobTemplate("bad", lambda j, w: None, worker_count=0)


class TestClusterManager:
    def _run(self, n_hosts, arrivals):
        topo = big_switch(n_hosts, gbps(10))
        engine = Engine(topo, EchelonMaddScheduler())
        manager = ClusterManager(engine, ClusterPlacer(topo))
        manager.schedule(arrivals)
        engine.run()
        return manager

    def test_all_jobs_complete(self):
        arrivals = poisson_arrivals([_dp_template(workers=2)], 10.0, 8, seed=2)
        manager = self._run(4, arrivals)
        assert len(manager.completed_records()) == 8
        assert manager.pending == 0

    def test_queueing_when_cluster_full(self):
        # 4-worker jobs on a 4-host cluster: strictly one at a time.
        arrivals = poisson_arrivals([_dp_template(workers=4)], 100.0, 5, seed=2)
        manager = self._run(4, arrivals)
        records = sorted(manager.completed_records(), key=lambda r: r.arrival.time)
        # Later jobs waited for earlier ones: positive queueing delay.
        assert records[-1].queueing_delay > 0
        # No two jobs overlapped in service.
        intervals = sorted((r.submitted_at, r.completed_at) for r in records)
        for (s1, e1), (s2, _e2) in zip(intervals, intervals[1:]):
            assert s2 >= e1 - 1e-9

    def test_hosts_are_released_and_reused(self):
        arrivals = poisson_arrivals([_dp_template(workers=4)], 100.0, 3, seed=4)
        manager = self._run(4, arrivals)
        used = {w for r in manager.completed_records() for w in r.workers}
        assert used == {"h0", "h1", "h2", "h3"}

    def test_jct_includes_queueing(self):
        arrivals = poisson_arrivals([_dp_template(workers=4)], 100.0, 4, seed=9)
        manager = self._run(4, arrivals)
        for record in manager.completed_records():
            service = record.completed_at - record.submitted_at
            assert record.completion_time == pytest.approx(
                service + record.queueing_delay
            )

    def test_duplicate_ids_rejected(self):
        arrivals = poisson_arrivals([_dp_template()], 1.0, 2, seed=1)
        topo = big_switch(4, gbps(10))
        engine = Engine(topo, FairSharingScheduler())
        manager = ClusterManager(engine, ClusterPlacer(topo))
        manager.schedule(arrivals)
        with pytest.raises(ValueError):
            manager.schedule(arrivals)

    def test_metrics_require_completions(self):
        topo = big_switch(2, gbps(10))
        engine = Engine(topo, FairSharingScheduler())
        manager = ClusterManager(engine, ClusterPlacer(topo))
        with pytest.raises(ValueError):
            manager.mean_jct()
