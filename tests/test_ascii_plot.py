"""ASCII bar charts and series plots."""

import pytest

from repro.analysis import bar_chart, series_plot


class TestBarChart:
    def test_longest_bar_fills_width(self):
        art = bar_chart([("a", 1.0), ("b", 2.0)], width=10)
        lines = art.splitlines()
        assert "#" * 10 in lines[1]
        assert "#" * 5 in lines[0]

    def test_values_annotated_with_unit(self):
        art = bar_chart([("x", 3.5)], unit="s")
        assert "3.5s" in art

    def test_title_and_label_alignment(self):
        art = bar_chart([("long-label", 1.0), ("s", 2.0)], title="T")
        lines = art.splitlines()
        assert lines[0] == "T"
        bars = [line.index("|") for line in lines[1:]]
        assert len(set(bars)) == 1  # aligned

    def test_zero_values_render(self):
        art = bar_chart([("a", 0.0), ("b", 0.0)])
        assert "| 0" in art.replace("  ", " ")

    def test_validation(self):
        with pytest.raises(ValueError):
            bar_chart([])
        with pytest.raises(ValueError):
            bar_chart([("a", -1.0)])
        with pytest.raises(ValueError):
            bar_chart([("a", 1.0)], width=0)


class TestSeriesPlot:
    def test_each_series_gets_a_glyph_and_legend(self):
        art = series_plot(
            {"alpha": [(0, 0), (1, 1)], "beta": [(0, 1), (1, 0)]},
            width=20,
            height=6,
        )
        assert "o = alpha" in art
        assert "x = beta" in art
        assert "o" in art and "x" in art

    def test_axis_bounds_annotated(self):
        art = series_plot({"s": [(2.0, 10.0), (8.0, 40.0)]}, width=20, height=5)
        assert "40" in art and "10" in art
        assert art.splitlines()[-2].strip().startswith("2")

    def test_overlap_marks_star(self):
        art = series_plot(
            {"a": [(0.0, 0.0)], "b": [(0.0, 0.0)]}, width=10, height=4
        )
        assert "*" in art

    def test_flat_series_does_not_divide_by_zero(self):
        art = series_plot({"flat": [(0, 5.0), (1, 5.0)]}, width=10, height=4)
        assert "5" in art

    def test_validation(self):
        with pytest.raises(ValueError):
            series_plot({})
        with pytest.raises(ValueError):
            series_plot({"empty": []})
        with pytest.raises(ValueError):
            series_plot({"s": [(0, 0)]}, width=1, height=1)
