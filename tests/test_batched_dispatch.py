"""Batched event dispatch: one scheduler round per timestamp.

The engine's default (``batch_dispatch=True``) absorbs every event due
at the frontier timestamp into one dispatch round -- one scheduler
invocation and one ``set_rates`` -- via ``EventQueue.pop_batch``. The
legacy per-event mode (``batch_dispatch=False``) processes the same
events one at a time with a scheduler invocation between each. Zero
simulated time elapses between same-timestamp events, so the two modes
must produce the *identical* trace (flow records, JCTs, task events,
end time); only the invocation count differs. Fault events order before
arrivals and timers inside a batch, so a capacity change always lands
before the allocation that must respect it.
"""

import pytest

from repro.core.flow import Flow
from repro.scheduling import FairSharingScheduler
from repro.scheduling.base import Scheduler
from repro.simulator import Engine
from repro.simulator.events import EventKind, EventQueue
from repro.topology import big_switch, two_hosts


class _Recorder(Scheduler):
    name = "recorder"

    def __init__(self):
        self.inner = FairSharingScheduler()
        self.log = []

    def allocate(self, view):
        rates = self.inner.allocate(view)
        self.log.append(
            (
                view.now,
                view.trigger_cause,
                tuple(
                    sorted(
                        (s.flow.src, s.flow.dst, s.flow.size, rates.get(s.flow.flow_id, 0.0))
                        for s in view.active_states()
                    )
                ),
            )
        )
        return rates


def _flow_records_key(trace):
    return sorted(
        (r.flow.src, r.flow.dst, r.flow.size, r.flow.tag, r.start, r.finish)
        for r in trace.flow_records
    )


# -------------------------------------------------------------- queue unit


def test_pop_batch_returns_full_timestamp_batch_in_priority_order():
    q = EventQueue()
    q.push(1.0, EventKind.TIMER)
    q.push(1.0, EventKind.JOB_ARRIVAL, payload="j")
    q.push(1.0, EventKind.FAULT)
    q.push(2.0, EventKind.TIMER)
    batch = q.pop_batch(1.0)
    assert [e.kind for e in batch] == [
        EventKind.FAULT,
        EventKind.JOB_ARRIVAL,
        EventKind.TIMER,
    ]
    assert len(q) == 1  # the t=2 event stays queued
    assert q.pop_batch(1.5) == []


def test_pop_first_due_is_singleton_or_empty():
    q = EventQueue()
    q.push(1.0, EventKind.TIMER)
    q.push(1.0, EventKind.FAULT)
    first = q.pop_first_due(1.0)
    assert [e.kind for e in first] == [EventKind.FAULT]
    second = q.pop_first_due(1.0)
    assert [e.kind for e in second] == [EventKind.TIMER]
    assert q.pop_first_due(1.0) == []


def test_pop_batch_respects_tolerance():
    q = EventQueue()
    q.push(1.0, EventKind.TIMER)
    q.push(1.0 + 1e-10, EventKind.TIMER)
    assert len(q.pop_batch(1.0, tolerance=1e-9)) == 2


# ------------------------------------------------- batched == unbatched


def _mixed_engine(batch_dispatch):
    """Several event bursts over a network kept busy throughout.

    The long ``bg`` flow never finishes before the last burst, so the
    per-event mode really does reschedule between same-timestamp events
    instead of skipping invocations on an idle network.
    """
    engine = Engine(
        two_hosts(1.0),
        _Recorder(),
        batch_dispatch=batch_dispatch,
    )
    engine.inject_background_flow(Flow("h0", "h1", 8.0, tag="bg"), at_time=0.0)
    # At t=1.0 a fault halves the link (FAULT, ordered first in the
    # batch) the very instant a new flow arrives (TIMER).
    engine.inject_background_flow(Flow("h0", "h1", 1.0, tag="second"), at_time=1.0)
    engine.schedule_fault(
        1.0, lambda: engine.network.set_link_capacity(("h0", "h1"), 0.5)
    )
    # A later distinct burst at t=4 (two coalesced arrivals).
    engine.inject_background_flow(Flow("h0", "h1", 0.25, tag="late-a"), at_time=4.0)
    engine.inject_background_flow(Flow("h0", "h1", 0.25, tag="late-b"), at_time=4.0)
    return engine


def test_batched_trace_identical_to_unbatched():
    batched = _mixed_engine(batch_dispatch=True)
    unbatched = _mixed_engine(batch_dispatch=False)
    batched_trace = batched.run()
    unbatched_trace = unbatched.run()

    assert _flow_records_key(batched_trace) == _flow_records_key(unbatched_trace)
    assert batched_trace.end_time == unbatched_trace.end_time
    # Per-event mode pays strictly more scheduler invocations for the
    # same simulation: the t=1.0 fault+arrival batch alone splits in two.
    assert batched.scheduler_invocations < unbatched.scheduler_invocations
    # Every allocation the batched run produced appears identically in
    # the unbatched run's log (which interleaves extra invocations at
    # the same timestamps, allocating over intermediate flow sets).
    unbatched_entries = {(now, rates) for now, _, rates in unbatched.scheduler.log}
    for now, _, rates in batched.scheduler.log:
        assert (now, rates) in unbatched_entries


def test_simultaneous_fault_and_arrival_one_invocation_fault_cause():
    engine = _mixed_engine(batch_dispatch=True)
    engine.run()
    at_one = [entry for entry in engine.scheduler.log if entry[0] == 1.0]
    # One batch -> one invocation for fault + arrival + finish at t=1.0.
    assert len(at_one) == 1
    now, cause, rates = at_one[0]
    assert cause == "fault"  # fault outranks arrival/timer in the batch
    # The fault landed before the allocation: the halved link is
    # respected by the rates the scheduler just produced.
    assert sum(rate for *_key, rate in rates) <= 0.5 + 1e-9


def test_unbatched_orders_fault_before_arrival_at_same_timestamp():
    engine = _mixed_engine(batch_dispatch=False)
    engine.run()
    causes_at_one = [entry[1] for entry in engine.scheduler.log if entry[0] == 1.0]
    assert len(causes_at_one) >= 2
    # FAULT events pop before TIMER events at the same instant, so the
    # fault's invocation precedes the background arrival's.
    assert causes_at_one.index("fault") < causes_at_one.index("arrival")


def test_batched_dispatch_is_the_default():
    engine = Engine(two_hosts(1.0), FairSharingScheduler())
    assert engine.batch_dispatch is True


def test_simultaneous_finish_and_arrival_one_invocation():
    # f1 at rate 1.0 finishes at exactly t=2.0, the instant a new flow
    # arrives; bg keeps the network busy. One timestamp, one batch, one
    # scheduler invocation covering both the departure and the arrival.
    engine = Engine(two_hosts(2.0), _Recorder())
    engine.inject_background_flow(Flow("h0", "h1", 2.0, tag="f1"), at_time=0.0)
    engine.inject_background_flow(Flow("h0", "h1", 20.0, tag="bg"), at_time=0.0)
    engine.inject_background_flow(Flow("h0", "h1", 1.0, tag="f2"), at_time=2.0)
    trace = engine.run()
    by_tag = {r.flow.tag: r for r in trace.flow_records}
    assert by_tag["f1"].finish == 2.0 == by_tag["f2"].start
    at_two = [entry for entry in engine.scheduler.log if entry[0] == 2.0]
    assert len(at_two) == 1


# ------------------------------------------------- coalesced injections


def test_same_timestamp_background_arrivals_coalesce_into_one_event():
    engine = Engine(big_switch(4, 10.0), FairSharingScheduler())
    for i in range(50):
        engine.inject_background_flow(
            Flow("h0", f"h{1 + i % 3}", 1.0, tag=f"f{i}"), at_time=0.0
        )
    assert len(engine.events) == 1
    engine.inject_background_flow(Flow("h0", "h1", 1.0, tag="later"), at_time=2.0)
    assert len(engine.events) == 2
    trace = engine.run()
    assert len(trace.flow_records) == 51
    assert all(r.start == 0.0 for r in trace.flow_records if r.flow.tag != "later")


def test_coalesced_batch_preserves_registration_order():
    # Registration order is the injection order inside the batch, which
    # fixes the fid order every downstream tie-break uses: the trace must
    # match injecting the same flows via distinct (un-coalesced) times.
    engine = Engine(big_switch(4, 4.0), FairSharingScheduler())
    sizes = [3.0, 1.0, 2.0, 1.5]
    for i, size in enumerate(sizes):
        engine.inject_background_flow(
            Flow("h0", "h1", size, tag=f"f{i}"), at_time=1.0
        )
    trace = engine.run()
    by_tag = {r.flow.tag: r for r in trace.flow_records}
    assert set(by_tag) == {f"f{i}" for i in range(len(sizes))}
    assert all(r.start == 1.0 for r in trace.flow_records)
    # Equal fair shares on one bottleneck: completion order follows size.
    finishes = [by_tag[f"f{i}"].finish for i in range(len(sizes))]
    assert sorted(range(4), key=lambda i: finishes[i]) == [1, 3, 2, 0]
