"""Chaos layer: fault schedules, runtime injection, graceful degradation.

Covers the full path from spec strings to mid-run capacity mutation:
parsing and validation, network-level consistency after faults, reroute
and strand semantics, ResilientScheduler containment, engine/CLI-level
wiring, and the observability/diagnosis surface.
"""

import json

import pytest

from repro import Engine, two_hosts
from repro.core.flow import Flow
from repro.core.units import gbps
from repro.faults import (
    FaultEvent,
    FaultInjector,
    FaultSchedule,
    FaultSpecError,
    ResilientScheduler,
    find_resilient,
    parse_fault_spec,
)
from repro.scheduling import (
    EchelonMaddScheduler,
    FairSharingScheduler,
    make_scheduler,
)
from repro.scheduling.base import Scheduler
from repro.topology import leaf_spine
from repro.workloads import (
    build_pipeline_segment,
    degrade_link,
    fail_link,
    pause_device,
    run_spec,
)

_SPEC = (
    "link_down:h1-h2@2.5+1.0; degrade:h2-h3@4.0,factor=0.5; "
    "flap:h0-h1@1.0,period=0.2,count=6; crash_scheduler@3.0"
)


def _fig2_job(name="fig2"):
    return build_pipeline_segment(
        name, "h0", "h1", [0.0, 1.0, 2.0], [2.0] * 3, [2.0] * 3
    )


class TestFaultSpecParsing:
    def test_issue_example_expands_to_primitives(self):
        schedule = parse_fault_spec(_SPEC)
        # link_down+restore (2) + permanent degrade (1) + 6 flap cycles
        # (12) + crash (1)
        assert len(schedule) == 16
        assert schedule.has_crashes
        times = [event.time for event in schedule]
        assert times == sorted(times)

    def test_duplex_hits_both_directions(self):
        (event,) = parse_fault_spec("link_down:a-b@1.0").events
        assert set(event.links) == {("a", "b"), ("b", "a")}

    def test_directed_hits_one_direction(self):
        (event,) = parse_fault_spec("link_down:a->b@1.0").events
        assert event.links == (("a", "b"),)

    def test_permanent_outage_has_no_restore(self):
        schedule = parse_fault_spec("link_down:a-b@1.0")
        assert [e.action for e in schedule] == ["link_down"]

    def test_duration_appends_restore_at_nominal(self):
        schedule = parse_fault_spec("degrade:a-b@2.0+0.5,factor=0.25")
        assert [(e.action, e.time) for e in schedule] == [
            ("degrade", 2.0),
            ("link_restore", 2.5),
        ]
        assert schedule.events[0].factor == 0.25

    def test_flap_cycles(self):
        schedule = parse_fault_spec("flap:a-b@1.0,period=0.2,count=3")
        actions = [(e.action, pytest.approx(e.time)) for e in schedule]
        assert actions == [
            ("link_down", 1.0),
            ("link_restore", 1.1),
            ("link_down", 1.2),
            ("link_restore", 1.3),
            ("link_down", 1.4),
            ("link_restore", 1.5),
        ]

    @pytest.mark.parametrize(
        "bad",
        [
            "explode:a-b@1.0",  # unknown action
            "link_down:a-b",  # missing @time
            "link_down@1.0",  # link action without links
            "link_down:ab@1.0",  # bad linkspec
            "link_down:a-b@-1.0",  # negative time
            "link_down:a-b@1.0,factor=0.5",  # unknown param
            "degrade:a-b@1.0",  # degrade without factor
            "degrade:a-b@1.0,factor=1.5",  # factor out of range
            "degrade:a-b@1.0,factor=0",  # factor out of range
            "flap:a-b@1.0,period=0.2",  # flap without count
            "flap:a-b@1.0,period=0,count=2",  # non-positive period
            "crash_scheduler:a-b@1.0",  # crash takes no links
            "crash_scheduler@1.0+2.0",  # crash takes no duration
            "link_down:a-b@1.0+0",  # non-positive duration
            "",  # no clauses
        ],
    )
    def test_rejected_specs(self, bad):
        with pytest.raises(FaultSpecError):
            parse_fault_spec(bad)

    def test_json_round_trip(self):
        schedule = parse_fault_spec(_SPEC)
        assert FaultSchedule.from_json(schedule.to_json()) == schedule

    def test_json_clause_form(self):
        schedule = FaultSchedule.from_json(
            json.dumps(
                {
                    "faults": [
                        {"action": "link_down", "link": "a-b", "time": 1.0,
                         "duration": 0.5},
                        {"action": "crash_scheduler", "time": 2.0},
                    ]
                }
            )
        )
        assert [e.action for e in schedule] == [
            "link_down",
            "link_restore",
            "crash_scheduler",
        ]

    def test_json_rejects_non_list(self):
        with pytest.raises(FaultSpecError):
            FaultSchedule.from_json('"link_down"')

    def test_event_validation(self):
        with pytest.raises(FaultSpecError):
            FaultEvent(time=1.0, action="link_down")  # no links
        with pytest.raises(FaultSpecError):
            FaultEvent(time=1.0, action="link_restore", links=(("a", "b"),),
                       factor=0.5)


class TestInjectorWiring:
    def test_unknown_link_rejected_at_attach(self):
        with pytest.raises(KeyError):
            Engine(
                two_hosts(1.0),
                FairSharingScheduler(),
                faults="link_down:h0-h9@1.0",
            )

    def test_crash_without_resilient_rejected_at_attach(self):
        with pytest.raises(ValueError, match="ResilientScheduler"):
            Engine(
                two_hosts(1.0),
                FairSharingScheduler(),
                faults="crash_scheduler@1.0",
            )

    def test_injector_is_single_use(self):
        injector = FaultInjector("link_down:h0-h1@1.0")
        Engine(two_hosts(1.0), FairSharingScheduler(), faults=injector)
        with pytest.raises(ValueError, match="already attached"):
            injector.attach(Engine(two_hosts(1.0), FairSharingScheduler()))

    def test_engine_accepts_schedule_string_and_json_list(self):
        schedule = parse_fault_spec("link_down:h0-h1@1.0+0.5")
        for faults in (schedule, "link_down:h0-h1@1.0+0.5",
                       json.loads(schedule.to_json())):
            engine = Engine(
                two_hosts(1.0), FairSharingScheduler(), faults=faults
            )
            assert isinstance(engine.faults, FaultInjector)
            assert len(engine.faults.schedule) == 2

    def test_rejects_garbage(self):
        with pytest.raises(TypeError):
            FaultInjector(42)


class TestLinkFaultSemantics:
    def test_outage_stalls_single_path_job(self):
        # two_hosts has exactly one path: a 1s outage while flows are in
        # flight costs exactly 1s end to end.
        nominal = Engine(two_hosts(1.0), EchelonMaddScheduler())
        _fig2_job().submit_to(nominal)
        baseline = nominal.run().last_compute_end()

        faulted = Engine(
            two_hosts(1.0),
            EchelonMaddScheduler(),
            faults="link_down:h0-h1@2.0+1.0",
        )
        _fig2_job().submit_to(faulted)
        assert faulted.run().last_compute_end() == pytest.approx(
            baseline + 1.0
        )
        actions = [r["action"] for r in faulted.faults.fired]
        assert actions == ["link_down", "link_restore"]

    def test_degrade_halves_throughput(self):
        engine = Engine(
            two_hosts(1.0),
            FairSharingScheduler(),
            faults="degrade:h0-h1@0.0,factor=0.5",
        )
        engine.inject_background_flow(Flow("h0", "h1", 1.0), at_time=0.0)
        trace = engine.run()
        assert trace.flow_records[0].finish == pytest.approx(2.0)

    def test_restore_returns_to_nominal(self):
        engine = Engine(
            two_hosts(1.0),
            FairSharingScheduler(),
            faults="degrade:h0-h1@0.0+1.0,factor=0.5",
        )
        # 1s at rate 0.5 moves 0.5; the remaining 0.5 drains at rate 1.
        engine.inject_background_flow(Flow("h0", "h1", 1.0), at_time=0.0)
        trace = engine.run()
        assert trace.flow_records[0].finish == pytest.approx(1.5)
        link = engine.topology.link("h0", "h1")
        assert link.capacity == pytest.approx(link.nominal_capacity)

    def test_shrink_rescales_in_flight_rates(self):
        engine = Engine(two_hosts(1.0), FairSharingScheduler())
        engine.inject_background_flow(Flow("h0", "h1", 10.0), at_time=0.0)
        injector = degrade_link(engine, "h0", "h1", at_time=1.0, factor=0.5)
        engine.run()
        network = engine.network
        assert network.verify_accounting() == []
        assert injector.fired[0]["capacities"]["h0->h1"] == pytest.approx(0.5)

    def test_reroute_migrates_across_equal_cost_paths(self):
        # leaf-spine has two spine paths; killing one migrates the flow
        # with zero completion-time loss.
        engine = Engine(
            leaf_spine(2, 2, gbps(10)),
            FairSharingScheduler(),
            faults="link_down:leaf0-spine0@0.5",
        )
        flow = Flow("h0", "h2", 2.0 * gbps(10))
        engine.inject_background_flow(flow, at_time=0.0)
        trace = engine.run()
        assert trace.flow_records[0].finish == pytest.approx(2.0)
        record = engine.faults.fired[0]
        assert record["migrated"] == [flow.flow_id]
        assert record["stranded"] == []

    def test_blocked_router_avoids_downed_link(self):
        engine = Engine(
            leaf_spine(2, 2, gbps(10)),
            FairSharingScheduler(),
            faults="link_down:leaf0-spine0@0.5",
        )
        engine.inject_background_flow(
            Flow("h0", "h2", 2.0 * gbps(10)), at_time=0.0
        )
        engine.run()
        assert ("leaf0", "spine0") in engine.network.router.blocked_links

    def test_stranded_flow_resumes_after_restore(self):
        engine = Engine(
            two_hosts(1.0),
            FairSharingScheduler(),
            faults="link_down:h0-h1@0.5+1.0",
        )
        flow = Flow("h0", "h1", 1.0)
        engine.inject_background_flow(flow, at_time=0.0)
        trace = engine.run()
        # 0.5 moved before the outage, 1s stalled, 0.5 after restore.
        assert trace.flow_records[0].finish == pytest.approx(2.0)
        record = engine.faults.fired[0]
        assert record["stranded"] == [flow.flow_id]
        assert record["migrated"] == []

    def test_flap_under_strict_sanitizer(self):
        engine = Engine(
            two_hosts(1.0),
            EchelonMaddScheduler(),
            sanitizer="strict",
            faults="flap:h0-h1@1.0,period=0.2,count=6",
        )
        _fig2_job().submit_to(engine)
        engine.run()
        assert engine.check.violation_count == 0
        assert len(engine.faults.fired) == 12


class TestWorkloadWrappers:
    def test_fail_link_wrapper(self):
        engine = Engine(two_hosts(1.0), FairSharingScheduler())
        engine.inject_background_flow(Flow("h0", "h1", 1.0), at_time=0.0)
        injector = fail_link(engine, "h0", "h1", at_time=0.5, duration=1.0)
        trace = engine.run()
        assert trace.flow_records[0].finish == pytest.approx(2.0)
        assert [r["action"] for r in injector.fired] == [
            "link_down",
            "link_restore",
        ]

    def test_degrade_link_wrapper_directed(self):
        engine = Engine(two_hosts(1.0), FairSharingScheduler())
        engine.inject_background_flow(Flow("h0", "h1", 1.0), at_time=0.0)
        degrade_link(
            engine, "h0", "h1", at_time=0.0, factor=0.5, directed=True
        )
        trace = engine.run()
        assert trace.flow_records[0].finish == pytest.approx(2.0)
        # the reverse direction is untouched
        assert engine.topology.link("h1", "h0").capacity == pytest.approx(1.0)

    @pytest.mark.parametrize("duration", [0.0, -1.0])
    def test_wrappers_reject_bad_durations(self, duration):
        engine = Engine(two_hosts(1.0), FairSharingScheduler())
        with pytest.raises(ValueError):
            fail_link(engine, "h0", "h1", at_time=0.5, duration=duration)
        with pytest.raises(ValueError):
            degrade_link(
                engine, "h0", "h1", at_time=0.5, factor=0.5, duration=duration
            )


class _ExplodingScheduler(Scheduler):
    name = "exploding"

    def __init__(self, explode_at=1.0):
        self.explode_at = explode_at

    def allocate(self, view):
        if view.now >= self.explode_at:
            raise RuntimeError("boom")
        return FairSharingScheduler().allocate(view)


class _OverclaimingScheduler(Scheduler):
    name = "overclaiming"

    def allocate(self, view):
        return {
            state.flow.flow_id: 1e9 for state in view.active_states()
        }


class TestResilientScheduler:
    def test_crash_contained_and_recorded(self):
        engine = Engine(
            two_hosts(1.0),
            ResilientScheduler(EchelonMaddScheduler()),
            faults="crash_scheduler@3.0",
        )
        _fig2_job().submit_to(engine)
        trace = engine.run()
        resilient = find_resilient(engine.scheduler)
        assert trace.last_compute_end() > 0
        assert resilient.fallback_invocations == 1
        (record,) = resilient.fallback_records
        assert record["kind"] == "crash"
        assert "crash_scheduler" in record["error"]

    def test_exception_contained(self):
        engine = Engine(
            two_hosts(1.0),
            ResilientScheduler(_ExplodingScheduler(explode_at=1.0)),
        )
        _fig2_job().submit_to(engine)
        trace = engine.run()
        resilient = engine.scheduler
        assert trace.last_compute_end() > 0
        assert resilient.fallback_invocations >= 1
        assert all(
            r["kind"] == "exception" for r in resilient.fallback_records
        )

    def test_infeasible_allocation_contained(self):
        engine = Engine(
            two_hosts(1.0),
            ResilientScheduler(_OverclaimingScheduler()),
        )
        _fig2_job().submit_to(engine)
        trace = engine.run()
        resilient = engine.scheduler
        assert trace.last_compute_end() > 0
        assert resilient.fallback_invocations >= 1
        assert all(
            r["kind"] == "infeasible" for r in resilient.fallback_records
        )

    def test_clean_inner_never_degrades(self):
        engine = Engine(
            two_hosts(1.0), ResilientScheduler(EchelonMaddScheduler())
        )
        _fig2_job().submit_to(engine)
        engine.run()
        assert engine.scheduler.fallback_invocations == 0
        assert not engine.scheduler.last_allocation_was_fallback

    def test_crash_run_matches_fallback_policy_completion(self):
        # Fair fallback on a single-link fabric: containing one crash of a
        # fair-equivalent invocation must not corrupt the run.
        engine = Engine(
            two_hosts(1.0),
            ResilientScheduler(FairSharingScheduler()),
            faults="crash_scheduler@1.0",
            sanitizer="strict",
        )
        _fig2_job().submit_to(engine)
        trace = engine.run()
        assert engine.check.violation_count == 0

        nominal = Engine(two_hosts(1.0), FairSharingScheduler())
        _fig2_job().submit_to(nominal)
        assert trace.last_compute_end() == pytest.approx(
            nominal.run().last_compute_end()
        )

    def test_work_conserving_needs_both(self):
        resilient = ResilientScheduler(EchelonMaddScheduler())
        assert resilient.work_conserving == (
            EchelonMaddScheduler().work_conserving
            and FairSharingScheduler().work_conserving
        )

    def test_find_resilient_through_wrappers(self):
        from repro.scheduling.cache import MemoizingScheduler

        resilient = ResilientScheduler(FairSharingScheduler())
        wrapped = MemoizingScheduler(resilient)
        assert find_resilient(wrapped) is resilient
        assert find_resilient(FairSharingScheduler()) is None


class TestObservabilityAndDiagnosis:
    def _chaos_run(self):
        from repro.obs import Instrumentation, JsonlEventLog

        obs = Instrumentation(event_log=JsonlEventLog())
        engine = Engine(
            two_hosts(1.0),
            ResilientScheduler(EchelonMaddScheduler()),
            instrumentation=obs,
            faults="link_down:h0-h1@2.0+1.0; crash_scheduler@3.0",
        )
        _fig2_job().submit_to(engine)
        trace = engine.run()
        return engine, trace, obs

    def test_fault_events_in_instrumentation(self):
        engine, _trace, obs = self._chaos_run()
        actions = [r["action"] for r in obs.fault_events]
        assert actions == ["link_down", "link_restore", "crash_scheduler"]
        assert len(obs.scheduler_fallbacks) == 1
        kinds = {e["ev"] for e in obs.event_log.events}
        assert "fault" in kinds and "scheduler_fallback" in kinds

    def test_fault_counters(self):
        _engine, _trace, obs = self._chaos_run()
        assert (
            obs.registry.counter(
                "faults_injected_total", action="link_down"
            ).value
            == 1
        )
        assert (
            obs.registry.counter(
                "scheduler_fallbacks_total", kind="crash"
            ).value
            == 1
        )

    def test_diagnosis_from_run_surfaces_faults(self):
        from repro.obs.diagnosis import (
            RunArtifacts,
            diagnose,
            render_diagnosis,
        )

        _engine, trace, obs = self._chaos_run()
        artifacts = RunArtifacts.from_run(trace, obs)
        assert [f["action"] for f in artifacts.faults] == [
            "link_down",
            "link_restore",
            "crash_scheduler",
        ]
        assert len(artifacts.scheduler_fallbacks) == 1
        report = diagnose(artifacts)
        assert len(report["robustness"]["faults"]) == 3
        rendered = render_diagnosis(report)
        assert "injected faults" in rendered
        assert "scheduler fallbacks" in rendered

    def test_diagnosis_from_jsonl_round_trip(self, tmp_path):
        from repro.obs.diagnosis import RunArtifacts, diagnose

        _engine, _trace, obs = self._chaos_run()
        path = tmp_path / "events.jsonl"
        obs.event_log.write(str(path))
        artifacts = RunArtifacts.from_jsonl(str(path))
        assert [f["action"] for f in artifacts.faults] == [
            "link_down",
            "link_restore",
            "crash_scheduler",
        ]
        report = diagnose(artifacts)
        assert len(report["robustness"]["scheduler_fallbacks"]) == 1

    def test_reroute_recorded(self):
        from repro.obs import Instrumentation, JsonlEventLog
        from repro.obs.diagnosis import RunArtifacts

        obs = Instrumentation(event_log=JsonlEventLog())
        engine = Engine(
            leaf_spine(2, 2, gbps(10)),
            FairSharingScheduler(),
            instrumentation=obs,
            faults="link_down:leaf0-spine0@0.5",
        )
        flow = Flow("h0", "h2", 2.0 * gbps(10))
        engine.inject_background_flow(flow, at_time=0.0)
        trace = engine.run()
        assert obs.reroutes == {flow.flow_id: 1}
        artifacts = RunArtifacts.from_run(trace, obs)
        assert artifacts.reroutes == {flow.flow_id: 1}


class TestSyntheticJobFiltering:
    def test_pause_jobs_excluded_from_completed(self):
        engine = Engine(two_hosts(1.0), EchelonMaddScheduler())
        _fig2_job("real").submit_to(engine)
        pause_device(engine, "h1", at_time=0.0, duration=0.5)
        engine.run()
        assert engine.completed_jobs == ["real"]
        assert set(engine.all_completed_jobs) == {
            "real",
            "_pause/h1/0.0",
        }


class TestRunSpecFaults:
    _SPEC_DICT = {
        "topology": {"kind": "big_switch", "hosts": 2, "bandwidth_gbps": 10},
        "scheduler": {"name": "fair"},
        "jobs": [
            {
                "name": "j",
                "paradigm": "dp-allreduce",
                "model": "tiny_mlp",
                "workers": 2,
            }
        ],
    }

    def test_spec_key_wraps_and_injects(self):
        spec = dict(self._SPEC_DICT)
        spec["faults"] = "degrade:h0-core@0.0,factor=0.5"
        results, _trace, engine = run_spec(spec, detail=True)
        assert isinstance(engine.scheduler, ResilientScheduler)
        assert [r["action"] for r in engine.faults.fired] == ["degrade"]
        assert results["jobs"]["j"]["completion_time"] > 0

    def test_kwarg_overrides_spec_key(self):
        spec = dict(self._SPEC_DICT)
        spec["faults"] = "degrade:h0-core@0.0,factor=0.5"
        _results, _trace, engine = run_spec(
            spec, faults="link_down:h0-core@0.1+0.1", detail=True
        )
        assert [r["action"] for r in engine.faults.fired] == [
            "link_down",
            "link_restore",
        ]

    def test_no_faults_no_wrapper(self):
        _results, _trace, engine = run_spec(
            dict(self._SPEC_DICT), detail=True
        )
        assert find_resilient(engine.scheduler) is None
        assert engine.faults is None


class TestAcceptanceFig2Strict:
    def test_fig2_with_outage_and_reroute_zero_violations(self):
        # The PR's acceptance gate: a fig2-style run with a link_down on
        # a multipath fabric completes under strict with 0 violations.
        engine = Engine(
            leaf_spine(2, 2, gbps(10)),
            make_scheduler("echelon"),
            sanitizer="strict:twin=1.0,seed=3",
            faults="link_down:leaf0-spine0@0.5+1.0",
        )
        job = build_pipeline_segment(
            "fig2",
            "h0",
            "h2",
            [0.0, 1.0, 2.0],
            [2.0 * gbps(10)] * 3,
            [2.0] * 3,
        )
        job.submit_to(engine)
        engine.run()
        assert engine.check.violation_count == 0
        assert engine.check.checks
