"""Randomized property tests for the incremental link accounting.

The :class:`~repro.simulator.allocation.LinkAccounting` residuals are the
incremental core's load-bearing state: every feasibility gate and lenient
scaling decision reads them instead of re-aggregating active flows. These
tests drive a :class:`~repro.simulator.network.NetworkModel` through long
random inject / set_rates / advance sequences and, after every single
operation, audit the residuals against a from-scratch recompute via
``verify_accounting`` -- the same audit the runtime sanitizer samples.
"""

import random

import pytest

from repro.check import infeasible_links, unserved_flows
from repro.core.flow import Flow
from repro.simulator.allocation import FlowDemand, max_min_fair
from repro.simulator.network import NetworkModel
from repro.topology import ShortestPathRouter, big_switch, leaf_spine


def _network(topology, incremental):
    return NetworkModel(
        topology, ShortestPathRouter(topology), strict=False, incremental=incremental
    )


def _random_walk(network, rng, hosts, steps):
    """Random flow lifecycle churn; audits accounting after every step."""
    now = 0.0
    next_tag = 0
    for _ in range(steps):
        op = rng.random()
        if op < 0.35 or network.active_count == 0:
            src, dst = rng.sample(hosts, 2)
            network.inject(
                Flow(src=src, dst=dst, size=0.2 + rng.random() * 3.0,
                     tag=f"p{next_tag}"),
                now,
            )
            next_tag += 1
        elif op < 0.75:
            rates = {}
            for state in network.active_states():
                roll = rng.random()
                if roll < 0.2:
                    continue  # unlisted flows idle at rate 0
                rates[state.flow.flow_id] = (
                    0.0 if roll < 0.4 else rng.random() * 2.5
                )
            network.set_rates(rates)
        else:
            dt = rng.random() * 0.4
            network.advance(dt, now)
            now += dt
        problems = network.verify_accounting()
        assert problems == [], problems
        # The applied (possibly capacity-scaled) rates are always feasible.
        applied = {s.flow.flow_id: s.rate for s in network.iter_active()}
        assert infeasible_links(network.demands(), applied) == []
    return now


@pytest.mark.parametrize("seed", [0, 1, 2, 3])
@pytest.mark.parametrize("incremental", [True, False])
def test_accounting_matches_recompute_big_switch(seed, incremental):
    topology = big_switch(6, host_bandwidth=2.0)
    network = _network(topology, incremental)
    rng = random.Random(seed)
    _random_walk(network, rng, [f"h{i}" for i in range(6)], steps=150)


@pytest.mark.parametrize("seed", [11, 12])
def test_accounting_matches_recompute_leaf_spine(seed):
    topology = leaf_spine(
        n_leaves=2, hosts_per_leaf=3, host_bandwidth=2.0, oversubscription=2.0
    )
    network = _network(topology, incremental=True)
    rng = random.Random(seed)
    _random_walk(network, rng, [f"h{i}" for i in range(6)], steps=120)


def test_drain_to_completion_keeps_accounting_clean():
    topology = big_switch(4, host_bandwidth=2.0)
    network = _network(topology, incremental=True)
    rng = random.Random(99)
    hosts = [f"h{i}" for i in range(4)]
    now = _random_walk(network, rng, hosts, steps=60)
    # Saturate every flow and drain the network dry; each retirement must
    # unwind its link registrations exactly.
    while network.active_count:
        network.set_rates(
            {s.flow.flow_id: 2.0 for s in network.active_states()}
        )
        dt = max(network.earliest_finish_interval(), 1e-3)
        network.advance(dt, now)
        now += dt
        assert network.verify_accounting() == []
    assert network.verify_accounting() == []


def test_verify_accounting_detects_tampering():
    topology = big_switch(3, host_bandwidth=2.0)
    network = _network(topology, incremental=True)
    network.inject(Flow(src="h0", dst="h1", size=5.0), 0.0)
    state = network.active_states()[0]
    network.set_rates({state.flow.flow_id: 1.0})
    assert network.verify_accounting() == []
    # Corrupt each facet of the residual state; the audit must name it.
    key = next(iter(network.accounting.loads))
    network.accounting.loads[key] += 0.5
    kinds = {p["kind"] for p in network.verify_accounting()}
    assert "load" in kinds
    network.accounting.loads[key] -= 0.5
    network.accounting.nonzero[key] += 1
    kinds = {p["kind"] for p in network.verify_accounting()}
    assert kinds == {"nonzero_count"}
    network.accounting.nonzero[key] -= 1
    network.accounting.flows_on[key].add(10**9)
    kinds = {p["kind"] for p in network.verify_accounting()}
    assert kinds == {"membership"}


# ---------------------------------------------------------------------------
# the pure helpers shared with the sanitizer
# ---------------------------------------------------------------------------


def _demands(network):
    return network.demands()


def test_max_min_fair_is_work_conserving_on_random_instances():
    # Whatever the random demand set, the fair allocation never leaves a
    # flow with headroom on every link of its path -- the exact property
    # the sanitizer asserts for schedulers declaring work_conserving.
    for seed in range(6):
        rng = random.Random(seed)
        topology = big_switch(5, host_bandwidth=1.0 + rng.random() * 3.0)
        network = _network(topology, incremental=True)
        hosts = [f"h{i}" for i in range(5)]
        for _ in range(rng.randrange(1, 12)):
            src, dst = rng.sample(hosts, 2)
            network.inject(Flow(src=src, dst=dst, size=1.0), 0.0)
        demands = _demands(network)
        rates = max_min_fair(demands)
        assert infeasible_links(demands, rates) == []
        remaining = {d.flow_id: 1.0 for d in demands}
        thresholds = {d.flow_id: 0.0 for d in demands}
        assert unserved_flows(demands, rates, remaining, thresholds) == []


def test_unserved_flows_flags_idle_capacity():
    topology = big_switch(3, host_bandwidth=2.0)
    network = _network(topology, incremental=True)
    network.inject(Flow(src="h0", dst="h1", size=5.0), 0.0)
    demands = _demands(network)
    flow_id = demands[0].flow_id
    starved = unserved_flows(
        demands, {flow_id: 0.5}, {flow_id: 5.0}, {flow_id: 0.0}
    )
    assert [p["flow"] for p in starved] == [flow_id]
    assert starved[0]["headroom"] == pytest.approx(1.5)
    # A finished flow (remaining below threshold) is never flagged.
    assert (
        unserved_flows(demands, {flow_id: 0.5}, {flow_id: 0.0}, {flow_id: 0.1})
        == []
    )
    # Nor is a flow pinned at its demand cap.
    capped = [
        FlowDemand(flow_id=d.flow_id, path=d.path, cap=0.5) for d in demands
    ]
    assert (
        unserved_flows(capped, {flow_id: 0.5}, {flow_id: 5.0}, {flow_id: 0.0})
        == []
    )


def test_infeasible_links_reports_the_overload():
    topology = big_switch(3, host_bandwidth=1.0)
    network = _network(topology, incremental=True)
    network.inject(Flow(src="h0", dst="h2", size=5.0), 0.0)
    network.inject(Flow(src="h1", dst="h2", size=5.0), 0.0)
    demands = _demands(network)
    rates = {d.flow_id: 0.8 for d in demands}  # 1.6 into h2's 1.0 ingress
    problems = infeasible_links(demands, rates)
    assert problems
    worst = max(problems, key=lambda p: p["excess"])
    assert worst["load"] == pytest.approx(1.6)
    assert worst["capacity"] == pytest.approx(1.0)
    assert sorted(worst["flows"]) == sorted(d.flow_id for d in demands)
    assert infeasible_links(demands, {d.flow_id: 0.5 for d in demands}) == []
