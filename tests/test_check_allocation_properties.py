"""Randomized property tests for the incremental link accounting.

The :class:`~repro.simulator.allocation.LinkAccounting` residuals are the
incremental core's load-bearing state: every feasibility gate and lenient
scaling decision reads them instead of re-aggregating active flows. These
tests drive a :class:`~repro.simulator.network.NetworkModel` through long
random inject / set_rates / advance sequences and, after every single
operation, audit the residuals against a from-scratch recompute via
``verify_accounting`` -- the same audit the runtime sanitizer samples.
"""

import random

import pytest

from repro.check import infeasible_links, unserved_flows
from repro.core.flow import Flow
from repro.simulator.allocation import DemandSet, FlowDemand, feasible, max_min_fair
from repro.simulator.network import NetworkModel
from repro.simulator.vector import HAVE_NUMPY
from repro.topology import ShortestPathRouter, big_switch, leaf_spine
from repro.topology.graph import Link


def _network(topology, incremental):
    return NetworkModel(
        topology, ShortestPathRouter(topology), strict=False, incremental=incremental
    )


def _random_walk(network, rng, hosts, steps):
    """Random flow lifecycle churn; audits accounting after every step."""
    now = 0.0
    next_tag = 0
    for _ in range(steps):
        op = rng.random()
        if op < 0.35 or network.active_count == 0:
            src, dst = rng.sample(hosts, 2)
            network.inject(
                Flow(src=src, dst=dst, size=0.2 + rng.random() * 3.0,
                     tag=f"p{next_tag}"),
                now,
            )
            next_tag += 1
        elif op < 0.75:
            rates = {}
            for state in network.active_states():
                roll = rng.random()
                if roll < 0.2:
                    continue  # unlisted flows idle at rate 0
                rates[state.flow.flow_id] = (
                    0.0 if roll < 0.4 else rng.random() * 2.5
                )
            network.set_rates(rates)
        else:
            dt = rng.random() * 0.4
            network.advance(dt, now)
            now += dt
        problems = network.verify_accounting()
        assert problems == [], problems
        # The applied (possibly capacity-scaled) rates are always feasible.
        applied = {s.flow.flow_id: s.rate for s in network.iter_active()}
        assert infeasible_links(network.demands(), applied) == []
    return now


@pytest.mark.parametrize("seed", [0, 1, 2, 3])
@pytest.mark.parametrize("incremental", [True, False])
def test_accounting_matches_recompute_big_switch(seed, incremental):
    topology = big_switch(6, host_bandwidth=2.0)
    network = _network(topology, incremental)
    rng = random.Random(seed)
    _random_walk(network, rng, [f"h{i}" for i in range(6)], steps=150)


@pytest.mark.parametrize("seed", [11, 12])
def test_accounting_matches_recompute_leaf_spine(seed):
    topology = leaf_spine(
        n_leaves=2, hosts_per_leaf=3, host_bandwidth=2.0, oversubscription=2.0
    )
    network = _network(topology, incremental=True)
    rng = random.Random(seed)
    _random_walk(network, rng, [f"h{i}" for i in range(6)], steps=120)


def test_drain_to_completion_keeps_accounting_clean():
    topology = big_switch(4, host_bandwidth=2.0)
    network = _network(topology, incremental=True)
    rng = random.Random(99)
    hosts = [f"h{i}" for i in range(4)]
    now = _random_walk(network, rng, hosts, steps=60)
    # Saturate every flow and drain the network dry; each retirement must
    # unwind its link registrations exactly.
    while network.active_count:
        network.set_rates(
            {s.flow.flow_id: 2.0 for s in network.active_states()}
        )
        dt = max(network.earliest_finish_interval(), 1e-3)
        network.advance(dt, now)
        now += dt
        assert network.verify_accounting() == []
    assert network.verify_accounting() == []


def test_verify_accounting_detects_tampering():
    topology = big_switch(3, host_bandwidth=2.0)
    network = _network(topology, incremental=True)
    network.inject(Flow(src="h0", dst="h1", size=5.0), 0.0)
    state = network.active_states()[0]
    network.set_rates({state.flow.flow_id: 1.0})
    assert network.verify_accounting() == []
    # Corrupt each facet of the residual state; the audit must name it.
    key = next(iter(network.accounting.loads))
    network.accounting.loads[key] += 0.5
    kinds = {p["kind"] for p in network.verify_accounting()}
    assert "load" in kinds
    network.accounting.loads[key] -= 0.5
    network.accounting.nonzero[key] += 1
    kinds = {p["kind"] for p in network.verify_accounting()}
    assert kinds == {"nonzero_count"}
    network.accounting.nonzero[key] -= 1
    network.accounting.flows_on[key].add(10**9)
    kinds = {p["kind"] for p in network.verify_accounting()}
    assert kinds == {"membership"}


# ---------------------------------------------------------------------------
# the pure helpers shared with the sanitizer
# ---------------------------------------------------------------------------


def _demands(network):
    return network.demands()


def test_max_min_fair_is_work_conserving_on_random_instances():
    # Whatever the random demand set, the fair allocation never leaves a
    # flow with headroom on every link of its path -- the exact property
    # the sanitizer asserts for schedulers declaring work_conserving.
    for seed in range(6):
        rng = random.Random(seed)
        topology = big_switch(5, host_bandwidth=1.0 + rng.random() * 3.0)
        network = _network(topology, incremental=True)
        hosts = [f"h{i}" for i in range(5)]
        for _ in range(rng.randrange(1, 12)):
            src, dst = rng.sample(hosts, 2)
            network.inject(Flow(src=src, dst=dst, size=1.0), 0.0)
        demands = _demands(network)
        rates = max_min_fair(demands)
        assert infeasible_links(demands, rates) == []
        remaining = {d.flow_id: 1.0 for d in demands}
        thresholds = {d.flow_id: 0.0 for d in demands}
        assert unserved_flows(demands, rates, remaining, thresholds) == []


def test_unserved_flows_flags_idle_capacity():
    topology = big_switch(3, host_bandwidth=2.0)
    network = _network(topology, incremental=True)
    network.inject(Flow(src="h0", dst="h1", size=5.0), 0.0)
    demands = _demands(network)
    flow_id = demands[0].flow_id
    starved = unserved_flows(
        demands, {flow_id: 0.5}, {flow_id: 5.0}, {flow_id: 0.0}
    )
    assert [p["flow"] for p in starved] == [flow_id]
    assert starved[0]["headroom"] == pytest.approx(1.5)
    # A finished flow (remaining below threshold) is never flagged.
    assert (
        unserved_flows(demands, {flow_id: 0.5}, {flow_id: 0.0}, {flow_id: 0.1})
        == []
    )
    # Nor is a flow pinned at its demand cap.
    capped = [
        FlowDemand(flow_id=d.flow_id, path=d.path, cap=0.5) for d in demands
    ]
    assert (
        unserved_flows(capped, {flow_id: 0.5}, {flow_id: 5.0}, {flow_id: 0.0})
        == []
    )


def test_infeasible_links_reports_the_overload():
    topology = big_switch(3, host_bandwidth=1.0)
    network = _network(topology, incremental=True)
    network.inject(Flow(src="h0", dst="h2", size=5.0), 0.0)
    network.inject(Flow(src="h1", dst="h2", size=5.0), 0.0)
    demands = _demands(network)
    rates = {d.flow_id: 0.8 for d in demands}  # 1.6 into h2's 1.0 ingress
    problems = infeasible_links(demands, rates)
    assert problems
    worst = max(problems, key=lambda p: p["excess"])
    assert worst["load"] == pytest.approx(1.6)
    assert worst["capacity"] == pytest.approx(1.0)
    assert sorted(worst["flows"]) == sorted(d.flow_id for d in demands)
    assert infeasible_links(demands, {d.flow_id: 0.5 for d in demands}) == []


# ---------------------------------------------------------------------------
# scalar vs vector kernel: seeded random differential battery
# ---------------------------------------------------------------------------
#
# The vector kernel's bit-identity contract (see repro.simulator.vector) is
# attacked here with adversarial instances that topology-derived demand sets
# never produce: duplicate links on a path, mixed weights, zero caps, and
# dead links expressed through the ``available`` residual map. Every seed
# demands *exact* dict equality -- no tolerance -- plus the classic max-min
# certificate on the shared result.

needs_numpy = pytest.mark.skipif(not HAVE_NUMPY, reason="numpy unavailable")


def _random_kernel_instance(rng):
    """One random waterfilling instance: links, demands, maybe ``available``."""
    links = [
        Link(f"s{i}", f"t{i}", 0.5 + rng.random() * 4.0)
        for i in range(rng.randrange(2, 13))
    ]
    demands = []
    for fid in range(rng.randrange(1, 41)):
        path = [rng.choice(links) for _ in range(rng.randrange(1, 5))]
        if rng.random() < 0.1:
            path.append(path[0])  # one link crossed twice by the same flow
        roll = rng.random()
        cap = None if roll < 0.7 else 0.0 if roll < 0.75 else rng.random() * 2.0
        demands.append(
            FlowDemand(
                flow_id=1000 + fid,
                path=tuple(path),
                weight=rng.choice((1.0, 1.0, 0.5, 2.0, 0.25 + rng.random() * 3.0)),
                cap=cap,
            )
        )
    available = None
    if rng.random() < 0.3:
        # A residual-capacity view, as mid-round schedulers pass: every
        # entry is at most the link's capacity, some links fully spent.
        available = {}
        for link in links:
            roll = rng.random()
            if roll < 0.25:
                available[link.key] = link.capacity * rng.random()
            elif roll < 0.3:
                available[link.key] = 0.0  # dead link: rates pin at zero
    return demands, available


def _audit_max_min(demands, rates, available):
    """Feasibility, work conservation, and the max-min certificate.

    Every flow is either pinned at its own cap or has a *bottleneck*: a
    saturated path link on which its weight-normalized rate is maximal,
    so raising it would require lowering a flow that is no better off.
    The certificate subsumes work conservation -- a flow with headroom
    on every path link has no saturated link at all.
    """
    caps = dict(available) if available else {}
    loads = {}
    by_link = {}
    for demand in demands:
        rate = rates[demand.flow_id]
        for link in demand.path:
            key = link.key
            caps.setdefault(key, link.capacity)
            loads[key] = loads.get(key, 0.0) + rate
            by_link.setdefault(key, []).append(demand)
    for key, load in loads.items():
        assert load <= caps[key] + 1e-6 * max(1.0, caps[key]), key
    for demand in demands:
        rate = rates[demand.flow_id]
        assert rate >= 0.0
        if demand.cap is not None:
            assert rate <= demand.cap + 1e-9
            if rate >= demand.cap - 1e-9:
                continue  # pinned by its own cap: no link bottleneck needed
        norm = rate / demand.weight
        certified = False
        for link in demand.path:
            key = link.key
            if loads[key] < caps[key] - 1e-6 * max(1.0, caps[key]):
                continue  # unsaturated: cannot be the bottleneck
            best = max(rates[o.flow_id] / o.weight for o in by_link[key])
            if norm >= best - 1e-6:
                certified = True
                break
        assert certified, f"flow {demand.flow_id} has no max-min bottleneck"


@needs_numpy
def test_vector_kernel_matches_scalar_on_random_instances():
    for seed in range(80):
        rng = random.Random(seed)
        demands, available = _random_kernel_instance(rng)
        scalar = max_min_fair(list(demands), available)
        vec = max_min_fair(DemandSet(demands, use_vector=True), available)
        # Bit-identity: the same keys mapped to the very same floats.
        assert dict(vec.items()) == scalar, f"seed {seed} diverged"
        assert feasible(list(demands), scalar)
        assert feasible(DemandSet(demands, use_vector=True), vec)
        _audit_max_min(demands, scalar, available)


@needs_numpy
def test_vector_kernel_degenerate_dead_link_and_zero_cap():
    link = Link("a", "b", 1.0)
    other = Link("b", "c", 2.0)
    demands = [
        FlowDemand(flow_id=1, path=(link,), cap=0.0),  # pinned at zero
        FlowDemand(flow_id=2, path=(link, other)),  # dead first hop
        FlowDemand(flow_id=3, path=(other,)),  # unaffected
    ]
    available = {link.key: 0.0}
    scalar = max_min_fair(list(demands), available)
    vec = max_min_fair(DemandSet(demands, use_vector=True), available)
    assert dict(vec.items()) == scalar
    assert scalar[1] == 0.0 and scalar[2] == 0.0
    # The survivor still gets the whole healthy link: dead links starve
    # their own flows without dragging the rest of the allocation down.
    assert scalar[3] == 2.0
    _audit_max_min(demands, scalar, available)


@needs_numpy
def test_vector_kernel_all_flows_capped_at_zero():
    link = Link("a", "b", 1.0)
    demands = [FlowDemand(flow_id=i + 1, path=(link,), cap=0.0) for i in range(3)]
    scalar = max_min_fair(list(demands))
    vec = max_min_fair(DemandSet(demands, use_vector=True))
    assert dict(vec.items()) == scalar == {1: 0.0, 2: 0.0, 3: 0.0}


@needs_numpy
def test_vector_allocation_passes_the_sanitizer_helpers():
    # The sanitizer's pure helpers accept a VectorAllocation as-is: the
    # mapping duck-typing means the work-conservation and feasibility
    # audits run unchanged over the dense kernel's output.
    for seed in (21, 22):
        rng = random.Random(seed)
        topology = big_switch(6, host_bandwidth=1.0 + rng.random() * 3.0)
        network = _network(topology, incremental=True)
        hosts = [f"h{i}" for i in range(6)]
        for _ in range(rng.randrange(4, 16)):
            src, dst = rng.sample(hosts, 2)
            network.inject(Flow(src=src, dst=dst, size=1.0), 0.0)
        demands = network.demands()
        rates = max_min_fair(DemandSet(demands, use_vector=True))
        assert infeasible_links(demands, rates) == []
        remaining = {d.flow_id: 1.0 for d in demands}
        thresholds = {d.flow_id: 0.0 for d in demands}
        assert unserved_flows(demands, rates, remaining, thresholds) == []
        assert dict(rates.items()) == max_min_fair(list(demands))
