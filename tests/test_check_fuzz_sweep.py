"""Seeded fuzz sweep: every Table-1 paradigm under every scheduler, strict.

The sanitizer's reason to exist is catching latent violations in
combinations nobody hand-writes a test for. This sweep runs the full
cross product of the paper's five training paradigms (Table 1) and every
registered scheduler, each under ``strict`` with sampled twin checking,
plus seeded random background-traffic storms -- any invariant breach
fails the test with the violation rendered in the assertion.
"""

import random

import pytest

from repro import check
from repro.core.flow import Flow
from repro.core.units import gbps, megabytes
from repro.scheduling import make_scheduler, scheduler_names
from repro.simulator import Engine
from repro.topology import big_switch, linear_chain
from repro.workloads import (
    build_dp_allreduce,
    build_dp_ps,
    build_fsdp,
    build_pp_gpipe,
    build_tp_megatron,
    uniform_model,
)

_MODEL = uniform_model(
    "u6",
    6,
    param_bytes_per_layer=megabytes(30),
    activation_bytes=megabytes(15),
    forward_time=0.003,
)

_HOSTS = [f"h{i}" for i in range(4)]

PARADIGMS = {
    "DP-AllReduce": (
        lambda: build_dp_allreduce("j", _MODEL, _HOSTS, bucket_bytes=megabytes(60)),
        lambda: big_switch(4, gbps(10)),
    ),
    "DP-PS": (
        lambda: build_dp_ps("j", _MODEL, _HOSTS, "h4", bucket_bytes=megabytes(60)),
        lambda: big_switch(5, gbps(10)),
    ),
    "PP": (
        lambda: build_pp_gpipe("j", _MODEL, _HOSTS, 4),
        lambda: linear_chain(4, gbps(10)),
    ),
    "TP": (
        lambda: build_tp_megatron("j", _MODEL, _HOSTS),
        lambda: big_switch(4, gbps(10)),
    ),
    "FSDP": (
        lambda: build_fsdp("j", _MODEL, _HOSTS),
        lambda: big_switch(4, gbps(10)),
    ),
}


@pytest.fixture(autouse=True)
def _isolated_check_state(monkeypatch):
    monkeypatch.delenv(check.ENV_VAR, raising=False)
    check.clear_configuration()
    check.reset_global_stats()
    yield
    check.clear_configuration()
    check.reset_global_stats()


def _run_strict(engine):
    # Strict mode raises on the first breach; reaching the end of run()
    # with a zero count doubly confirms a clean execution.
    trace = engine.run()
    assert engine.check.violation_count == 0
    assert engine.check.checks  # the invariants actually evaluated
    return trace


@pytest.mark.parametrize("scheduler_name", scheduler_names())
@pytest.mark.parametrize("paradigm", sorted(PARADIGMS))
def test_paradigm_scheduler_sweep(paradigm, scheduler_name):
    build, topo = PARADIGMS[paradigm]
    engine = Engine(
        topo(),
        make_scheduler(scheduler_name),
        sanitizer="strict:twin=0.25,seed=7",
    )
    build().submit_to(engine)
    trace = _run_strict(engine)
    assert trace.flow_records  # every paradigm moves bytes


@pytest.mark.parametrize("scheduler_name", scheduler_names())
@pytest.mark.parametrize("seed", [3, 17])
def test_background_storm_sweep(scheduler_name, seed):
    rng = random.Random(seed)
    engine = Engine(
        big_switch(8, host_bandwidth=4.0),
        make_scheduler(scheduler_name),
        scheduling_interval=0.2 if seed % 2 else None,
        sanitizer="strict:twin=0.25,seed=7",
    )
    for i in range(40):
        src = rng.randrange(8)
        dst = (src + rng.randrange(1, 8)) % 8
        engine.inject_background_flow(
            Flow(
                src=f"h{src}",
                dst=f"h{dst}",
                size=0.3 + rng.random() * 2.5,
                job_id=f"job{i % 4}",
                tag=f"bg{i}",
            ),
            at_time=rng.random() * 2.0,
        )
    _run_strict(engine)


# Per-paradigm chaos specs hitting the topology each paradigm runs on:
# a mid-run degradation on one host's egress plus a short flap on a
# second link, timed to overlap the communication phases.
_FAULT_SPECS = {
    "DP-AllReduce": (
        "degrade:h0-core@0.02+0.08,factor=0.5; "
        "flap:h1-core@0.03,period=0.02,count=3"
    ),
    "DP-PS": (
        "degrade:h4-core@0.02+0.08,factor=0.5; "
        "flap:h0-core@0.03,period=0.02,count=3"
    ),
    "PP": (
        "degrade:h1-h2@0.02+0.08,factor=0.5; "
        "flap:h2-h3@0.03,period=0.02,count=3"
    ),
    "TP": (
        "degrade:h0-core@0.02+0.08,factor=0.5; "
        "flap:h2-core@0.03,period=0.02,count=3"
    ),
    "FSDP": (
        "degrade:h0-core@0.02+0.08,factor=0.5; "
        "flap:h3-core@0.03,period=0.02,count=3"
    ),
}


@pytest.mark.parametrize("scheduler_name", scheduler_names())
@pytest.mark.parametrize("paradigm", sorted(PARADIGMS))
def test_chaos_paradigm_sweep(paradigm, scheduler_name):
    # Every paradigm x scheduler cell again, now with link degradation
    # and flapping injected mid-run: capacity mutation, in-flight rate
    # rescaling, and restore must all hold the strict invariants.
    build, topo = PARADIGMS[paradigm]
    engine = Engine(
        topo(),
        make_scheduler(scheduler_name),
        sanitizer="strict:twin=0.25,seed=7",
        faults=_FAULT_SPECS[paradigm],
    )
    build().submit_to(engine)
    trace = _run_strict(engine)
    assert trace.flow_records
    assert engine.faults.fired  # the chaos actually happened


@pytest.mark.parametrize("paradigm", sorted(PARADIGMS))
def test_twin_bit_equivalence_under_capacity_change(paradigm):
    # Twin oracle at 100% sampling across a mid-run capacity change: the
    # reference replay must agree rate-for-rate before, during, and
    # after the degradation window.
    build, topo = PARADIGMS[paradigm]
    engine = Engine(
        topo(),
        make_scheduler("echelon"),
        sanitizer="strict:twin=1.0",
        faults=_FAULT_SPECS[paradigm],
    )
    build().submit_to(engine)
    _run_strict(engine)
    assert engine.check.twin.comparisons > 0
    assert engine.check.twin.skipped == 0
    assert engine.faults.fired


def test_multi_tenant_mixed_paradigms_strict():
    # Three paradigms sharing one fabric -- the contention-heavy regime
    # where stale incremental state would first show up.
    from repro.topology import leaf_spine

    engine = Engine(
        leaf_spine(
            n_leaves=4,
            hosts_per_leaf=4,
            host_bandwidth=gbps(10),
            oversubscription=2.0,
        ),
        make_scheduler("echelon"),
        sanitizer="strict:twin=0.5,seed=1",
    )
    jobs = [
        build_pp_gpipe("pp", _MODEL, ["h0", "h4", "h8", "h12"], 4),
        build_fsdp("fsdp", _MODEL, ["h1", "h5", "h9", "h13"]),
        build_dp_allreduce(
            "dp", _MODEL, ["h2", "h6", "h10", "h14"], bucket_bytes=megabytes(60)
        ),
    ]
    for job in jobs:
        job.submit_to(engine)
    _run_strict(engine)
