"""The runtime sanitizer: config parsing, wiring, and violation paths.

The happy path ("the whole suite stays clean under REPRO_CHECK=strict")
is exercised by CI; these tests pin down the machinery itself -- that
specs parse, that engines pick up the process default, that rigged-bad
schedulers actually trip the invariants, and that violations flow into
logs, global stats, and the obs event log.
"""

import math
from types import SimpleNamespace

import pytest

from repro import check
from repro.check import (
    CheckConfig,
    CheckViolation,
    INVARIANTS,
    Sanitizer,
    Violation,
    ViolationLog,
    invariant_names,
    parse_spec,
)
from repro.core.flow import Flow
from repro.scheduling import EchelonMaddScheduler, FairSharingScheduler
from repro.scheduling.base import Scheduler
from repro.simulator import Engine
from repro.topology import two_hosts
from repro.workloads import build_pipeline_segment


@pytest.fixture(autouse=True)
def _isolated_check_state(monkeypatch):
    """Each test starts from 'REPRO_CHECK unset, nothing configured'."""
    monkeypatch.delenv(check.ENV_VAR, raising=False)
    check.clear_configuration()
    check.reset_global_stats()
    yield
    check.clear_configuration()
    check.reset_global_stats()


def _fig2_engine(scheduler, **kwargs):
    engine = Engine(two_hosts(1.0), scheduler, **kwargs)
    job = build_pipeline_segment(
        "fig2", "h0", "h1", [0.0, 1.0, 2.0], [2.0] * 3, [2.0] * 3
    )
    job.submit_to(engine)
    return engine


# ---------------------------------------------------------------------------
# spec parsing and config
# ---------------------------------------------------------------------------


def test_parse_spec_off_spellings():
    for spec in (None, "", "0", "off", "false", "no", " OFF "):
        assert parse_spec(spec) is None


def test_parse_spec_modes():
    assert parse_spec("strict").mode == "strict"
    assert parse_spec("1").mode == "strict"
    assert parse_spec("on").mode == "strict"
    assert parse_spec("collect").mode == "collect"


def test_parse_spec_options():
    config = parse_spec("collect:twin=1.0,seed=3,twin_tol=1e-9,max=50")
    assert config.mode == "collect"
    assert config.twin_sample == 1.0
    assert config.seed == 3
    assert config.twin_tolerance == 1e-9
    assert config.max_violations == 50


def test_parse_spec_invariant_allowlist():
    config = parse_spec("strict:invariants=capacity+twin")
    assert config.invariants == frozenset({"capacity", "twin"})
    assert config.wants("capacity")
    assert not config.wants("causality")
    # Empty allow-list means everything is in scope.
    assert parse_spec("strict").wants("causality")


def test_parse_spec_rejects_garbage():
    with pytest.raises(ValueError):
        parse_spec("verystrict")
    with pytest.raises(ValueError):
        parse_spec("strict:bogus=1")
    with pytest.raises(ValueError):
        parse_spec("strict:twin")  # missing =value


def test_parse_spec_passes_configs_through():
    config = CheckConfig(mode="collect")
    assert parse_spec(config) is config
    assert parse_spec(CheckConfig(mode="off")) is None


def test_config_validation():
    with pytest.raises(ValueError):
        CheckConfig(mode="bogus")
    with pytest.raises(ValueError):
        CheckConfig(twin_sample=1.5)
    with pytest.raises(ValueError):
        CheckConfig(twin_tolerance=-1.0)
    with pytest.raises(ValueError):
        CheckConfig(max_violations=0)


def test_invariant_catalog_is_complete():
    # Every invariant the sanitizer can count is documented, and vice
    # versa: the catalog is the single source of truth for docs/reports.
    engine = _fig2_engine(EchelonMaddScheduler(), sanitizer="strict:twin=1.0")
    engine.run()
    assert set(engine.check.checks) <= set(INVARIANTS)
    assert invariant_names() == sorted(INVARIANTS)
    for summary, anchor in INVARIANTS.values():
        assert summary and anchor


# ---------------------------------------------------------------------------
# process-default activation
# ---------------------------------------------------------------------------


def test_engine_defaults_to_no_sanitizer():
    engine = _fig2_engine(EchelonMaddScheduler())
    assert engine.check is None


def test_env_var_sanitizes_every_engine(monkeypatch):
    monkeypatch.setenv(check.ENV_VAR, "collect:twin=0")
    check.clear_configuration()  # force a lazy re-read
    engine = _fig2_engine(EchelonMaddScheduler())
    assert engine.check is not None
    assert engine.check.config.mode == "collect"
    engine.run()
    assert engine.check.violation_count == 0
    assert check.global_stats().sanitizers == 1


def test_configure_overrides_env(monkeypatch):
    monkeypatch.setenv(check.ENV_VAR, "strict")
    check.configure("off")
    assert _fig2_engine(EchelonMaddScheduler()).check is None
    check.configure("collect")
    assert _fig2_engine(EchelonMaddScheduler()).check.config.mode == "collect"


def test_sanitizer_false_forces_off(monkeypatch):
    monkeypatch.setenv(check.ENV_VAR, "strict")
    check.clear_configuration()
    engine = _fig2_engine(EchelonMaddScheduler(), sanitizer=False)
    assert engine.check is None


def test_engine_accepts_spec_strings():
    engine = _fig2_engine(EchelonMaddScheduler(), sanitizer="strict:twin=0")
    assert isinstance(engine.check, Sanitizer)
    assert engine.check.twin is None
    assert _fig2_engine(EchelonMaddScheduler(), sanitizer="off").check is None


def test_sanitizer_rejects_off_config():
    with pytest.raises(ValueError):
        Sanitizer(CheckConfig(mode="off"))


# ---------------------------------------------------------------------------
# clean runs stay clean
# ---------------------------------------------------------------------------


def test_clean_run_exercises_every_invariant():
    engine = _fig2_engine(EchelonMaddScheduler(), sanitizer="strict:twin=1.0")
    engine.run()
    report = engine.check.report()
    assert report["total"] == 0
    assert set(report["checks"]) == set(INVARIANTS)
    assert report["twin"]["comparisons"] > 0
    assert report["twin"]["skipped"] == 0


def test_allowlist_filters_evaluations():
    engine = _fig2_engine(
        EchelonMaddScheduler(), sanitizer="strict:twin=0,invariants=capacity"
    )
    engine.run()
    assert set(engine.check.checks) == {"capacity"}


# ---------------------------------------------------------------------------
# rigged schedulers trip the invariants
# ---------------------------------------------------------------------------


class _RiggedScheduler(Scheduler):
    """Fair sharing, with one poisoned entry added to the allocation."""

    name = "rigged"
    work_conserving = False

    def __init__(self, poison):
        self.inner = FairSharingScheduler()
        self.poison = poison

    def allocate(self, view):
        rates = self.inner.allocate(view)
        rates.update(self.poison(view, rates))
        return rates


@pytest.mark.parametrize(
    "poison",
    [
        lambda view, rates: {next(iter(rates)): -1.0} if rates else {},
        lambda view, rates: {next(iter(rates)): math.nan} if rates else {},
        lambda view, rates: {next(iter(rates)): math.inf} if rates else {},
        lambda view, rates: {10**9: 1.0},  # never an active flow id
    ],
)
def test_rate_sanity_raises_in_strict_mode(poison):
    engine = _fig2_engine(
        _RiggedScheduler(poison), sanitizer="strict:twin=0"
    )
    with pytest.raises(CheckViolation) as excinfo:
        engine.run()
    assert excinfo.value.violation.invariant == "rate_sanity"


def test_rate_sanity_collect_mode_accumulates():
    engine = _fig2_engine(
        _RiggedScheduler(lambda view, rates: {10**9: 1.0}),
        sanitizer="collect:twin=0",
    )
    engine.run()
    report = engine.check.report()
    assert report["total"] > 0
    assert set(report["by_invariant"]) == {"rate_sanity"}
    # Collect mode still finished the run and aggregated globally.
    assert check.global_stats().total == report["total"]


def test_violations_land_in_obs_event_log():
    from repro.obs import Instrumentation, JsonlEventLog

    obs = Instrumentation(event_log=JsonlEventLog())
    engine = _fig2_engine(
        _RiggedScheduler(lambda view, rates: {10**9: 1.0}),
        sanitizer="collect:twin=0",
        instrumentation=obs,
    )
    engine.run()
    events = [e for e in obs.event_log.events if e["ev"] == "check_violation"]
    assert events
    assert events[0]["invariant"] == "rate_sanity"
    assert "message" in events[0]


def test_work_conservation_catches_idle_allocation():
    class _Lazy(Scheduler):
        name = "lazy"
        work_conserving = True  # a lie: it halves every rate

        def __init__(self):
            self.inner = FairSharingScheduler()

        def allocate(self, view):
            return {
                fid: 0.5 * rate
                for fid, rate in self.inner.allocate(view).items()
            }

    engine = _fig2_engine(_Lazy(), sanitizer="strict:twin=0")
    with pytest.raises(CheckViolation) as excinfo:
        engine.run()
    assert excinfo.value.violation.invariant == "work_conservation"
    # The same scheduler honestly declaring itself non-work-conserving
    # sails through: the invariant only audits the promise that was made.
    class _HonestLazy(_Lazy):
        work_conserving = False

    _fig2_engine(_HonestLazy(), sanitizer="strict:twin=0").run()


# ---------------------------------------------------------------------------
# direct hook-level checks (fabricated states)
# ---------------------------------------------------------------------------


def _collector(**overrides):
    config = CheckConfig(mode="collect", twin_sample=0.0, **overrides)
    sanitizer = Sanitizer(config)
    sanitizer.attach(SimpleNamespace(obs=None, echelonflows={}))
    return sanitizer


def test_causality_hook_flags_backwards_flow():
    sanitizer = _collector()
    flow = Flow(src="a", dst="b", size=100.0)
    state = SimpleNamespace(flow=flow, remaining=0.0, ideal_finish_time=None)
    record = SimpleNamespace(start=5.0, finish=3.0)
    sanitizer.on_flow_finished(state, record, now=5.0)
    assert sanitizer.log.counts["causality"] == 1


def test_conservation_hook_flags_undrained_flow():
    sanitizer = _collector()
    flow = Flow(src="a", dst="b", size=100.0)
    state = SimpleNamespace(flow=flow, remaining=1.0, ideal_finish_time=None)
    record = SimpleNamespace(start=0.0, finish=1.0)
    sanitizer.on_flow_finished(state, record, now=1.0)
    assert sanitizer.log.counts["conservation"] == 1
    [violation] = sanitizer.log.violations
    assert violation.details["remaining"] == 1.0


def test_task_dependency_ordering_hook():
    sanitizer = _collector()
    dag = SimpleNamespace(job_id="job")
    first = SimpleNamespace(task_id="a", deps=(), duration=1.0)
    second = SimpleNamespace(task_id="b", deps=("a",), duration=1.0)
    sanitizer.on_task_complete(dag, first, now=1.0)
    sanitizer.on_task_complete(dag, second, now=2.0)
    assert sanitizer.log.total == 0
    # A task whose start precedes its dependency's completion is flagged.
    third = SimpleNamespace(task_id="c", deps=("b",), duration=5.0)
    sanitizer.on_task_complete(dag, third, now=3.0)
    assert sanitizer.log.counts["causality"] == 1
    # And a completion whose dependency never completed at all.
    orphan = SimpleNamespace(task_id="d", deps=("ghost",), duration=0.0)
    sanitizer.on_task_complete(dag, orphan, now=4.0)
    assert sanitizer.log.counts["causality"] == 2


# ---------------------------------------------------------------------------
# violation records and logs
# ---------------------------------------------------------------------------


def test_violation_render_and_dict():
    violation = Violation(
        invariant="capacity", time=1.5, message="boom", details={"link": "x"}
    )
    text = violation.render()
    assert "[capacity]" in text and "t=1.5" in text and "link='x'" in text
    assert violation.to_dict()["details"] == {"link": "x"}
    wrapped = CheckViolation(violation)
    assert wrapped.violation is violation
    assert "boom" in str(wrapped)


def test_violation_log_bounds_retention_not_counts():
    log = ViolationLog(capacity=3)
    for i in range(10):
        log.add(Violation(invariant="capacity", time=float(i), message=f"v{i}"))
    assert log.total == 10
    assert len(log.violations) == 3
    assert log.counts == {"capacity": 10}
    document = log.to_dict()
    assert document["truncated"] is True
    assert "10 violation(s)" in log.render()
    with pytest.raises(ValueError):
        ViolationLog(capacity=0)


def test_max_violations_spec_bounds_sanitizer_log():
    engine = _fig2_engine(
        _RiggedScheduler(lambda view, rates: {10**9: 1.0}),
        sanitizer="collect:twin=0,max=1",
    )
    engine.run()
    assert engine.check.violation_count >= 1
    assert len(engine.check.log.violations) == 1


# ---------------------------------------------------------------------------
# global stats and reports
# ---------------------------------------------------------------------------


def test_write_global_report(tmp_path, monkeypatch):
    import json

    monkeypatch.setenv(check.ENV_VAR, "collect:twin=0")
    check.clear_configuration()
    engine = _fig2_engine(
        _RiggedScheduler(lambda view, rates: {10**9: 1.0})
    )
    engine.run()
    path = tmp_path / "report.json"
    check.write_global_report(str(path))
    document = json.loads(path.read_text())
    assert document["config"]["mode"] == "collect"
    assert document["stats"]["sanitizers"] == 1
    assert document["stats"]["total"] > 0
    assert document["stats"]["by_invariant"] == {
        "rate_sanity": document["stats"]["total"]
    }


def test_sanitizer_section_in_metrics_report():
    from repro.obs import Instrumentation, build_metrics_report

    obs = Instrumentation()
    engine = _fig2_engine(
        EchelonMaddScheduler(),
        sanitizer="strict:twin=1.0",
        instrumentation=obs,
    )
    trace = engine.run()
    report = build_metrics_report(trace, instrumentation=obs, sanitizer=engine.check)
    assert report["sanitizer"]["total"] == 0
    assert report["sanitizer"]["mode"] == "strict"
    assert report["sanitizer"]["twin"]["comparisons"] > 0


# ---------------------------------------------------------------------------
# pytest plugin fixtures
# ---------------------------------------------------------------------------


def test_repro_check_strict_fixture(repro_check_strict):
    engine = _fig2_engine(EchelonMaddScheduler())
    assert engine.check is not None
    assert engine.check.config.strict
    assert engine.check.config.twin_sample == 1.0
    engine.run()
    assert engine.check.violation_count == 0
