"""The differential twin oracle at 100% sampling.

Bit-equivalence of the incremental core against the retained reference
core is proven offline by ``test_incremental_equivalence``; these tests
assert the *online* detector reaches the same verdict -- every scheduler
invocation of a sanitized run, shadow-executed against a freshly
reconstructed reference network, agrees rate-for-rate -- and that a
genuinely state-dependent (hence non-replayable) scheduler is caught.
"""

import random

import pytest

from repro import check
from repro.core.flow import Flow
from repro.core.units import gbps, megabytes
from repro.scheduling import (
    CoflowMaddScheduler,
    EchelonMaddScheduler,
    FairSharingScheduler,
    MemoizingScheduler,
    SincroniaScheduler,
)
from repro.scheduling.base import Scheduler
from repro.simulator import Engine
from repro.topology import big_switch, linear_chain, two_hosts
from repro.workloads import (
    build_dp_allreduce,
    build_dp_ps,
    build_fsdp,
    build_pipeline_segment,
    build_pp_gpipe,
    build_tp_megatron,
    uniform_model,
)

TWIN_EVERYWHERE = "strict:twin=1.0"

_MODEL = uniform_model(
    "u8",
    8,
    param_bytes_per_layer=megabytes(40),
    activation_bytes=megabytes(20),
    forward_time=0.004,
)

_HOSTS = [f"h{i}" for i in range(4)]

#: The Table-1 training paradigms, each with its natural topology.
PARADIGMS = {
    "DP-AllReduce": (
        lambda: build_dp_allreduce("j", _MODEL, _HOSTS, bucket_bytes=megabytes(80)),
        lambda: big_switch(4, gbps(10)),
    ),
    "DP-PS": (
        lambda: build_dp_ps("j", _MODEL, _HOSTS, "h4", bucket_bytes=megabytes(80)),
        lambda: big_switch(5, gbps(10)),
    ),
    "PP": (
        lambda: build_pp_gpipe("j", _MODEL, _HOSTS, 4),
        lambda: linear_chain(4, gbps(10)),
    ),
    "TP": (
        lambda: build_tp_megatron("j", _MODEL, _HOSTS),
        lambda: big_switch(4, gbps(10)),
    ),
    "FSDP": (
        lambda: build_fsdp("j", _MODEL, _HOSTS),
        lambda: big_switch(4, gbps(10)),
    ),
}


@pytest.fixture(autouse=True)
def _isolated_check_state(monkeypatch):
    monkeypatch.delenv(check.ENV_VAR, raising=False)
    check.clear_configuration()
    check.reset_global_stats()
    yield
    check.clear_configuration()
    check.reset_global_stats()


def _assert_twin_clean(engine):
    trace = engine.run()
    sanitizer = engine.check
    assert sanitizer.violation_count == 0
    assert sanitizer.twin.comparisons == engine.scheduler_invocations
    assert sanitizer.twin.skipped == 0
    assert sanitizer.twin.comparisons > 0
    return trace


# ---------------------------------------------------------------------------
# bit-equivalence on the paper's workloads
# ---------------------------------------------------------------------------


@pytest.mark.parametrize(
    "scheduler_factory",
    [
        EchelonMaddScheduler,
        CoflowMaddScheduler,
        FairSharingScheduler,
        SincroniaScheduler,
    ],
)
def test_fig2_twin_equivalence(scheduler_factory):
    engine = Engine(
        two_hosts(1.0), scheduler_factory(), sanitizer=TWIN_EVERYWHERE
    )
    job = build_pipeline_segment(
        "fig2", "h0", "h1", [0.0, 1.0, 2.0], [2.0] * 3, [2.0] * 3
    )
    job.submit_to(engine)
    _assert_twin_clean(engine)


@pytest.mark.parametrize("paradigm", sorted(PARADIGMS))
def test_table1_twin_equivalence(paradigm):
    build, topo = PARADIGMS[paradigm]
    engine = Engine(topo(), EchelonMaddScheduler(), sanitizer=TWIN_EVERYWHERE)
    build().submit_to(engine)
    _assert_twin_clean(engine)


def test_twin_survives_memoized_scheduler():
    # The memoizing cache replays allocations from fingerprints; the twin
    # deep-copies it *after* the primary call, so the shadow invocation is
    # a guaranteed cache hit replaying identical rates.
    engine = Engine(
        big_switch(4, gbps(10)),
        MemoizingScheduler(EchelonMaddScheduler()),
        sanitizer=TWIN_EVERYWHERE,
    )
    build_fsdp("fsdp", _MODEL, _HOSTS).submit_to(engine)
    _assert_twin_clean(engine)
    assert engine.scheduler.hits + engine.scheduler.misses > 0


def test_twin_on_interval_scheduling_and_background_flows():
    # Interval mode drains flows lazily between ticks -- the regime where
    # reconstruction must pick up partially-drained remaining bytes.
    engine = Engine(
        big_switch(6, host_bandwidth=4.0),
        FairSharingScheduler(),
        scheduling_interval=0.25,
        sanitizer=TWIN_EVERYWHERE,
    )
    rng = random.Random(7)
    for i in range(30):
        src = rng.randrange(6)
        dst = (src + rng.randrange(1, 6)) % 6
        engine.inject_background_flow(
            Flow(src=f"h{src}", dst=f"h{dst}", size=0.5 + rng.random() * 2.0),
            at_time=rng.random() * 1.5,
        )
    _assert_twin_clean(engine)


@pytest.mark.parametrize(
    "primary, twin_kernel",
    [("vector", "scalar"), ("incremental", "vector")],
    ids=["vector-primary-scalar-twin", "scalar-primary-vector-twin"],
)
def test_twin_kernel_differential(primary, twin_kernel):
    # The scalar-vs-vector kernel identity, re-proven online: the primary
    # allocates with one kernel, the twin's shadow replay with the other,
    # and every sampled invocation must agree at twin_tol=0.
    pytest.importorskip("numpy")
    engine = Engine(
        big_switch(6, host_bandwidth=4.0),
        FairSharingScheduler(),
        scheduling_interval=0.25,
        allocation=primary,
        sanitizer=f"strict:twin=1.0,twin_kernel={twin_kernel}",
    )
    rng = random.Random(11)
    for i in range(40):
        src = rng.randrange(6)
        dst = (src + rng.randrange(1, 6)) % 6
        engine.inject_background_flow(
            Flow(src=f"h{src}", dst=f"h{dst}", size=0.5 + rng.random() * 2.0),
            at_time=rng.random() * 1.5,
        )
    _assert_twin_clean(engine)


def test_twin_kernel_vector_degrades_without_numpy(monkeypatch):
    # twin_kernel=vector on a numpy-less host must fall back to the
    # scalar replay rather than fail -- mirroring the engine's own
    # degradation contract.
    from repro.check import twin as twin_mod

    monkeypatch.setattr(twin_mod, "HAVE_NUMPY", False)
    engine = Engine(
        two_hosts(1.0),
        FairSharingScheduler(),
        sanitizer="strict:twin=1.0,twin_kernel=vector",
    )
    job = build_pipeline_segment("seg", "h0", "h1", [0.0], [2.0], [2.0])
    job.submit_to(engine)
    _assert_twin_clean(engine)


def test_twin_kernel_spec_is_validated():
    with pytest.raises(ValueError):
        check.CheckConfig(twin_kernel="simd")


def test_twin_sampling_fraction_is_respected():
    engine = Engine(
        big_switch(4, gbps(10)), EchelonMaddScheduler(), sanitizer="strict:twin=0.5,seed=1"
    )
    build_fsdp("fsdp", _MODEL, _HOSTS).submit_to(engine)
    engine.run()
    assert 0 < engine.check.twin.comparisons < engine.scheduler_invocations


# ---------------------------------------------------------------------------
# divergence detection
# ---------------------------------------------------------------------------


class _DriftingScheduler(Scheduler):
    """Fair sharing whose output depends on its own invocation count.

    Deterministic given its internal state, but *not* a pure function of
    the scheduler view: the twin's replay (one call later in the copied
    counter's life) sees a different parity and produces different rates.
    Exactly the class of state-dependence the oracle must flag.
    """

    name = "drifting"

    def __init__(self):
        self.inner = FairSharingScheduler()
        self.calls = 0

    def allocate(self, view):
        self.calls += 1
        scale = 1.0 if self.calls % 2 else 0.5
        return {
            fid: scale * rate
            for fid, rate in self.inner.allocate(view).items()
        }


def _drifting_engine(mode):
    engine = Engine(
        two_hosts(1.0), _DriftingScheduler(), sanitizer=f"{mode}:twin=1.0"
    )
    job = build_pipeline_segment(
        "seg", "h0", "h1", [0.0, 1.0], [2.0, 2.0], [2.0, 2.0]
    )
    job.submit_to(engine)
    return engine


def test_twin_flags_state_dependent_scheduler_strict():
    with pytest.raises(check.CheckViolation) as excinfo:
        _drifting_engine("strict").run()
    assert excinfo.value.violation.invariant == "twin"
    details = excinfo.value.violation.details
    assert details["incremental_rate"] != details["reference_rate"]


def test_twin_flags_state_dependent_scheduler_collect():
    engine = _drifting_engine("collect")
    engine.run()
    assert engine.check.log.counts.get("twin", 0) > 0
    assert engine.check.twin.comparisons > 0


def test_twin_tolerance_forgives_small_drift():
    class _Fuzzed(Scheduler):
        name = "fuzzed"

        def __init__(self):
            self.inner = FairSharingScheduler()
            self.calls = 0

        def allocate(self, view):
            self.calls += 1
            jitter = 1.0 + (1e-12 if self.calls % 2 else 0.0)
            return {
                fid: jitter * rate
                for fid, rate in self.inner.allocate(view).items()
            }

    def build(spec):
        engine = Engine(two_hosts(1.0), _Fuzzed(), sanitizer=spec)
        job = build_pipeline_segment(
            "seg", "h0", "h1", [0.0], [2.0], [2.0]
        )
        job.submit_to(engine)
        return engine

    # Bit-equality (the default) flags the 1-ulp jitter...
    engine = build("collect:twin=1.0")
    engine.run()
    assert engine.check.log.counts.get("twin", 0) > 0
    # ...a relative tolerance forgives it.
    engine = build("strict:twin=1.0,twin_tol=1e-9")
    engine.run()
    assert engine.check.violation_count == 0
