"""The command-line interface."""

import json

import pytest

from repro.cli import build_parser, main


def test_schedulers_lists_all(capsys):
    assert main(["schedulers"]) == 0
    out = capsys.readouterr().out
    for name in ("fair", "sjf", "coflow", "sincronia", "echelon"):
        assert name in out


def test_models_lists_zoo(capsys):
    assert main(["models"]) == 0
    out = capsys.readouterr().out
    assert "resnet50" in out and "gpt2_xl" in out
    assert "1496.0M" in out  # GPT-2 XL ~1.5B params


def test_fig2_reports_optimum(capsys):
    assert main(["fig2"]) == 0
    out = capsys.readouterr().out
    assert "echelon" in out
    assert "| 8 " in out or "| 8\n" in out


def test_run_pp(capsys):
    assert (
        main(
            [
                "run",
                "--paradigm",
                "pp-gpipe",
                "--model",
                "tiny_mlp",
                "--workers",
                "2",
                "--micro-batches",
                "2",
                "--timeline",
            ]
        )
        == 0
    )
    out = capsys.readouterr().out
    assert "comp finish time" in out
    assert "|" in out  # the timeline rendered


@pytest.mark.parametrize("paradigm", ["dp-allreduce", "dp-ps", "tp", "fsdp", "pp-1f1b"])
def test_run_every_paradigm(capsys, paradigm):
    assert (
        main(
            [
                "run",
                "--paradigm",
                paradigm,
                "--model",
                "tiny_mlp",
                "--workers",
                "2",
                "--micro-batches",
                "2",
            ]
        )
        == 0
    )
    assert "flows delivered" in capsys.readouterr().out


def test_run_writes_trace(tmp_path, capsys):
    path = tmp_path / "trace.json"
    assert (
        main(
            [
                "run",
                "--paradigm",
                "dp-allreduce",
                "--model",
                "tiny_mlp",
                "--workers",
                "2",
                "--trace",
                str(path),
            ]
        )
        == 0
    )
    payload = json.loads(path.read_text())
    assert payload["flows"]


def test_cluster_command(capsys):
    assert (
        main(
            [
                "cluster",
                "--model",
                "tiny_mlp",
                "--jobs",
                "4",
                "--hosts",
                "4",
                "--job-workers",
                "2",
                "--rate",
                "50",
            ]
        )
        == 0
    )
    out = capsys.readouterr().out
    assert "jobs completed" in out and "| 4" in out


def test_matrix_command(capsys):
    assert (
        main(
            [
                "matrix",
                "--schedulers",
                "fair,echelon",
                "--model",
                "tiny_mlp",
                "--workers",
                "2",
                "--micro-batches",
                "2",
            ]
        )
        == 0
    )
    out = capsys.readouterr().out
    assert "fsdp" in out and "pp-1f1b" in out
    assert "fair" in out and "echelon" in out and "best" in out


def test_run_emits_chrome_trace_and_metrics(tmp_path, capsys):
    trace_path = tmp_path / "trace.json"
    metrics_path = tmp_path / "metrics.json"
    events_path = tmp_path / "events.jsonl"
    assert (
        main(
            [
                "run",
                "--paradigm",
                "fsdp",
                "--model",
                "tiny_mlp",
                "--workers",
                "2",
                "--emit-trace",
                str(trace_path),
                "--metrics-out",
                str(metrics_path),
                "--events-out",
                str(events_path),
            ]
        )
        == 0
    )
    document = json.loads(trace_path.read_text())
    assert document["traceEvents"]
    assert any(e["ph"] == "X" for e in document["traceEvents"])
    metrics = json.loads(metrics_path.read_text())
    assert metrics["scheduler"]["invocations"] > 0
    assert metrics["scheduler"]["by_cause"]
    assert metrics["links"]
    assert all(
        0 <= link["peak_utilization"] <= 1 + 1e-9
        for link in metrics["links"].values()
    )
    assert events_path.read_text().strip()


def test_fig2_emit_trace(tmp_path, capsys):
    path = tmp_path / "fig2.json"
    assert main(["fig2", "--emit-trace", str(path)]) == 0
    document = json.loads(path.read_text())
    assert document["traceEvents"]


def test_cluster_metrics_out(tmp_path, capsys):
    path = tmp_path / "metrics.json"
    assert (
        main(
            [
                "cluster",
                "--model",
                "tiny_mlp",
                "--jobs",
                "2",
                "--hosts",
                "4",
                "--job-workers",
                "2",
                "--rate",
                "50",
                "--metrics-out",
                str(path),
            ]
        )
        == 0
    )
    metrics = json.loads(path.read_text())
    assert metrics["scheduler"]["invocations"] > 0


def test_run_spec_obs_flags(tmp_path, capsys):
    spec = tmp_path / "spec.json"
    spec.write_text(
        json.dumps(
            {
                "topology": {"kind": "big_switch", "hosts": 2,
                             "bandwidth_gbps": 10},
                "jobs": [
                    {"name": "j", "paradigm": "fsdp", "model": "tiny_mlp",
                     "workers": 2}
                ],
            }
        )
    )
    trace_path = tmp_path / "trace.json"
    metrics_path = tmp_path / "metrics.json"
    assert (
        main(
            [
                "run-spec",
                str(spec),
                "--emit-trace",
                str(trace_path),
                "--metrics-out",
                str(metrics_path),
            ]
        )
        == 0
    )
    assert json.loads(trace_path.read_text())["traceEvents"]
    assert json.loads(metrics_path.read_text())["scheduler"]["by_cause"]


def test_obs_subcommand_summarizes_log(tmp_path, capsys):
    events_path = tmp_path / "events.jsonl"
    assert (
        main(
            [
                "run",
                "--paradigm",
                "dp-allreduce",
                "--model",
                "tiny_mlp",
                "--workers",
                "2",
                "--events-out",
                str(events_path),
            ]
        )
        == 0
    )
    capsys.readouterr()
    assert main(["obs", str(events_path)]) == 0
    out = capsys.readouterr().out
    assert "scheduler invocations" in out
    assert "flows delivered" in out
    assert main(["obs", str(events_path), "--json"]) == 0
    summary = json.loads(capsys.readouterr().out)
    assert summary["scheduler"]["invocations"] > 0


def _write_fig2_log(tmp_path, scheduler):
    path = tmp_path / f"{scheduler}.jsonl"
    assert (
        main(
            [
                "fig2",
                "--obs-scheduler",
                scheduler,
                "--events-out",
                str(path),
            ]
        )
        == 0
    )
    return path


def test_diagnose_subcommand(tmp_path, capsys):
    path = _write_fig2_log(tmp_path, "coflow")
    capsys.readouterr()
    assert main(["diagnose", str(path)]) == 0
    out = capsys.readouterr().out
    assert "critical path [fig2]" in out
    assert "act mb0" in out
    assert "coverage: 3/3 flows with rate data" in out
    assert main(["diagnose", str(path), "--json"]) == 0
    report = json.loads(capsys.readouterr().out)
    assert report["version"] == 1
    assert report["critical_paths"]["fig2"]["jct"] == pytest.approx(12.0)
    assert report["attribution"]["echelonflows"]["fig2/ef"][
        "tardiness"
    ] == pytest.approx(6.0)


def test_diff_subcommand_fig2_fair_beats_coflow(tmp_path, capsys):
    """Acceptance criterion: `repro diff` on the two Fig. 2 logs reports
    fair sharing beating Coflow and blames the later micro-batches."""
    fair = _write_fig2_log(tmp_path, "fair")
    coflow = _write_fig2_log(tmp_path, "coflow")
    capsys.readouterr()
    assert main(["diff", str(fair), str(coflow)]) == 0
    out = capsys.readouterr().out
    assert "winner" in out and "act mb0" in out
    assert main(["diff", str(fair), str(coflow), "--json"]) == 0
    report = json.loads(capsys.readouterr().out)
    assert report["jobs"]["fig2"]["delta"] == pytest.approx(2.5)
    assert report["jobs"]["fig2"]["winner"] == "a"
    head = next(r for r in report["stages"] if r["stage"] == "act mb0")
    assert head["contention_delta"]["act mb1"] == pytest.approx(1.0)
    assert head["contention_delta"]["act mb2"] == pytest.approx(1.5)


def test_diagnose_missing_file_errors(tmp_path, capsys):
    assert main(["diagnose", str(tmp_path / "nope.jsonl")]) == 1
    assert "error" in capsys.readouterr().err


def test_table1_obs_flags(tmp_path, capsys):
    metrics_path = tmp_path / "metrics.json"
    events_path = tmp_path / "events.jsonl"
    assert (
        main(
            [
                "table1",
                "--obs-paradigm",
                "FSDP",
                "--obs-scheduler",
                "coflow",
                "--metrics-out",
                str(metrics_path),
                "--events-out",
                str(events_path),
            ]
        )
        == 0
    )
    metrics = json.loads(metrics_path.read_text())
    assert metrics["scheduler"]["invocations"] > 0
    assert metrics["scheduler"]["by_cause"]
    assert metrics["links"]
    assert metrics["diagnosis"]["coverage"]["with_rate_data"] > 0
    assert events_path.read_text().strip()


def test_matrix_obs_flags(tmp_path, capsys):
    metrics_path = tmp_path / "metrics.json"
    events_path = tmp_path / "events.jsonl"
    assert (
        main(
            [
                "matrix",
                "--schedulers",
                "fair,echelon",
                "--model",
                "tiny_mlp",
                "--workers",
                "2",
                "--micro-batches",
                "2",
                "--obs-case",
                "fsdp",
                "--obs-scheduler",
                "echelon",
                "--metrics-out",
                str(metrics_path),
                "--events-out",
                str(events_path),
            ]
        )
        == 0
    )
    out = capsys.readouterr().out
    assert "observed cell: fsdp / echelon" in out
    metrics = json.loads(metrics_path.read_text())
    assert metrics["scheduler"]["invocations"] > 0
    assert metrics["links"]
    assert events_path.read_text().strip()


def test_matrix_rejects_unknown_obs_cell(tmp_path, capsys):
    assert (
        main(
            [
                "matrix",
                "--schedulers",
                "fair",
                "--model",
                "tiny_mlp",
                "--workers",
                "2",
                "--obs-case",
                "bogus",
                "--events-out",
                str(tmp_path / "e.jsonl"),
            ]
        )
        == 1
    )
    assert "--obs-case" in capsys.readouterr().err


def test_obs_reports_scheduler_latency(tmp_path, capsys):
    events_path = tmp_path / "events.jsonl"
    assert (
        main(
            [
                "run",
                "--paradigm",
                "dp-allreduce",
                "--model",
                "tiny_mlp",
                "--workers",
                "2",
                "--events-out",
                str(events_path),
            ]
        )
        == 0
    )
    capsys.readouterr()
    assert main(["obs", str(events_path)]) == 0
    assert "scheduler latency p50/p95/p99" in capsys.readouterr().out
    assert main(["obs", str(events_path), "--json"]) == 0
    summary = json.loads(capsys.readouterr().out)
    latency = summary["scheduler"]["latency_seconds"]
    assert latency["count"] == summary["scheduler"]["invocations"]
    assert 0 <= latency["p50"] <= latency["p95"] <= latency["p99"] <= latency["max"]


def test_parser_rejects_unknown_command():
    with pytest.raises(SystemExit):
        build_parser().parse_args(["bogus"])


def test_parser_rejects_unknown_paradigm():
    with pytest.raises(SystemExit):
        build_parser().parse_args(["run", "--paradigm", "quantum"])
