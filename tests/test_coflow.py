"""Coflow compatibility helpers (Property 2 vocabulary)."""

import pytest

from repro.core.coflow import (
    bottleneck_duration,
    coflow_completion_time,
    port_loads,
    remaining_bottleneck_duration,
)
from repro.core.echelonflow import make_coflow
from repro.core.flow import Flow, FlowState


def test_port_loads_aggregate_by_endpoint():
    flows = [
        Flow("a", "b", 10.0),
        Flow("a", "c", 5.0),
        Flow("b", "c", 2.0),
    ]
    egress, ingress = port_loads(flows)
    assert egress == {"a": 15.0, "b": 2.0}
    assert ingress == {"b": 10.0, "c": 7.0}


def test_bottleneck_duration_gamma():
    # Varys' Gamma on a big switch: max over port load / capacity.
    flows = [Flow("a", "b", 12.0), Flow("a", "c", 4.0), Flow("d", "b", 6.0)]
    caps = {"a": 2.0, "b": 2.0, "c": 2.0, "d": 2.0}
    gamma = bottleneck_duration(flows, caps, caps)
    # egress a: 16/2 = 8; ingress b: 18/2 = 9 -> Gamma = 9.
    assert gamma == pytest.approx(9.0)


def test_bottleneck_rejects_zero_capacity():
    flows = [Flow("a", "b", 1.0)]
    with pytest.raises(ValueError):
        bottleneck_duration(flows, {"a": 0.0}, {"b": 1.0})


def test_remaining_bottleneck_ignores_finished():
    f1 = Flow("a", "b", 10.0)
    f2 = Flow("a", "c", 10.0)
    s1 = FlowState(flow=f1, start_time=0.0, remaining=0.0)
    s2 = FlowState(flow=f2, start_time=0.0, remaining=4.0)
    caps = {"a": 2.0, "b": 2.0, "c": 2.0}
    gamma = remaining_bottleneck_duration([s1, s2], caps, caps)
    assert gamma == pytest.approx(2.0)


def test_coflow_completion_time():
    flows = [Flow("a", "b", 1.0), Flow("a", "c", 1.0)]
    coflow = make_coflow("c", flows)
    coflow.set_reference_time(2.0)
    finishes = {f.flow_id: t for f, t in zip(coflow.flows, (5.0, 9.0))}
    assert coflow_completion_time(coflow, finishes) == pytest.approx(7.0)


def test_coflow_completion_requires_reference():
    coflow = make_coflow("c", [Flow("a", "b", 1.0)])
    with pytest.raises(RuntimeError):
        coflow_completion_time(coflow, {coflow.flows[0].flow_id: 1.0})


def test_property2_tardiness_of_coflow_equals_cct():
    """Minimizing a Coflow-arranged EF's tardiness minimizes its CCT."""
    flows = [Flow("a", "b", 1.0), Flow("a", "c", 1.0), Flow("b", "c", 1.0)]
    coflow = make_coflow("c", flows)
    coflow.set_reference_time(3.0)
    finishes = {f.flow_id: t for f, t in zip(coflow.flows, (4.0, 6.5, 5.0))}
    assert coflow.tardiness(finishes) == pytest.approx(
        coflow_completion_time(coflow, finishes)
    )
