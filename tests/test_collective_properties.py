"""Property-based invariants of the collective expansions (hypothesis)."""

import pytest
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.workloads.collectives import (
    ring_all_gather,
    ring_all_reduce,
    ring_reduce_scatter,
)
from repro.workloads.collectives_extra import (
    halving_doubling_all_reduce,
    tree_all_reduce,
)

hosts_strategy = st.integers(min_value=2, max_value=12).map(
    lambda m: [f"h{i}" for i in range(m)]
)
payload_strategy = st.floats(min_value=1.0, max_value=1e9)


@given(hosts_strategy, payload_strategy)
@settings(max_examples=40, deadline=None)
def test_ring_allreduce_per_host_traffic_is_bandwidth_optimal(hosts, payload):
    m = len(hosts)
    steps = ring_all_reduce(hosts, payload)
    for host in hosts:
        sent = sum(f.size for step in steps for f in step if f.src == host)
        received = sum(f.size for step in steps for f in step if f.dst == host)
        expected = 2 * (m - 1) / m * payload
        assert sent == pytest.approx(expected)
        assert received == pytest.approx(expected)


@given(hosts_strategy, payload_strategy)
@settings(max_examples=40, deadline=None)
def test_ring_steps_use_every_host_exactly_once(hosts, payload):
    steps = ring_all_reduce(hosts, payload)
    for step in steps:
        assert sorted(f.src for f in step) == sorted(hosts)
        assert sorted(f.dst for f in step) == sorted(hosts)
        for flow in step:
            assert flow.src != flow.dst


@given(hosts_strategy, payload_strategy)
@settings(max_examples=40, deadline=None)
def test_gather_and_scatter_are_traffic_mirrors(hosts, payload):
    m = len(hosts)
    gather = ring_all_gather(hosts, payload / m)
    scatter = ring_reduce_scatter(hosts, payload)
    gather_bytes = sum(f.size for step in gather for f in step)
    scatter_bytes = sum(f.size for step in scatter for f in step)
    assert gather_bytes == pytest.approx(scatter_bytes)
    assert len(gather) == len(scatter) == m - 1


@given(
    st.integers(min_value=1, max_value=4).map(lambda k: [f"h{i}" for i in range(2 ** k)]),
    payload_strategy,
)
@settings(max_examples=40, deadline=None)
def test_halving_doubling_matches_ring_traffic(hosts, payload):
    """Both bandwidth-optimal algorithms move identical per-host bytes."""
    ring = ring_all_reduce(hosts, payload)
    hd = halving_doubling_all_reduce(hosts, payload)
    for host in hosts:
        ring_sent = sum(f.size for step in ring for f in step if f.src == host)
        hd_sent = sum(f.size for step in hd for f in step if f.src == host)
        assert hd_sent == pytest.approx(ring_sent)


@given(hosts_strategy, payload_strategy)
@settings(max_examples=40, deadline=None)
def test_tree_allreduce_is_connected_and_symmetric(hosts, payload):
    steps = tree_all_reduce(hosts, payload)
    # Reduce half mirrors the broadcast half.
    half = len(steps) // 2
    reduce_pairs = sorted((f.src, f.dst) for step in steps[:half] for f in step)
    bcast_pairs = sorted((f.dst, f.src) for step in steps[half:] for f in step)
    assert reduce_pairs == bcast_pairs
    # Every non-root host appears in the reduce tree exactly once as a src.
    senders = [f.src for step in steps[:half] for f in step]
    assert sorted(senders) == sorted(set(senders))
    assert set(senders) == set(hosts) - {hosts[0]}


@given(hosts_strategy, payload_strategy, st.integers(min_value=0, max_value=7))
@settings(max_examples=30, deadline=None)
def test_group_tagging_propagates_everywhere(hosts, payload, index):
    for builder in (ring_all_reduce, tree_all_reduce):
        steps = builder(hosts, payload, group_id="g", index_in_group=index)
        for step in steps:
            for flow in step:
                assert flow.group_id == "g"
                assert flow.index_in_group == index
