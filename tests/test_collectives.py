"""Collective-to-flow expansion."""

import pytest

from repro.workloads.collectives import (
    direct_all_gather,
    flow_count,
    ps_pull,
    ps_push,
    ring_all_gather,
    ring_all_reduce,
    ring_reduce_scatter,
    total_bytes,
)

HOSTS = ["h0", "h1", "h2", "h3"]


class TestRingAllReduce:
    def test_step_and_flow_counts(self):
        steps = ring_all_reduce(HOSTS, 100.0)
        # 2(m-1) steps of m flows each.
        assert len(steps) == 6
        assert all(len(step) == 4 for step in steps)
        assert flow_count(steps) == 24

    def test_per_host_traffic_is_bandwidth_optimal(self):
        m = len(HOSTS)
        steps = ring_all_reduce(HOSTS, 100.0)
        sent = {}
        for step in steps:
            for flow in step:
                sent[flow.src] = sent.get(flow.src, 0.0) + flow.size
        expected = 2 * (m - 1) / m * 100.0
        for host in HOSTS:
            assert sent[host] == pytest.approx(expected)

    def test_neighbors_only(self):
        steps = ring_all_reduce(HOSTS, 100.0)
        for step in steps:
            for flow in step:
                src_index = HOSTS.index(flow.src)
                assert flow.dst == HOSTS[(src_index + 1) % len(HOSTS)]

    def test_group_tagging(self):
        steps = ring_all_reduce(HOSTS, 100.0, group_id="g", index_in_group=3)
        for step in steps:
            for flow in step:
                assert flow.group_id == "g"
                assert flow.index_in_group == 3

    def test_validation(self):
        with pytest.raises(ValueError):
            ring_all_reduce(["h0"], 100.0)
        with pytest.raises(ValueError):
            ring_all_reduce(HOSTS, 0.0)
        with pytest.raises(ValueError):
            ring_all_reduce(["h0", "h0"], 100.0)


class TestGatherScatter:
    def test_all_gather_steps(self):
        steps = ring_all_gather(HOSTS, 25.0)
        assert len(steps) == 3
        assert total_bytes(steps) == pytest.approx(3 * 4 * 25.0)

    def test_reduce_scatter_shards(self):
        steps = ring_reduce_scatter(HOSTS, 100.0)
        assert len(steps) == 3
        for step in steps:
            for flow in step:
                assert flow.size == pytest.approx(25.0)

    def test_direct_all_gather_full_mesh(self):
        steps = direct_all_gather(HOSTS, 10.0)
        assert len(steps) == 1
        assert len(steps[0]) == 12  # m(m-1)
        pairs = {(f.src, f.dst) for f in steps[0]}
        assert len(pairs) == 12


class TestParameterServer:
    def test_push_is_worker_to_server(self):
        steps = ps_push(HOSTS, "ps", 10.0)
        assert len(steps) == 1
        assert {f.src for f in steps[0]} == set(HOSTS)
        assert {f.dst for f in steps[0]} == {"ps"}

    def test_pull_is_server_to_worker(self):
        steps = ps_pull(HOSTS, "ps", 10.0)
        assert {f.src for f in steps[0]} == {"ps"}
        assert {f.dst for f in steps[0]} == set(HOSTS)

    def test_server_cannot_be_worker(self):
        with pytest.raises(ValueError):
            ps_push(HOSTS, "h0", 10.0)
        with pytest.raises(ValueError):
            ps_pull(HOSTS, "h0", 10.0)

    def test_size_validation(self):
        with pytest.raises(ValueError):
            ps_push(HOSTS, "ps", 0.0)
