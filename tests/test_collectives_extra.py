"""Tree, halving-doubling, and hierarchical all-reduce variants."""

import pytest

from repro.core.units import EPS
from repro.workloads.collectives import flow_count, total_bytes
from repro.workloads.collectives_extra import (
    ALLREDUCE_ALGORITHMS,
    all_reduce,
    halving_doubling_all_reduce,
    hierarchical_all_reduce,
    tree_all_reduce,
)

HOSTS8 = [f"h{i}" for i in range(8)]
HOSTS4 = HOSTS8[:4]


class TestTree:
    def test_step_count_is_2log2(self):
        steps = tree_all_reduce(HOSTS8, 100.0)
        assert len(steps) == 6  # 3 reduce + 3 broadcast levels

    def test_root_receives_and_sends_full_payload(self):
        steps = tree_all_reduce(HOSTS4, 100.0)
        for step in steps:
            for flow in step:
                assert flow.size == pytest.approx(100.0)

    def test_reduce_converges_to_root(self):
        steps = tree_all_reduce(HOSTS4, 100.0)
        # Last reduce step: one flow into hosts[0].
        reduce_last = steps[1]
        assert len(reduce_last) == 1
        assert reduce_last[0].dst == HOSTS4[0]

    def test_broadcast_mirrors_reduce(self):
        steps = tree_all_reduce(HOSTS4, 100.0)
        reduce_pairs = {(f.src, f.dst) for step in steps[:2] for f in step}
        bcast_pairs = {(f.dst, f.src) for step in steps[2:] for f in step}
        assert reduce_pairs == bcast_pairs

    def test_odd_host_count_works(self):
        steps = tree_all_reduce(HOSTS8[:5], 10.0)
        participants = {f.src for s in steps for f in s} | {
            f.dst for s in steps for f in s
        }
        assert participants == set(HOSTS8[:5])


class TestHalvingDoubling:
    def test_requires_power_of_two(self):
        with pytest.raises(ValueError):
            halving_doubling_all_reduce(HOSTS8[:6], 10.0)

    def test_step_count_is_2log2(self):
        steps = halving_doubling_all_reduce(HOSTS8, 128.0)
        assert len(steps) == 6

    def test_payloads_halve_then_double(self):
        steps = halving_doubling_all_reduce(HOSTS4, 128.0)
        sizes = [step[0].size for step in steps]
        assert sizes == [64.0, 32.0, 32.0, 64.0]

    def test_every_host_active_every_step(self):
        steps = halving_doubling_all_reduce(HOSTS4, 128.0)
        for step in steps:
            assert {f.src for f in step} == set(HOSTS4)

    def test_total_traffic_is_bandwidth_optimal(self):
        m = 8
        steps = halving_doubling_all_reduce(HOSTS8, 128.0)
        per_host = sum(
            f.size for step in steps for f in step if f.src == "h0"
        )
        assert per_host == pytest.approx(2 * (m - 1) / m * 128.0)


class TestHierarchical:
    GROUPS = [["h0", "h1"], ["h2", "h3"]]

    def test_phase_structure(self):
        steps = hierarchical_all_reduce(self.GROUPS, 100.0)
        # (g-1) rs + 2(G-1) cross + (g-1) ag = 1 + 2 + 1 = 4 steps.
        assert len(steps) == 4

    def test_cross_group_traffic_is_sharded(self):
        steps = hierarchical_all_reduce(self.GROUPS, 100.0)
        cross = [
            f
            for step in steps
            for f in step
            if ("xg" in f.tag)
        ]
        assert cross
        for flow in cross:
            assert flow.size == pytest.approx(50.0 / 2)  # shard/ring split

    def test_validation(self):
        with pytest.raises(ValueError):
            hierarchical_all_reduce([["h0", "h1"]], 10.0)
        with pytest.raises(ValueError):
            hierarchical_all_reduce([["h0", "h1"], ["h2"]], 10.0)
        with pytest.raises(ValueError):
            hierarchical_all_reduce([["h0", "h1"], ["h1", "h2"]], 10.0)
        with pytest.raises(ValueError):
            hierarchical_all_reduce(self.GROUPS, 0.0)


class TestDispatch:
    def test_known_algorithms(self):
        assert set(ALLREDUCE_ALGORITHMS) == {"ring", "tree", "halving-doubling"}
        steps = all_reduce("tree", HOSTS4, 10.0)
        assert steps

    def test_unknown_algorithm(self):
        with pytest.raises(KeyError):
            all_reduce("quantum", HOSTS4, 10.0)

    def test_ring_and_hd_move_equal_bytes(self):
        ring_steps = all_reduce("ring", HOSTS8, 128.0)
        hd_steps = all_reduce("halving-doubling", HOSTS8, 128.0)
        assert total_bytes(ring_steps) == pytest.approx(total_bytes(hd_steps))

    def test_dp_job_with_each_algorithm_completes(self):
        from repro import Engine, big_switch
        from repro.scheduling import EchelonMaddScheduler
        from repro.workloads import build_dp_allreduce, uniform_model

        model = uniform_model("u4", 4, 100.0, 10.0, 1.0)
        times = {}
        for algorithm in ALLREDUCE_ALGORITHMS:
            job = build_dp_allreduce(
                "j", model, HOSTS4, bucket_bytes=200.0, algorithm=algorithm
            )
            engine = Engine(big_switch(4, 50.0), EchelonMaddScheduler())
            job.submit_to(engine)
            times[algorithm] = engine.run().end_time
            assert engine.completed_jobs == ["j"]
        # The tree's root links carry full payloads: strictly worse than
        # the bandwidth-optimal algorithms on a non-blocking fabric.
        assert times["tree"] > times["ring"]
        assert times["halving-doubling"] == pytest.approx(times["ring"], rel=0.2)
