"""Device serialization semantics."""

import pytest

from repro.simulator.compute import Device
from repro.simulator.dag import Task, TaskKind


def _task(task_id, device="gpu0", duration=1.0, priority=0):
    return Task(
        task_id=task_id,
        kind=TaskKind.COMPUTE,
        device=device,
        duration=duration,
        priority=priority,
    )


def test_start_next_runs_one_task():
    device = Device("gpu0")
    device.enqueue(_task("a", duration=2.0))
    started = device.start_next(now=1.0)
    assert started is not None
    task, finish = started
    assert task.task_id == "a"
    assert finish == pytest.approx(3.0)
    # Busy: cannot start another.
    device.enqueue(_task("b"))
    assert device.start_next(now=1.0) is None


def test_priority_order_then_fifo():
    device = Device("gpu0")
    device.enqueue(_task("low", priority=5))
    device.enqueue(_task("high", priority=1))
    device.enqueue(_task("high2", priority=1))
    task, _ = device.start_next(0.0)
    assert task.task_id == "high"
    device.finish_current(1.0)
    task, _ = device.start_next(1.0)
    assert task.task_id == "high2"


def test_finish_current_requires_running():
    device = Device("gpu0")
    with pytest.raises(RuntimeError):
        device.finish_current(0.0)


def test_wrong_device_rejected():
    device = Device("gpu0")
    with pytest.raises(ValueError):
        device.enqueue(_task("a", device="gpu1"))


def test_busy_time_and_utilization():
    device = Device("gpu0")
    device.enqueue(_task("a", duration=3.0))
    device.start_next(0.0)
    device.finish_current(3.0)
    assert device.busy_time == pytest.approx(3.0)
    assert device.utilization(6.0) == pytest.approx(0.5)
    assert device.utilization(0.0) == 0.0


def test_idle_and_has_work_flags():
    device = Device("gpu0")
    assert device.idle and not device.has_work
    device.enqueue(_task("a"))
    assert device.has_work
    device.start_next(0.0)
    assert not device.idle and not device.has_work
