"""The fault-tolerant control plane: RPC channel, runtime, chaos suite.

Covers the ISSUE 10 acceptance surface: seeded lossy-RPC determinism,
passive-mode bit-identity against the direct in-process path, agent
quarantine/re-adoption, coordinator WAL-replay failover, degraded-mode
hysteresis, the control fault grammar's gating, and topology validation
of fault specs.
"""

import pytest

from repro.core import FlowIdAllocator, use_flow_id_allocator
from repro.faults import FaultSchedule, FaultSpecError
from repro.scheduling import make_scheduler
from repro.simulator.engine import Engine
from repro.simulator.trace import trace_digest
from repro.system import run_cluster
from repro.system.runtime import (
    ControlPlaneRuntime,
    RpcChannel,
    RpcSpec,
    RpcSpecError,
    build_chaos_scenarios,
    parse_rpc_spec,
    run_chaos_suite,
    run_control_cluster,
)
from repro.system.runtime.chaos import (
    _direct_baseline,
    _jobs,
    _run_scenario,
    _topology,
)
from repro.topology import big_switch


# ---------------------------------------------------------------------------
# the RPC channel
# ---------------------------------------------------------------------------


def test_rpc_spec_parsing():
    assert parse_rpc_spec("off").is_noop
    assert parse_rpc_spec(None).is_noop
    assert parse_rpc_spec("").is_noop
    spec = parse_rpc_spec("drop=0.2,delay=0.01,dup=0.05,retries=2,seed=7")
    assert spec.drop == 0.2 and spec.delay == 0.01 and spec.dup == 0.05
    assert spec.retries == 2 and spec.seed == 7
    assert not spec.is_noop
    # describe() round-trips through the parser.
    assert parse_rpc_spec(spec.describe()) == spec
    assert parse_rpc_spec("off").describe() == "off"
    # An explicit seed= parameter overrides the spec's own.
    assert parse_rpc_spec("drop=0.1,seed=3", seed=9).seed == 9
    assert parse_rpc_spec("drop=0.1", seed=9).seed == 9


def test_rpc_spec_rejects_bad_values():
    with pytest.raises(RpcSpecError):
        parse_rpc_spec("drop=1.0")  # would never deliver anything
    with pytest.raises(RpcSpecError):
        parse_rpc_spec("dup=1.5")
    with pytest.raises(RpcSpecError):
        parse_rpc_spec("delay=-0.1")
    with pytest.raises(RpcSpecError):
        parse_rpc_spec("retries=-1")
    with pytest.raises(RpcSpecError):
        parse_rpc_spec("bogus=1")
    with pytest.raises(RpcSpecError):
        parse_rpc_spec("drop")


def test_rpc_channel_is_deterministic_per_seed_and_message():
    spec = parse_rpc_spec("drop=0.3,delay=0.01,dup=0.1")
    a = RpcChannel(spec, seed=1)
    b = RpcChannel(spec, seed=1)
    verdicts_a = [a.transmit(f"msg{i}") for i in range(200)]
    verdicts_b = [b.transmit(f"msg{i}") for i in range(200)]
    assert verdicts_a == verdicts_b
    assert a.stats == b.stats
    # Fate depends only on (seed, msg_id), not on transmission order.
    c = RpcChannel(spec, seed=1)
    assert c.transmit("msg150") == verdicts_a[150]
    # A different seed draws a different trajectory.
    d = RpcChannel(spec, seed=2)
    assert [d.transmit(f"msg{i}") for i in range(200)] != verdicts_a


def test_rpc_identity_channel_delivers_everything():
    channel = RpcChannel(RpcSpec(), seed=0)
    for i in range(50):
        verdict = channel.transmit(f"m{i}")
        assert verdict.delivered and verdict.latency == 0.0
        assert not verdict.duplicated
    assert channel.stats["dropped"] == 0


def test_rpc_retries_accumulate_backoff():
    # drop=0.9: most first attempts fail, so retries (distinct msg ids)
    # must kick in and each failed attempt must cost timeout+backoff.
    spec = parse_rpc_spec("drop=0.9,timeout=0.1,backoff=0.01,retries=4")
    channel = RpcChannel(spec, seed=3)
    delivered = retried = 0
    for i in range(100):
        verdict = channel.send_with_retries(f"req{i}")
        if verdict.delivered:
            delivered += 1
            if verdict.latency >= channel.attempt_cost(0):
                retried += 1
    assert delivered > 30  # 5 attempts at 10% each ~ 41%
    assert retried > 0


# ---------------------------------------------------------------------------
# passive mode: bit-identity with the direct path
# ---------------------------------------------------------------------------


def test_passive_runtime_is_bit_identical_to_direct_path():
    with use_flow_id_allocator(FlowIdAllocator()):
        direct = run_cluster(_topology(), _jobs())
    with use_flow_id_allocator(FlowIdAllocator()):
        runtime = run_control_cluster(_topology(), _jobs())
    assert runtime.runtime.report()["mode"] == "passive"
    assert trace_digest(runtime.trace) == trace_digest(direct.trace)
    assert runtime.job_completion_times() == direct.job_completion_times()


def test_trace_digest_tracks_content():
    with use_flow_id_allocator(FlowIdAllocator()):
        run = run_cluster(_topology(), _jobs())
    digest = trace_digest(run.trace)
    assert digest == trace_digest(run.trace)
    run.trace.end_time += 1.0
    assert trace_digest(run.trace) != digest


# ---------------------------------------------------------------------------
# active mode: faults, quarantine, failover, degradation
# ---------------------------------------------------------------------------


@pytest.fixture(scope="module")
def baseline():
    jcts, digest = _direct_baseline()
    return jcts, digest, max(jcts.values())


def _scenario_run(name, makespan, seed=0):
    scenario = build_chaos_scenarios(makespan, [name])[0]
    return _run_scenario(scenario, seed, makespan)


def test_crash_agent_quarantines_and_readopts(baseline):
    jcts, _, makespan = baseline
    run = _scenario_run("crash_agent", makespan)
    report = run.runtime.report()
    assert report["mode"] == "active"
    assert report["quarantines"] >= 1
    assert report["readoptions"] >= 1
    assert not report["quarantined"]  # re-adopted by run end
    assert sorted(run.engine.completed_jobs) == sorted(jcts)


def test_crash_coordinator_fails_over_via_wal(baseline):
    jcts, _, makespan = baseline
    run = _scenario_run("crash_coordinator", makespan)
    report = run.runtime.report()
    assert report["failovers"] == 1
    assert report["epoch"] == 1
    assert report["recovered_groups"] + report["replayed_requests"] > 0
    assert sorted(run.engine.completed_jobs) == sorted(jcts)
    kinds = [record["kind"] for record in run.runtime.control_log]
    assert "failover" in kinds and "checkpoint" in kinds


def test_partition_enters_and_exits_degraded_mode(baseline):
    jcts, _, makespan = baseline
    run = _scenario_run("partition_control", makespan)
    report = run.runtime.report()
    assert report["degraded_enters"] >= 1
    assert report["degraded_rounds"] >= 1
    assert report["degraded_exits"] >= report["degraded_enters"] - 1
    assert report["state"] == "coordinated"  # healed by run end
    assert sorted(run.engine.completed_jobs) == sorted(jcts)


def test_lossy_channel_run_is_deterministic(baseline):
    _, _, makespan = baseline
    first = _scenario_run("lossy_channel", makespan, seed=5)
    second = _scenario_run("lossy_channel", makespan, seed=5)
    assert trace_digest(first.trace) == trace_digest(second.trace)
    assert first.runtime.report() == second.runtime.report()
    other_seed = _scenario_run("lossy_channel", makespan, seed=6)
    assert (
        other_seed.runtime.channel.stats != first.runtime.channel.stats
        or trace_digest(other_seed.trace) != trace_digest(first.trace)
    )


def test_chaos_suite_smoke_passes():
    report = run_chaos_suite(names=["baseline", "rpc_noise"], sanitizer=False)
    assert report["ok"]
    rows = {row["scenario"]: row for row in report["scenarios"]}
    assert rows["baseline"]["bit_identical"]
    assert rows["rpc_noise"]["mode"] == "active"
    for row in rows.values():
        assert row["all_jobs_completed"]
        assert row["deterministic"]
        assert row["max_inflation"] <= report["inflation_bound"]


# ---------------------------------------------------------------------------
# the control fault grammar and its gating
# ---------------------------------------------------------------------------


def test_control_grammar_parses_and_gates():
    schedule = FaultSchedule.parse(
        "crash_agent@0.1+0.2,agent=job-a; crash_coordinator@0.3+0.1;"
        " partition_control@0.5+0.1; rpc_noise@0.7+0.1,drop=0.5"
    )
    assert schedule.has_control_faults
    actions = [event.action for event in schedule.events]
    assert actions.count("agent_restore") == 1
    assert actions.count("coordinator_restore") == 1
    assert actions.count("partition_heal") == 1
    assert actions.count("rpc_restore") == 1


def test_control_faults_require_a_control_plane():
    schedule = FaultSchedule.parse("crash_coordinator@0.1+0.05")
    with pytest.raises(ValueError, match="control"):
        Engine(big_switch(2, 1.0), make_scheduler("fair"), faults=schedule)


def test_crash_agent_requires_agent_target():
    with pytest.raises(FaultSpecError):
        FaultSchedule.parse("crash_agent@0.1+0.2")
    with pytest.raises(FaultSpecError):
        FaultSchedule.parse("crash_coordinator@0.1,agent=job-a")
    with pytest.raises(FaultSpecError):
        FaultSchedule.parse("rpc_noise@0.1,drop=2.0")


def test_unknown_agent_target_raises_at_fire_time(baseline):
    _, _, makespan = baseline
    runtime = ControlPlaneRuntime(lease=0.05 * makespan, heartbeat=0.01 * makespan)
    with use_flow_id_allocator(FlowIdAllocator()):
        with pytest.raises(ValueError, match="job-nope"):
            run_control_cluster(
                _topology(),
                _jobs(),
                runtime=runtime,
                faults="crash_agent@0.001+0.01,agent=job-nope",
            )


# ---------------------------------------------------------------------------
# fault-spec topology validation
# ---------------------------------------------------------------------------


def test_validate_links_names_the_bad_link():
    schedule = FaultSchedule.parse("link_down:h0-h9@0.1+0.1")
    topology = big_switch(4, 1.0)
    with pytest.raises(FaultSpecError, match="h0->h9"):
        schedule.validate_links(topology)
    FaultSchedule.parse("link_down:h0-core@0.1+0.1").validate_links(topology)
    # Control-plane clauses carry no links, so they always validate.
    FaultSchedule.parse("crash_coordinator@0.1+0.1").validate_links(topology)


def test_run_spec_validates_fault_links(tmp_path):
    from repro.workloads import run_spec_file

    spec = tmp_path / "bad.json"
    spec.write_text(
        '{"topology": {"kind": "big_switch", "hosts": 4},'
        ' "jobs": [{"job_id": "j", "paradigm": "dp", "workers": 2,'
        ' "model": {"layers": 2, "param_mb": 1}}],'
        ' "faults": "link_down:h0-h99@0.1+0.1"}'
    )
    with pytest.raises(FaultSpecError, match="h0->h99"):
        run_spec_file(str(spec))


def test_cli_rejects_bad_fault_link():
    from repro.cli import main

    assert (
        main(
            [
                "run",
                "--workers",
                "2",
                "--faults",
                "link_down:h0-h9@0.01+0.01",
            ]
        )
        == 2
    )


def test_cli_rejects_unknown_chaos_scenario():
    from repro.cli import main

    assert main(["system", "chaos", "--scenario", "nope"]) == 2
