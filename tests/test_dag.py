"""Task DAG construction and validation."""

import pytest

from repro.core.flow import Flow
from repro.simulator.dag import Task, TaskDag, TaskKind


def _flow():
    return Flow("h0", "h1", 1.0)


class TestConstruction:
    def test_add_compute(self):
        dag = TaskDag("job")
        task = dag.add_compute("c0", device="h0", duration=2.0)
        assert task.kind is TaskKind.COMPUTE
        assert dag.task("c0").duration == 2.0

    def test_add_comm_needs_flows(self):
        dag = TaskDag("job")
        with pytest.raises(ValueError):
            dag.add_comm("x", [])

    def test_compute_needs_device(self):
        with pytest.raises(ValueError):
            Task(task_id="t", kind=TaskKind.COMPUTE, device=None)

    def test_negative_duration_rejected(self):
        dag = TaskDag("job")
        with pytest.raises(ValueError):
            dag.add_compute("c0", device="h0", duration=-1.0)

    def test_barrier_cannot_carry_payload(self):
        with pytest.raises(ValueError):
            Task(task_id="b", kind=TaskKind.BARRIER, device="h0")
        with pytest.raises(ValueError):
            Task(task_id="b", kind=TaskKind.BARRIER, flows=(_flow(),))

    def test_duplicate_task_rejected(self):
        dag = TaskDag("job")
        dag.add_barrier("b")
        with pytest.raises(ValueError):
            dag.add_barrier("b")

    def test_unknown_dependency_rejected(self):
        dag = TaskDag("job")
        with pytest.raises(KeyError):
            dag.add_barrier("b", deps=["ghost"])


class TestQueries:
    def _diamond(self):
        dag = TaskDag("job")
        dag.add_compute("a", device="h0", duration=1.0)
        dag.add_compute("b", device="h0", duration=2.0, deps=["a"])
        dag.add_comm("c", [_flow()], deps=["a"])
        dag.add_barrier("d", deps=["b", "c"])
        return dag

    def test_roots_and_successors(self):
        dag = self._diamond()
        assert dag.roots() == ["a"]
        assert sorted(dag.successors("a")) == ["b", "c"]
        assert dag.successors("d") == []

    def test_topological_order(self):
        dag = self._diamond()
        order = dag.topological_order()
        assert order.index("a") < order.index("b") < order.index("d")
        assert order.index("c") < order.index("d")
        assert len(order) == 4

    def test_contains_and_len(self):
        dag = self._diamond()
        assert "a" in dag
        assert "ghost" not in dag
        assert len(dag) == 4

    def test_devices_and_flows(self):
        dag = self._diamond()
        assert dag.devices() == ["h0"]
        assert len(dag.all_flows()) == 1

    def test_critical_path_ignores_comm(self):
        dag = self._diamond()
        # a(1) -> b(2) -> d(0): length 3; comm contributes 0.
        assert dag.critical_path_length() == pytest.approx(3.0)

    def test_empty_dag(self):
        dag = TaskDag("job")
        assert dag.roots() == []
        assert dag.topological_order() == []
        assert dag.critical_path_length() == 0.0
