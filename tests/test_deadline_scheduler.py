"""Per-flow EDF baseline, and what group structure buys over it."""

import pytest

from repro import Engine, big_switch
from repro.core.arrangement import CoflowArrangement
from repro.core.echelonflow import EchelonFlow
from repro.core.flow import Flow
from repro.scheduling import EchelonMaddScheduler, EdfFlowScheduler
from repro.simulator import TaskDag
from repro.topology import two_hosts


def test_orders_strictly_by_ideal_finish():
    from repro.scheduling.base import SchedulerView
    from repro.simulator.network import NetworkModel
    from repro.topology import ShortestPathRouter

    topo = two_hosts(1.0)
    network = NetworkModel(topo, ShortestPathRouter(topo))
    late = Flow("h0", "h1", 1.0)
    soon = Flow("h0", "h1", 1.0)
    s_late = network.inject(late, 0.0)
    s_soon = network.inject(soon, 0.0)
    s_late.ideal_finish_time = 10.0
    s_soon.ideal_finish_time = 1.0
    view = SchedulerView(now=0.0, network=network)
    rates = EdfFlowScheduler().allocate(view)
    assert rates[soon.flow_id] == pytest.approx(1.0)
    assert rates[late.flow_id] == pytest.approx(0.0)


def test_ungrouped_flows_default_to_start_time():
    from repro.scheduling.base import SchedulerView
    from repro.simulator.network import NetworkModel
    from repro.topology import ShortestPathRouter

    topo = two_hosts(1.0)
    network = NetworkModel(topo, ShortestPathRouter(topo))
    first = Flow("h0", "h1", 5.0)
    second = Flow("h0", "h1", 5.0)
    network.inject(first, 0.0)
    network.inject(second, 1.0)
    view = SchedulerView(now=1.0, network=network)
    rates = EdfFlowScheduler().allocate(view)
    assert rates[first.flow_id] == pytest.approx(1.0)


def test_stage_pacing_beats_per_flow_edf_under_contention():
    """The MADD grouping ablation: a coflow whose completion is pinned by
    a big flow on one port should *pace* its small flow on another port,
    freeing that port for an urgent competitor. Per-flow EDF cannot: the
    coflow's earlier deadline makes the small flow hog the port."""

    def run(scheduler_cls):
        engine = Engine(big_switch(4, 1.0), scheduler_cls())
        # Coflow A: bottlenecked on h0->h1 (size 10); side flow h2->h3 (2).
        ef = EchelonFlow("A", CoflowArrangement(), job_id="A")
        big = Flow("h0", "h1", 10.0, group_id="A", job_id="A")
        small = Flow("h2", "h3", 2.0, group_id="A", job_id="A")
        ef.add_flow(big)
        ef.add_flow(small)
        dag_a = TaskDag("A")
        dag_a.add_comm("x", [big, small])
        engine.submit(dag_a, echelonflows=(ef,))
        # Urgent competitor B on the same side port, arriving just after.
        ef_b = EchelonFlow("B", CoflowArrangement(), job_id="B")
        b_flow = Flow("h2", "h3", 2.0, group_id="B", job_id="B")
        ef_b.add_flow(b_flow)
        dag_b = TaskDag("B")
        dag_b.add_comm("y", [b_flow])
        engine.submit(dag_b, at_time=0.1, echelonflows=(ef_b,))
        trace = engine.run()
        finishes = {r.flow.group_id: r.finish for r in trace.flow_records
                    if r.flow.flow_id in (b_flow.flow_id, big.flow_id)}
        return finishes["A"], finishes["B"]

    echelon_a, echelon_b = run(EchelonMaddScheduler)
    edf_a, edf_b = run(EdfFlowScheduler)
    # A's completion (the big flow) is identical either way ...
    assert echelon_a == pytest.approx(edf_a)
    # ... but pacing lets B finish much sooner under echelon.
    assert echelon_b < edf_b - 0.5


def test_single_job_workloads_match_echelon():
    """Without cross-group contention the structures coincide."""
    from repro.core.units import gbps, megabytes
    from repro.workloads import build_fsdp, uniform_model

    model = uniform_model(
        "u8",
        8,
        param_bytes_per_layer=megabytes(40),
        activation_bytes=megabytes(20),
        forward_time=0.004,
    )
    results = {}
    for scheduler_cls in (EdfFlowScheduler, EchelonMaddScheduler):
        job = build_fsdp("j", model, ["h0", "h1", "h2", "h3"])
        engine = Engine(big_switch(4, gbps(10)), scheduler_cls())
        job.submit_to(engine)
        results[scheduler_cls.name] = engine.run().last_compute_end()
    assert results["edf-flow"] == pytest.approx(results["echelon"], rel=1e-6)


def test_registered():
    from repro.scheduling import make_scheduler

    assert isinstance(make_scheduler("edf-flow"), EdfFlowScheduler)
