"""The diagnosis layer: rate recording, artifacts, attribution, diffing.

The centerpiece is the exact-sum property (Eq. 1 decomposition): for
every delivered flow with rate data,

    tardiness == upstream + sum(contention) + residual

with each component computed independently from the recorded rate
segments -- the test sweeps paradigms x schedulers so the identity is
checked against real multi-hop, multi-group runs, not just Fig. 2.
"""

import json

import pytest

from repro.core.units import gbps, megabytes
from repro.obs import Instrumentation, JsonlEventLog
from repro.obs.diagnosis import (
    RunArtifacts,
    attribute_run,
    blame_matrix,
    bottleneck_of,
    critical_path,
    diagnose,
    diff_runs,
    overlap_integral,
    render_diagnosis,
    render_diff,
)
from repro.obs.instrumentation import FlowRateRecorder
from repro.scheduling import make_scheduler
from repro.simulator import Engine
from repro.topology import leaf_spine, linear_chain, two_hosts
from repro.workloads import (
    build_dp_allreduce,
    build_fsdp,
    build_pipeline_segment,
    build_pp_gpipe,
    uniform_model,
)

_MODEL = uniform_model(
    "u8",
    8,
    param_bytes_per_layer=megabytes(30),
    activation_bytes=megabytes(15),
    forward_time=0.004,
)


def _run_fig2(scheduler_name, **obs_kwargs):
    obs = Instrumentation(event_log=JsonlEventLog(), **obs_kwargs)
    engine = Engine(
        two_hosts(1.0), make_scheduler(scheduler_name), instrumentation=obs
    )
    job = build_pipeline_segment(
        "fig2", "h0", "h1", [0.0, 1.0, 2.0], [2.0] * 3, [2.0] * 3
    )
    job.submit_to(engine)
    trace = engine.run()
    return trace, obs


def _paradigm_engine(paradigm, scheduler_name, obs):
    hosts = ["h0", "h1", "h2", "h3"]
    if paradigm == "pp":
        engine = Engine(
            linear_chain(4, gbps(10)),
            make_scheduler(scheduler_name),
            instrumentation=obs,
        )
        job = build_pp_gpipe("pp", _MODEL, hosts, num_micro_batches=4)
    else:
        topology = leaf_spine(
            n_leaves=2,
            hosts_per_leaf=2,
            host_bandwidth=gbps(10),
            oversubscription=2.0,
        )
        engine = Engine(
            topology, make_scheduler(scheduler_name), instrumentation=obs
        )
        if paradigm == "dp":
            job = build_dp_allreduce(
                "dp", _MODEL, hosts, bucket_bytes=megabytes(60)
            )
        else:
            job = build_fsdp("fsdp", _MODEL, hosts)
    job.submit_to(engine)
    return engine


# ----------------------------------------------------------------------
# FlowRateRecorder
# ----------------------------------------------------------------------


class TestFlowRateRecorder:
    def test_coalesces_equal_rates_and_skips_zero(self):
        rec = FlowRateRecorder()
        rec.on_admitted(1, (("a->b", 1.0),), 0.0)
        rec.on_rate_change(1, 0.0, 1.0)
        rec.on_rate_change(1, 1.0, 1.0)  # no-op change: must coalesce
        rec.on_rate_change(1, 2.0, 0.0)  # throttled to zero
        rec.on_rate_change(1, 3.0, 0.5)
        segments = rec.on_finished(1, 4.0)
        assert segments == [[0.0, 2.0, 1.0], [3.0, 4.0, 0.5]]
        assert rec.rates_of(1) == segments
        assert rec.paths[1] == (("a->b", 1.0),)

    def test_unknown_flow_rate_change_is_ignored(self):
        rec = FlowRateRecorder()
        rec.on_rate_change(99, 0.0, 1.0)
        assert rec.on_finished(99, 1.0) is None
        assert rec.segments == {}

    def test_evicts_oldest_finished_first(self):
        rec = FlowRateRecorder(capacity=1)
        for flow_id in (1, 2):
            rec.on_admitted(flow_id, (), 0.0)
            rec.on_rate_change(flow_id, 0.0, 1.0)
        rec.on_finished(1, 1.0)
        assert rec.total_segments == 1 and rec.evicted_flows == 0
        # Finishing flow 2 pushes the total over capacity: flow 1 (the
        # oldest finished) is evicted, flow 2 survives.
        rec.on_finished(2, 1.0)
        assert rec.evicted_flows == 1
        assert 1 not in rec.segments and 1 not in rec.paths
        assert rec.rates_of(2) == [[0.0, 1.0, 1.0]]

    def test_in_flight_flows_are_never_evicted(self):
        rec = FlowRateRecorder(capacity=1)
        rec.on_admitted(1, (), 0.0)
        rec.on_rate_change(1, 0.0, 1.0)
        rec.on_rate_change(1, 1.0, 2.0)
        rec.on_rate_change(1, 2.0, 3.0)  # 2 closed segments > capacity
        assert rec.total_segments == 2
        assert 1 in rec.segments  # still open: not evictable
        # on_finished returns the full history even when the flow is
        # immediately evicted to honor the capacity bound.
        segments = rec.on_finished(1, 3.0)
        assert segments == [[0.0, 1.0, 1.0], [1.0, 2.0, 2.0], [2.0, 3.0, 3.0]]
        assert rec.evicted_flows == 1 and rec.total_segments == 0

    def test_rejects_nonpositive_capacity(self):
        with pytest.raises(ValueError):
            FlowRateRecorder(capacity=0)


# ----------------------------------------------------------------------
# artifacts: events round-trips the in-memory view
# ----------------------------------------------------------------------


class TestRunArtifacts:
    def test_from_events_matches_from_run(self):
        trace, obs = _run_fig2("fair")
        from_run = RunArtifacts.from_run(trace, obs)
        from_events = RunArtifacts.from_events(obs.event_log.events)
        assert len(from_events.flows) == len(from_run.flows) == 3
        for flow_id, fact in from_run.flows.items():
            other = from_events.flows[flow_id]
            assert other.structural_key == fact.structural_key
            assert other.start == fact.start
            assert other.finish == fact.finish
            assert other.ideal_finish == fact.ideal_finish
            assert other.path == fact.path
            assert other.segments == fact.segments
        assert set(from_events.tasks) == set(from_run.tasks)
        for key, task in from_run.tasks.items():
            other = from_events.tasks[key]
            assert other.deps == task.deps
            assert other.device == task.device
            assert other.duration == pytest.approx(task.duration)
        assert from_events.job_completions == from_run.job_completions
        assert from_events.end_time == from_run.end_time

    def test_from_jsonl(self, tmp_path):
        _, obs = _run_fig2("fair")
        path = tmp_path / "events.jsonl"
        obs.event_log.write(str(path))
        artifacts = RunArtifacts.from_jsonl(str(path))
        assert artifacts.source == str(path)
        assert len(artifacts.delivered_flows()) == 3
        assert artifacts.jobs() == ["fig2"]
        assert artifacts.job_completion("fig2") == pytest.approx(9.5)

    def test_flows_on_link(self):
        trace, obs = _run_fig2("fair")
        artifacts = RunArtifacts.from_run(trace, obs)
        on_link = artifacts.flows_on_link()
        assert set(on_link) == {"h0->h1"}
        assert len(on_link["h0->h1"]) == 3


# ----------------------------------------------------------------------
# attribution: the exact-sum property
# ----------------------------------------------------------------------


class TestAttribution:
    def test_overlap_integral_clips_to_window(self):
        segments = [[0.0, 2.0, 1.0], [2.0, 4.0, 0.5]]
        assert overlap_integral(segments, 0.0, 4.0) == pytest.approx(3.0)
        assert overlap_integral(segments, 1.0, 3.0) == pytest.approx(1.5)
        assert overlap_integral(segments, 5.0, 6.0) == 0.0

    def test_fig2_fair_known_decomposition(self):
        trace, obs = _run_fig2("fair")
        artifacts = RunArtifacts.from_run(trace, obs)
        by_stage = {
            a.stage: a for a in attribute_run(artifacts)["flows"]
        }
        mb0 = by_stage["act mb0"]
        # Fair sharing: mb0 finishes at 3.5 against deadline 0 -> T=3.5,
        # of which 2.0 is the size/C ideal duration past the deadline
        # (upstream) and 1.5 is bandwidth taken by mb1/mb2.
        assert mb0.tardiness == pytest.approx(3.5)
        assert mb0.upstream == pytest.approx(2.0)
        assert mb0.contention == pytest.approx(
            {"act mb1": 1.0, "act mb2": 0.5}
        )
        assert mb0.residual == pytest.approx(0.0)
        assert mb0.bottleneck == "h0->h1"
        assert mb0.bottleneck_capacity == pytest.approx(1.0)

    @pytest.mark.parametrize("scheduler", ["fair", "coflow", "echelon"])
    @pytest.mark.parametrize("paradigm", ["dp", "pp", "fsdp"])
    def test_components_sum_exactly(self, paradigm, scheduler):
        obs = Instrumentation()
        engine = _paradigm_engine(paradigm, scheduler, obs)
        trace = engine.run()
        artifacts = RunArtifacts.from_run(trace, obs)
        attributions = attribute_run(artifacts)["flows"]
        assert attributions
        explained = [a for a in attributions if a.explained is not None]
        assert explained, "rate recording must cover the run"
        for attr in explained:
            assert attr.explained == pytest.approx(
                attr.tardiness, abs=1e-6
            ), f"decomposition not exact for {attr.stage}"

    def test_straggler_defines_group_tardiness(self):
        trace, obs = _run_fig2("coflow")
        artifacts = RunArtifacts.from_run(trace, obs)
        result = attribute_run(artifacts)
        group = result["echelonflows"]["fig2/ef"]
        assert group["members"] == 3
        # Coflow finishes everything together at t=6: the head micro-
        # batch (deadline 0) is the Eq. 2 straggler at tardiness 6.
        assert group["straggler"] == "act mb0"
        assert group["tardiness"] == pytest.approx(6.0)
        worst = max(a.tardiness for a in result["flows"])
        assert group["tardiness"] == pytest.approx(worst)

    def test_degrades_without_rate_recording(self):
        trace, obs = _run_fig2("fair", record_rates=False)
        artifacts = RunArtifacts.from_run(trace, obs)
        result = attribute_run(artifacts)
        assert result["coverage"]["with_rate_data"] == 0
        for attr in result["flows"]:
            assert attr.tardiness is not None  # Eq. 1 still available
            assert attr.residual is None

    def test_eviction_reported_in_coverage(self):
        trace, obs = _run_fig2("fair", rate_capacity=1)
        artifacts = RunArtifacts.from_run(trace, obs)
        result = attribute_run(artifacts)
        assert result["coverage"]["evicted_flows"] > 0
        assert result["coverage"]["with_rate_data"] < 3


# ----------------------------------------------------------------------
# critical path
# ----------------------------------------------------------------------


class TestCriticalPath:
    def test_fig2_fair_path(self):
        trace, obs = _run_fig2("fair")
        artifacts = RunArtifacts.from_run(trace, obs)
        path = critical_path(artifacts, "fig2")
        assert path["available"]
        assert path["jct"] == pytest.approx(9.5)
        ids = [node["id"] for node in path["nodes"]]
        # The chain that determined the JCT: release, the head transfer,
        # then the serialized consume tasks.
        assert ids == ["rel0", "xfer0", "cons0", "cons1", "cons2"]
        comm = path["nodes"][1]
        assert comm["kind"] == "comm"
        assert comm["straggler_flow"] == "act mb0"
        assert path["total_duration"] + path["total_wait"] == pytest.approx(
            path["jct"]
        )
        for node in path["nodes"]:
            assert node["wait"] >= 0.0

    def test_unavailable_without_task_metadata(self):
        trace, _ = _run_fig2("fair")
        artifacts = RunArtifacts.from_run(trace)  # no instrumentation
        path = critical_path(artifacts, "fig2")
        assert path["available"] is False
        assert "reason" in path


# ----------------------------------------------------------------------
# blame + diagnose + render
# ----------------------------------------------------------------------


class TestBlameAndReport:
    def test_blame_mass_matches_contention(self):
        trace, obs = _run_fig2("fair")
        artifacts = RunArtifacts.from_run(trace, obs)
        attributions = attribute_run(artifacts)["flows"]
        blame = blame_matrix(attributions)
        total_blame = sum(
            seconds
            for victims in blame["aggregate"].values()
            for seconds in victims.values()
        )
        total_contention = sum(a.contention_total for a in attributions)
        assert total_blame == pytest.approx(total_contention)
        assert blame["links"]["h0->h1"]
        assert blame["worst"][0]["seconds"] > 0

    def test_diagnose_report_is_json_clean(self):
        trace, obs = _run_fig2("coflow")
        artifacts = RunArtifacts.from_run(trace, obs)
        report = json.loads(json.dumps(diagnose(artifacts), default=str))
        assert report["version"] == 1
        assert report["run"]["jobs"] == ["fig2"]
        assert report["critical_paths"]["fig2"]["available"]
        assert report["attribution"]["flows"]
        assert report["attribution"]["coverage"]["with_rate_data"] == 3
        text = render_diagnosis(report)
        assert "critical path [fig2]" in text
        assert "act mb0" in text

    def test_bottleneck_of_prefers_min_capacity(self):
        trace, obs = _run_fig2("fair")
        artifacts = RunArtifacts.from_run(trace, obs)
        flow = artifacts.delivered_flows()[0]
        assert bottleneck_of(flow) == ("h0->h1", 1.0)


# ----------------------------------------------------------------------
# run-diff: the automated Fig. 2 diagnosis
# ----------------------------------------------------------------------


class TestDiff:
    def test_diff_against_self_is_zero(self):
        trace, obs = _run_fig2("fair")
        artifacts = RunArtifacts.from_run(trace, obs)
        report = diff_runs(artifacts, artifacts)
        assert report["jobs"]["fig2"]["delta"] == 0.0
        assert report["jobs"]["fig2"]["winner"] == "tie"
        assert all(row["delta"] == 0.0 for row in report["stages"])
        assert report["links"] == {}
        assert report["flows"] == {"matched": 3, "only_a": 0, "only_b": 0}

    def test_fig2_coflow_vs_fair_attributes_the_loss(self):
        """Acceptance criterion: diffing fair (A) against Coflow (B) must
        report fair sharing winning and attribute Coflow's JCT loss to
        the later micro-batch flows serializing the head transfer."""
        fair_trace, fair_obs = _run_fig2("fair")
        coflow_trace, coflow_obs = _run_fig2("coflow")
        fair = RunArtifacts.from_run(fair_trace, fair_obs)
        coflow = RunArtifacts.from_run(coflow_trace, coflow_obs)
        report = diff_runs(fair, coflow)

        job = report["jobs"]["fig2"]
        assert job["jct_a"] == pytest.approx(9.5)
        assert job["jct_b"] == pytest.approx(12.0)
        assert job["delta"] == pytest.approx(2.5)
        assert job["winner"] == "a"
        assert report["verdict"]["jobs_faster_in_a"] == 1

        head = next(r for r in report["stages"] if r["stage"] == "act mb0")
        assert head["delta"] == pytest.approx(2.5)
        # Not injected later -- the whole loss is in-network stretch ...
        assert head["start_delta"] == pytest.approx(0.0)
        assert head["stretch_delta"] == pytest.approx(2.5)
        assert head["residual_delta"] == pytest.approx(0.0)
        # ... and the stretch is bandwidth handed to the later
        # micro-batches (Coflow lets mb1/mb2 run alongside the head
        # flow instead of letting it out early).
        assert head["contention_delta"]["act mb1"] == pytest.approx(1.0)
        assert head["contention_delta"]["act mb2"] == pytest.approx(1.5)
        assert head["contention_delta_total"] == pytest.approx(2.5)
        assert head["bottleneck"] == "h0->h1"

        # The group's *last* member lands at t=6 either way -- the whole
        # difference is when the head flow gets out, which only the
        # per-stage view (above) can see. That is the Fig. 2 lesson.
        assert report["groups"]["fig2/ef"]["delta"] == pytest.approx(0.0)
        text = render_diff(report)
        assert "act mb0" in text and "winner" in text

    def test_diff_from_saved_logs(self, tmp_path):
        """The CLI path: diagnosis runs purely from recorded artifacts."""
        for name in ("fair", "coflow"):
            _, obs = _run_fig2(name)
            obs.event_log.write(str(tmp_path / f"{name}.jsonl"))
        report = diff_runs(
            RunArtifacts.from_jsonl(str(tmp_path / "fair.jsonl")),
            RunArtifacts.from_jsonl(str(tmp_path / "coflow.jsonl")),
        )
        assert report["jobs"]["fig2"]["delta"] == pytest.approx(2.5)
        head = next(r for r in report["stages"] if r["stage"] == "act mb0")
        assert head["contention_delta"]["act mb2"] == pytest.approx(1.5)
