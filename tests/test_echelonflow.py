"""EchelonFlow (Def. 3.1): reference time, ideal finish times, tardiness."""

import pytest

from repro.core.arrangement import CoflowArrangement, StaggeredArrangement
from repro.core.echelonflow import EchelonFlow, make_coflow, total_tardiness
from repro.core.flow import Flow


def _staggered_ef(n=3, distance=2.0):
    ef = EchelonFlow("ef", StaggeredArrangement(distance=distance))
    flows = [
        Flow("h0", "h1", 1.0, group_id="ef", index_in_group=j) for j in range(n)
    ]
    for flow in flows:
        ef.add_flow(flow)
    return ef, flows


def test_reference_time_pins_on_head_flow():
    ef, flows = _staggered_ef()
    ef.observe_flow_start(flows[1], 5.0)  # not the head: no effect
    assert ef.reference_time is None
    ef.observe_flow_start(flows[0], 7.0)
    assert ef.reference_time == 7.0


def test_reference_cannot_be_pinned_twice():
    ef, flows = _staggered_ef()
    ef.set_reference_time(1.0)
    with pytest.raises(RuntimeError):
        ef.set_reference_time(2.0)


def test_ideal_finish_times_follow_arrangement():
    ef, flows = _staggered_ef(distance=2.0)
    ef.set_reference_time(3.0)
    assert ef.ideal_finish_time_of(flows[0]) == 3.0
    assert ef.ideal_finish_time_of(flows[1]) == 5.0
    assert ef.ideal_finish_time_of(flows[2]) == 7.0


def test_ideal_finish_before_reference_raises():
    ef, flows = _staggered_ef()
    with pytest.raises(RuntimeError):
        ef.ideal_finish_time_of(flows[0])


def test_recalibration_late_flows_get_past_deadlines():
    """Fig. 6b: a late flow's ideal finish may precede its own start."""
    ef, flows = _staggered_ef(distance=1.0)
    ef.set_reference_time(0.0)
    # Flow 2 starts at t=10, but its ideal finish time is still r + 2.
    assert ef.ideal_finish_time_of(flows[2]) == 2.0


def test_tardiness_is_max_over_flows():
    ef, flows = _staggered_ef(distance=2.0)
    ef.set_reference_time(0.0)  # ideals: 0, 2, 4
    finishes = {flows[0].flow_id: 1.0, flows[1].flow_id: 2.5, flows[2].flow_id: 4.2}
    # tardiness: 1.0, 0.5, 0.2 -> max = 1.0
    assert ef.tardiness(finishes) == pytest.approx(1.0)


def test_tardiness_can_be_negative():
    ef, flows = _staggered_ef(distance=2.0)
    ef.set_reference_time(0.0)
    finishes = {f.flow_id: ef.ideal_finish_time_of(f) - 0.5 for f in flows}
    assert ef.tardiness(finishes) == pytest.approx(-0.5)


def test_tardiness_missing_flow_raises():
    ef, flows = _staggered_ef()
    ef.set_reference_time(0.0)
    with pytest.raises(KeyError):
        ef.tardiness({flows[0].flow_id: 1.0})


def test_tardiness_on_empty_ef_raises():
    ef = EchelonFlow("empty", CoflowArrangement())
    ef.set_reference_time(0.0)
    with pytest.raises(ValueError):
        ef.tardiness({})


def test_flows_sharing_an_index_share_ideal_finish():
    """Flows at the same arrangement index form an intra-EF Coflow."""
    ef = EchelonFlow("ef", StaggeredArrangement(distance=3.0))
    a = Flow("h0", "h1", 1.0, group_id="ef", index_in_group=1)
    b = Flow("h1", "h0", 1.0, group_id="ef", index_in_group=1)
    ef.add_flow(a)
    ef.add_flow(b)
    ef.set_reference_time(10.0)
    assert ef.ideal_finish_time_of(a) == ef.ideal_finish_time_of(b) == 13.0


def test_add_flow_rejects_foreign_group():
    ef = EchelonFlow("ef", CoflowArrangement())
    foreign = Flow("h0", "h1", 1.0, group_id="other")
    with pytest.raises(ValueError):
        ef.add_flow(foreign)


def test_is_coflow_detection():
    coflow = make_coflow("c", [Flow("h0", "h1", 1.0), Flow("h1", "h0", 1.0)])
    assert coflow.is_coflow()
    staggered, _ = _staggered_ef()
    assert not staggered.is_coflow()


def test_make_coflow_reindexes_members():
    flows = [Flow("h0", "h1", 1.0, group_id="c", index_in_group=j) for j in range(3)]
    coflow = make_coflow("c", flows)
    assert all(f.index_in_group == 0 for f in coflow.flows)
    coflow.set_reference_time(1.0)
    ideals = set(coflow.ideal_finish_times().values())
    assert ideals == {1.0}


def test_cardinality_and_index_count():
    ef, _ = _staggered_ef(n=4)
    assert ef.cardinality == 4
    assert len(ef) == 4
    assert ef.index_count == 4


def test_weight_validation():
    with pytest.raises(ValueError):
        EchelonFlow("ef", CoflowArrangement(), weight=0.0)


def test_total_tardiness_sums_eq4():
    ef1, flows1 = _staggered_ef(n=2, distance=1.0)
    ef2 = EchelonFlow("ef2", CoflowArrangement(), weight=2.0)
    f2 = Flow("h0", "h1", 1.0, group_id="ef2")
    ef2.add_flow(f2)
    ef1.set_reference_time(0.0)
    ef2.set_reference_time(0.0)
    finishes = {
        flows1[0].flow_id: 1.0,  # tardiness 1.0
        flows1[1].flow_id: 1.0,  # tardiness 0.0 -> ef1 max = 1.0
        f2.flow_id: 3.0,  # ef2 tardiness 3.0
    }
    assert total_tardiness([ef1, ef2], finishes) == pytest.approx(4.0)
    assert total_tardiness([ef1, ef2], finishes, weighted=True) == pytest.approx(7.0)
