"""The discrete-event engine: co-simulation semantics."""

import pytest

from repro.core.arrangement import StaggeredArrangement
from repro.core.echelonflow import EchelonFlow
from repro.core.flow import Flow
from repro.scheduling import FairSharingScheduler
from repro.simulator import Engine, SimulationError, TaskDag
from repro.topology import big_switch, two_hosts


def _engine(n_hosts=2, bw=10.0):
    return Engine(big_switch(n_hosts, bw), FairSharingScheduler())


class TestComputeExecution:
    def test_single_compute(self):
        engine = _engine()
        dag = TaskDag("j")
        dag.add_compute("c", device="h0", duration=2.5)
        engine.submit(dag)
        trace = engine.run()
        assert trace.end_time == pytest.approx(2.5)
        span = trace.compute_spans[0]
        assert span.start == pytest.approx(0.0)
        assert span.end == pytest.approx(2.5)

    def test_device_serialization(self):
        engine = _engine()
        dag = TaskDag("j")
        dag.add_compute("a", device="h0", duration=1.0)
        dag.add_compute("b", device="h0", duration=1.0)
        engine.submit(dag)
        trace = engine.run()
        spans = sorted(trace.compute_spans, key=lambda s: s.start)
        assert spans[0].end <= spans[1].start + 1e-9

    def test_parallel_devices(self):
        engine = _engine()
        dag = TaskDag("j")
        dag.add_compute("a", device="h0", duration=2.0)
        dag.add_compute("b", device="h1", duration=2.0)
        engine.submit(dag)
        trace = engine.run()
        assert trace.end_time == pytest.approx(2.0)

    def test_dependencies_respected(self):
        engine = _engine()
        dag = TaskDag("j")
        dag.add_compute("a", device="h0", duration=1.0)
        dag.add_compute("b", device="h1", duration=1.0, deps=["a"])
        engine.submit(dag)
        trace = engine.run()
        assert trace.task_completion("b") == pytest.approx(2.0)

    def test_zero_duration_compute(self):
        engine = _engine()
        dag = TaskDag("j")
        dag.add_compute("a", device="h0", duration=0.0)
        dag.add_compute("b", device="h0", duration=1.0, deps=["a"])
        engine.submit(dag)
        trace = engine.run()
        assert trace.end_time == pytest.approx(1.0)


class TestFlowExecution:
    def test_single_flow_transfer_time(self):
        engine = Engine(two_hosts(4.0), FairSharingScheduler())
        dag = TaskDag("j")
        dag.add_comm("x", [Flow("h0", "h1", 8.0, job_id="j")])
        engine.submit(dag)
        trace = engine.run()
        record = trace.flow_records[0]
        assert record.finish == pytest.approx(2.0)
        assert trace.end_time == pytest.approx(2.0)

    def test_comm_completes_when_all_flows_finish(self):
        engine = _engine(n_hosts=3, bw=10.0)
        dag = TaskDag("j")
        dag.add_comm(
            "x",
            [Flow("h0", "h2", 10.0, job_id="j"), Flow("h1", "h2", 30.0, job_id="j")],
        )
        dag.add_barrier("done", deps=["x"])
        engine.submit(dag)
        trace = engine.run()
        # Shared ingress at h2: fair split 5/5, small finishes at 2, big
        # then gets 10 -> remaining 20/10 = 2 more: finish at 4.
        assert trace.task_completion("done") == pytest.approx(4.0)

    def test_compute_gated_by_flow(self):
        engine = Engine(two_hosts(2.0), FairSharingScheduler())
        dag = TaskDag("j")
        dag.add_compute("produce", device="h0", duration=1.0)
        dag.add_comm("x", [Flow("h0", "h1", 4.0, job_id="j")], deps=["produce"])
        dag.add_compute("consume", device="h1", duration=0.5, deps=["x"])
        engine.submit(dag)
        trace = engine.run()
        # 1.0 compute + 2.0 transfer + 0.5 compute.
        assert trace.end_time == pytest.approx(3.5)

    def test_flow_records_carry_start_times(self):
        engine = Engine(two_hosts(1.0), FairSharingScheduler())
        dag = TaskDag("j")
        dag.add_compute("p", device="h0", duration=3.0)
        dag.add_comm("x", [Flow("h0", "h1", 1.0, job_id="j")], deps=["p"])
        engine.submit(dag)
        trace = engine.run()
        assert trace.flow_records[0].start == pytest.approx(3.0)


class TestEchelonFlowBookkeeping:
    def test_reference_pins_on_head_start(self):
        engine = Engine(two_hosts(1.0), FairSharingScheduler())
        ef = EchelonFlow("ef", StaggeredArrangement(2.0), job_id="j")
        f0 = Flow("h0", "h1", 1.0, group_id="ef", index_in_group=0, job_id="j")
        f1 = Flow("h0", "h1", 1.0, group_id="ef", index_in_group=1, job_id="j")
        ef.add_flow(f0)
        ef.add_flow(f1)
        dag = TaskDag("j")
        dag.add_compute("delay", device="h0", duration=1.5)
        dag.add_comm("x0", [f0], deps=["delay"])
        dag.add_comm("x1", [f1], deps=["x0"])
        engine.submit(dag, echelonflows=(ef,))
        trace = engine.run()
        assert ef.reference_time == pytest.approx(1.5)
        records = {r.flow.flow_id: r for r in trace.flow_records}
        assert records[f0.flow_id].ideal_finish == pytest.approx(1.5)
        assert records[f1.flow_id].ideal_finish == pytest.approx(3.5)

    def test_duplicate_echelonflow_rejected(self):
        engine = _engine()
        ef = EchelonFlow("ef", StaggeredArrangement(1.0))
        engine.register_echelonflow(ef)
        with pytest.raises(ValueError):
            engine.register_echelonflow(EchelonFlow("ef", StaggeredArrangement(1.0)))


class TestSubmissionAndErrors:
    def test_duplicate_job_rejected(self):
        engine = _engine()
        dag = TaskDag("j")
        dag.add_barrier("b")
        engine.submit(dag)
        dag2 = TaskDag("j")
        dag2.add_barrier("b")
        with pytest.raises(ValueError):
            engine.submit(dag2)

    def test_submission_in_past_rejected(self):
        engine = _engine()
        dag = TaskDag("j")
        dag.add_compute("c", device="h0", duration=1.0)
        engine.submit(dag)
        engine.run()
        dag2 = TaskDag("j2")
        dag2.add_barrier("b")
        with pytest.raises(ValueError):
            engine.submit(dag2, at_time=0.5)

    def test_delayed_arrival(self):
        engine = _engine()
        dag = TaskDag("j")
        dag.add_compute("c", device="h0", duration=1.0)
        engine.submit(dag, at_time=5.0)
        trace = engine.run()
        assert trace.end_time == pytest.approx(6.0)

    def test_job_completion_time(self):
        engine = _engine()
        dag = TaskDag("j")
        dag.add_compute("c", device="h0", duration=2.0)
        engine.submit(dag)
        engine.run()
        assert engine.job_completion_time("j") == pytest.approx(2.0)
        assert engine.completed_jobs == ["j"]

    def test_run_until_cuts_simulation(self):
        engine = _engine()
        dag = TaskDag("j")
        dag.add_compute("a", device="h0", duration=1.0)
        dag.add_compute("b", device="h0", duration=9.0, deps=["a"])
        engine.submit(dag)
        trace = engine.run(until=3.0)
        assert trace.end_time == pytest.approx(3.0)
        with pytest.raises(SimulationError):
            engine.job_completion_time("j")


class TestCallbacksAndBackground:
    def test_timer_callback_fires(self):
        engine = _engine()
        dag = TaskDag("j")
        dag.add_compute("c", device="h0", duration=3.0)
        engine.submit(dag)
        fired = []
        engine.schedule_callback(1.0, lambda: fired.append(engine.now))
        engine.run()
        assert fired == [pytest.approx(1.0)]

    def test_background_flow_contends(self):
        # Foreground flow alone takes 1s; an equal background flow sharing
        # the h0 egress halves its rate, so both finish at 2s.
        engine = _engine(n_hosts=3, bw=10.0)
        dag = TaskDag("j")
        dag.add_comm("x", [Flow("h0", "h1", 10.0, job_id="j")])
        engine.submit(dag)
        engine.inject_background_flow(Flow("h0", "h2", 10.0), at_time=0.0)
        trace = engine.run()
        foreground = [r for r in trace.flow_records if r.flow.job_id == "j"][0]
        assert foreground.finish == pytest.approx(2.0)

    def test_late_background_flow_slows_foreground(self):
        # Background arrives at t=0.5: foreground has 5 bytes left, then
        # shares 5/5 -> finishes at 0.5 + 1.0 = 1.5.
        engine = _engine(n_hosts=3, bw=10.0)
        dag = TaskDag("j")
        dag.add_comm("x", [Flow("h0", "h1", 10.0, job_id="j")])
        engine.submit(dag)
        engine.inject_background_flow(Flow("h0", "h2", 100.0), at_time=0.5)
        trace = engine.run()
        foreground = [r for r in trace.flow_records if r.flow.job_id == "j"][0]
        assert foreground.finish == pytest.approx(1.5)
