"""Engine edge cases: deadlock detection, round limits, ECMP routing."""

import pytest

from repro import Engine, leaf_spine, two_hosts
from repro.core.flow import Flow
from repro.scheduling import FairSharingScheduler
from repro.scheduling.base import Scheduler
from repro.simulator import SimulationError, TaskDag
from repro.topology import EcmpRouter


class _StarvingScheduler(Scheduler):
    """Pathological: assigns zero rate to everything."""

    name = "starving-test"

    def allocate(self, view):
        return {s.flow.flow_id: 0.0 for s in view.active_states()}


class _OversubscribingScheduler(Scheduler):
    """Pathological: assigns full link rate to every flow."""

    name = "oversubscribing-test"

    def allocate(self, view):
        return {s.flow.flow_id: 1e12 for s in view.active_states()}


def test_starving_scheduler_raises_deadlock():
    engine = Engine(two_hosts(1.0), _StarvingScheduler())
    dag = TaskDag("j")
    dag.add_comm("x", [Flow("h0", "h1", 1.0, job_id="j")])
    engine.submit(dag)
    with pytest.raises(SimulationError, match="deadlock"):
        engine.run()


def test_oversubscription_raises_in_strict_mode():
    from repro.simulator.network import CapacityViolation
    from repro.topology import big_switch

    engine = Engine(big_switch(3, 1.0), _OversubscribingScheduler())
    dag = TaskDag("j")
    dag.add_comm(
        "x",
        [Flow("h0", "h1", 1.0, job_id="j"), Flow("h0", "h2", 1.0, job_id="j")],
    )
    engine.submit(dag)
    with pytest.raises(CapacityViolation):
        engine.run()


def test_lenient_mode_scales_oversubscription():
    from repro.topology import big_switch

    engine = Engine(
        big_switch(3, 1.0), _OversubscribingScheduler(), strict_rates=False
    )
    dag = TaskDag("j")
    dag.add_comm(
        "x",
        [Flow("h0", "h1", 1.0, job_id="j"), Flow("h0", "h2", 1.0, job_id="j")],
    )
    engine.submit(dag)
    trace = engine.run()
    # Scaled to fair share of the shared egress: both finish at 2.
    assert trace.end_time == pytest.approx(2.0)


def test_max_rounds_guard():
    engine = Engine(two_hosts(1.0), FairSharingScheduler())
    dag = TaskDag("j")
    for index in range(5):
        deps = [f"c{index - 1}"] if index else []
        dag.add_compute(f"c{index}", device="h0", duration=1.0, deps=deps)
    engine.submit(dag)
    with pytest.raises(SimulationError, match="rounds"):
        engine.run(max_rounds=2)


def test_engine_with_ecmp_router():
    topo = leaf_spine(2, 2, 10.0, n_spines=2)
    engine = Engine(topo, FairSharingScheduler(), router=EcmpRouter(topo))
    dag = TaskDag("j")
    # Several cross-leaf flows spread over both spines.
    flows = [Flow("h0", "h2", 5.0, job_id="j") for _ in range(4)]
    dag.add_comm("x", flows)
    engine.submit(dag)
    trace = engine.run()
    assert len(trace.flow_records) == 4
    paths = {
        tuple(l.key for l in engine.network.path(f.flow_id)) for f in flows
    }
    assert len(paths) >= 2  # hashing used more than one spine


def test_trace_task_completion_lookup():
    engine = Engine(two_hosts(1.0), FairSharingScheduler())
    dag = TaskDag("j")
    dag.add_compute("c", device="h0", duration=1.0)
    engine.submit(dag)
    trace = engine.run()
    assert trace.task_completion("c") == pytest.approx(1.0)
    with pytest.raises(KeyError):
        trace.task_completion("ghost")
