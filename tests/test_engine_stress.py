"""Engine stress: random DAGs, determinism, and conservation (hypothesis)."""

import pytest
from hypothesis import given, settings
from hypothesis import strategies as st

from repro import Engine, big_switch
from repro.analysis import validate_trace
from repro.core.flow import Flow
from repro.scheduling import (
    CoflowMaddScheduler,
    EchelonMaddScheduler,
    FairSharingScheduler,
    ShortestFlowFirstScheduler,
)
from repro.simulator import TaskDag

N_HOSTS = 4
HOSTS = [f"h{i}" for i in range(N_HOSTS)]


@st.composite
def random_dags(draw):
    """Random well-formed DAGs mixing compute, comm, and barriers.

    Each task may depend on any earlier task, so the graph is acyclic by
    construction; flows pick random distinct endpoints.
    """
    n_tasks = draw(st.integers(min_value=1, max_value=14))
    dag = TaskDag("j")
    task_ids = []
    for index in range(n_tasks):
        n_deps = draw(st.integers(min_value=0, max_value=min(3, len(task_ids))))
        deps = (
            draw(
                st.lists(
                    st.sampled_from(task_ids),
                    min_size=n_deps,
                    max_size=n_deps,
                    unique=True,
                )
            )
            if task_ids
            else []
        )
        kind = draw(st.sampled_from(["compute", "comm", "barrier"]))
        task_id = f"t{index}"
        if kind == "compute":
            dag.add_compute(
                task_id,
                device=draw(st.sampled_from(HOSTS)),
                duration=draw(st.floats(min_value=0.0, max_value=2.0)),
                deps=deps,
                priority=draw(st.integers(min_value=0, max_value=5)),
            )
        elif kind == "comm":
            n_flows = draw(st.integers(min_value=1, max_value=3))
            flows = []
            for _ in range(n_flows):
                src, dst = draw(
                    st.sampled_from(
                        [(a, b) for a in HOSTS for b in HOSTS if a != b]
                    )
                )
                flows.append(
                    Flow(
                        src,
                        dst,
                        draw(st.floats(min_value=0.1, max_value=20.0)),
                        job_id="j",
                    )
                )
            dag.add_comm(task_id, flows, deps=deps)
        else:
            dag.add_barrier(task_id, deps=deps)
        task_ids.append(task_id)
    return dag


def _dag_spec(dag):
    """A rebuildable description (Flow objects are single-use per engine)."""
    spec = []
    for task in dag.tasks():
        if task.flows:
            flows = [(f.src, f.dst, f.size) for f in task.flows]
        else:
            flows = None
        spec.append(
            (task.task_id, task.kind.value, task.device, task.duration,
             task.deps, task.priority, flows)
        )
    return spec


def _rebuild(spec):
    dag = TaskDag("j")
    for task_id, kind, device, duration, deps, priority, flows in spec:
        if kind == "compute":
            dag.add_compute(
                task_id, device=device, duration=duration, deps=deps,
                priority=priority,
            )
        elif kind == "comm":
            dag.add_comm(
                task_id,
                [Flow(src, dst, size, job_id="j") for src, dst, size in flows],
                deps=deps,
            )
        else:
            dag.add_barrier(task_id, deps=deps)
    return dag


@given(random_dags())
@settings(max_examples=50, deadline=None)
def test_random_dags_complete_and_validate(dag):
    """Every random DAG runs to completion under every scheduler, and the
    resulting trace satisfies all invariants."""
    spec = _dag_spec(dag)
    for scheduler_cls in (
        FairSharingScheduler,
        ShortestFlowFirstScheduler,
        CoflowMaddScheduler,
        EchelonMaddScheduler,
    ):
        engine = Engine(big_switch(N_HOSTS, 5.0), scheduler_cls())
        rebuilt = _rebuild(spec)
        engine.submit(rebuilt)
        trace = engine.run()
        assert engine.completed_jobs == ["j"]
        validate_trace(trace, dag=rebuilt)
        # Conservation: delivered bytes equal injected bytes.
        injected = sum(f.size for f in rebuilt.all_flows())
        assert engine.network.bytes_delivered == pytest.approx(
            injected, rel=1e-6, abs=1e-6
        )


@given(random_dags())
@settings(max_examples=25, deadline=None)
def test_engine_is_deterministic(dag):
    """Identical inputs produce bit-identical traces."""
    spec = _dag_spec(dag)

    def run():
        engine = Engine(big_switch(N_HOSTS, 5.0), EchelonMaddScheduler())
        engine.submit(_rebuild(spec))
        trace = engine.run()
        spans = [(s.task_id, s.device, s.start, s.end) for s in trace.compute_spans]
        flows = [
            (r.flow.src, r.flow.dst, r.flow.size, r.start, r.finish)
            for r in trace.flow_records
        ]
        return spans, flows, trace.end_time

    assert run() == run()


@given(random_dags())
@settings(max_examples=25, deadline=None)
def test_makespan_never_beats_lower_bounds(dag):
    from repro.scheduling import makespan_lower_bounds

    spec = _dag_spec(dag)
    topo = big_switch(N_HOSTS, 5.0)
    rebuilt = _rebuild(spec)
    bounds = makespan_lower_bounds(rebuilt, topo)
    engine = Engine(topo, EchelonMaddScheduler())
    engine.submit(rebuilt)
    trace = engine.run()
    assert trace.end_time >= bounds.best - 1e-6
