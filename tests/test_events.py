"""Event queue ordering and cancellation."""

import pytest

from repro.simulator.events import EventKind, EventQueue


def test_pop_in_time_order():
    queue = EventQueue()
    queue.push(2.0, EventKind.TIMER, payload="b")
    queue.push(1.0, EventKind.TIMER, payload="a")
    queue.push(3.0, EventKind.TIMER, payload="c")
    assert [queue.pop().payload for _ in range(3)] == ["a", "b", "c"]


def test_same_time_kind_priority():
    # Compute completions process before arrivals at the same instant.
    queue = EventQueue()
    queue.push(1.0, EventKind.JOB_ARRIVAL, payload="arrival")
    queue.push(1.0, EventKind.COMPUTE_DONE, payload="compute")
    assert queue.pop().payload == "compute"
    assert queue.pop().payload == "arrival"


def test_same_time_same_kind_fifo():
    queue = EventQueue()
    queue.push(1.0, EventKind.TIMER, payload=1)
    queue.push(1.0, EventKind.TIMER, payload=2)
    assert queue.pop().payload == 1
    assert queue.pop().payload == 2


def test_peek_time_and_len():
    queue = EventQueue()
    assert queue.peek_time() == float("inf")
    assert not queue
    queue.push(5.0, EventKind.TIMER)
    assert queue.peek_time() == 5.0
    assert len(queue) == 1


def test_cancelled_events_are_skipped():
    queue = EventQueue()
    event = queue.push(1.0, EventKind.TIMER, payload="dead")
    queue.push(2.0, EventKind.TIMER, payload="alive")
    event.cancelled = True
    assert queue.peek_time() == 2.0
    assert len(queue) == 1
    assert queue.pop().payload == "alive"


def test_pop_due_collects_all_at_or_before():
    queue = EventQueue()
    queue.push(1.0, EventKind.TIMER, payload=1)
    queue.push(1.0 + 1e-12, EventKind.TIMER, payload=2)
    queue.push(2.0, EventKind.TIMER, payload=3)
    due = queue.pop_due(1.0, tolerance=1e-9)
    assert [e.payload for e in due] == [1, 2]
    assert queue.peek_time() == 2.0


def test_pop_empty_raises():
    with pytest.raises(IndexError):
        EventQueue().pop()


def test_infinite_time_rejected():
    queue = EventQueue()
    with pytest.raises(ValueError):
        queue.push(float("inf"), EventKind.TIMER)
    with pytest.raises(ValueError):
        queue.push(float("nan"), EventKind.TIMER)
