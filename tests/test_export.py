"""Trace exporters."""

import csv
import io
import json

import pytest

from repro import Engine, build_pipeline_segment, two_hosts
from repro.analysis import (
    chrome_trace,
    flows_to_csv,
    trace_to_dict,
    trace_to_json,
    write_trace,
)
from repro.scheduling import EchelonMaddScheduler


@pytest.fixture(scope="module")
def trace():
    job = build_pipeline_segment(
        "j", "h0", "h1", [0.0, 1.0, 2.0], [2.0] * 3, [2.0] * 3
    )
    engine = Engine(two_hosts(1.0), EchelonMaddScheduler())
    job.submit_to(engine)
    return engine.run()


def test_trace_to_dict_structure(trace):
    data = trace_to_dict(trace)
    assert data["end_time"] == pytest.approx(8.0)
    assert len(data["flows"]) == 3
    flow = data["flows"][0]
    assert {"flow_id", "src", "dst", "size", "start", "finish", "tardiness"} <= set(
        flow
    )
    assert all(span["end"] >= span["start"] for span in data["compute_spans"])


def test_trace_to_json_round_trips(trace):
    payload = json.loads(trace_to_json(trace))
    assert payload["end_time"] == pytest.approx(8.0)


def test_flows_csv_parses(trace):
    rows = list(csv.DictReader(io.StringIO(flows_to_csv(trace))))
    assert len(rows) == 3
    assert rows[0]["src"] == "h0"
    tardiness = [float(row["tardiness"]) for row in rows]
    assert all(t == pytest.approx(2.0) for t in tardiness)


def test_chrome_trace_format(trace):
    payload = json.loads(chrome_trace(trace))
    events = payload["traceEvents"]
    kinds = {event["ph"] for event in events}
    assert "X" in kinds  # complete events
    assert "i" in kinds  # ideal-finish instants
    assert "M" in kinds  # track metadata
    compute = [e for e in events if e.get("cat") == "compute"]
    flows = [e for e in events if e.get("cat") == "flow" and e["ph"] == "X"]
    assert len(compute) == len(trace.compute_spans)
    assert len(flows) == 3
    for event in flows:
        assert event["dur"] > 0


def test_write_trace_formats(trace, tmp_path):
    for fmt, checker in (
        ("json", json.loads),
        ("chrome", json.loads),
        ("csv", lambda text: list(csv.reader(io.StringIO(text)))),
    ):
        path = tmp_path / f"trace.{fmt}"
        write_trace(trace, str(path), fmt=fmt)
        checker(path.read_text())
    with pytest.raises(ValueError):
        write_trace(trace, str(tmp_path / "x"), fmt="yaml")
