"""Jain's index and slowdown metrics (E23 machinery)."""

import pytest

from repro.analysis import (
    isolated_completion_times,
    jain_index,
    shared_completion_times,
    slowdowns,
)
from repro.core.units import gbps, megabytes
from repro.scheduling import EchelonMaddScheduler, FairSharingScheduler
from repro.topology import big_switch
from repro.workloads import build_dp_allreduce, uniform_model

MODEL = uniform_model(
    "u4",
    4,
    param_bytes_per_layer=megabytes(20),
    activation_bytes=megabytes(5),
    forward_time=0.005,
)


def _builders():
    return {
        "a": lambda: build_dp_allreduce(
            "a", MODEL, ["h0", "h1"], bucket_bytes=megabytes(40)
        ),
        "b": lambda: build_dp_allreduce(
            "b", MODEL, ["h2", "h3"], bucket_bytes=megabytes(40)
        ),
    }


def _topo():
    return big_switch(4, gbps(10))


class TestJainIndex:
    def test_perfectly_fair(self):
        assert jain_index([2.0, 2.0, 2.0]) == pytest.approx(1.0)

    def test_maximally_unfair(self):
        assert jain_index([1.0, 0.0, 0.0, 0.0]) == pytest.approx(0.25)

    def test_bounds(self):
        values = [1.0, 3.0, 2.0, 0.5]
        index = jain_index(values)
        assert 1.0 / len(values) <= index <= 1.0

    def test_all_zero_is_fair(self):
        assert jain_index([0.0, 0.0]) == 1.0

    def test_validation(self):
        with pytest.raises(ValueError):
            jain_index([])
        with pytest.raises(ValueError):
            jain_index([1.0, -1.0])


class TestSlowdowns:
    def test_disjoint_jobs_have_unit_slowdown(self):
        ratios, jain = slowdowns(_builders(), _topo, EchelonMaddScheduler)
        # Disjoint hosts on a non-blocking fabric: no contention at all.
        for ratio in ratios.values():
            assert ratio == pytest.approx(1.0, rel=1e-6)
        assert jain == pytest.approx(1.0, rel=1e-6)

    def test_contending_jobs_slow_down(self):
        # Same hosts via MIG would contend; simplest: overlapping workers.
        builders = {
            "a": lambda: build_dp_allreduce(
                "a", MODEL, ["h0", "h1"], bucket_bytes=megabytes(40)
            ),
            "b": lambda: build_dp_allreduce(
                "b", MODEL, ["h2", "h1"], bucket_bytes=megabytes(40)
            ),
        }
        ratios, jain = slowdowns(builders, _topo, FairSharingScheduler)
        assert max(ratios.values()) > 1.0
        assert 0.0 < jain <= 1.0

    def test_isolated_and_shared_helpers(self):
        isolated = isolated_completion_times(_builders(), _topo, FairSharingScheduler)
        shared = shared_completion_times(_builders(), _topo, FairSharingScheduler)
        assert set(isolated) == set(shared) == {"a", "b"}
        for name in isolated:
            assert shared[name] >= isolated[name] - 1e-9

    def test_mismatched_ids_rejected(self):
        bad = {
            "x": lambda: build_dp_allreduce(
                "not-x", MODEL, ["h0", "h1"], bucket_bytes=megabytes(40)
            )
        }
        with pytest.raises(ValueError):
            slowdowns(bad, _topo, FairSharingScheduler)
