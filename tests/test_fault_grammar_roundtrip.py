"""JSON round-trip coverage for the full fault grammar.

Every fault spec the repo actually ships -- the watch-loop scenario
grid (single- and multi-fault kinds, every paradigm) and the
control-plane chaos suite -- must survive
``parse -> to_json -> from_json`` with event-for-event equality, so a
schedule exported by one tool (or pinned in a baseline) rebuilds
bit-identically elsewhere.
"""

import json

import pytest

from repro.faults import FaultSchedule, FaultSpecError
from repro.obs.watch.scenarios import (
    FAULT_KINDS,
    MULTI_FAULT_KINDS,
    PARADIGM_KEYS,
    build_scenarios,
)
from repro.system.runtime.chaos import SCENARIO_NAMES, build_chaos_scenarios


def _watch_specs():
    """Every non-empty fault spec the watch-loop grids can produce."""
    specs = {}
    for kinds in (FAULT_KINDS, MULTI_FAULT_KINDS):
        for scenario in build_scenarios(paradigms=PARADIGM_KEYS, kinds=kinds):
            if scenario.spec is not None:
                specs[scenario.name] = scenario.spec
    return sorted(specs.items())


def _chaos_specs():
    """Every control-plane fault spec the chaos suite runs."""
    return sorted(
        (scenario.name, scenario.faults)
        for scenario in build_chaos_scenarios(0.2, SCENARIO_NAMES)
        if scenario.faults is not None
    )


def _roundtrip(schedule: FaultSchedule) -> FaultSchedule:
    document = schedule.to_json()
    # The export must be plain JSON (a list of primitive events).
    assert isinstance(json.loads(document), list)
    return FaultSchedule.from_json(document)


@pytest.mark.parametrize(
    "name,spec", _watch_specs(), ids=[n for n, _ in _watch_specs()]
)
def test_watch_scenario_specs_roundtrip(name, spec):
    schedule = FaultSchedule.parse(spec)
    assert _roundtrip(schedule) == schedule


@pytest.mark.parametrize(
    "name,spec", _chaos_specs(), ids=[n for n, _ in _chaos_specs()]
)
def test_chaos_scenario_specs_roundtrip(name, spec):
    schedule = FaultSchedule.parse(spec)
    assert schedule.has_control_faults
    assert _roundtrip(schedule) == schedule


def test_roundtrip_preserves_every_field():
    """One schedule exercising every optional event field at once."""
    spec = (
        "link_down:h0-h1@0.5+1.0;"
        " degrade:h1->h2@2.0,factor=0.25;"
        " flap:h0-h1@4.0,period=0.5,count=3,factor=0.1;"
        " crash_scheduler@6.0;"
        " crash_agent@1.0+0.5,agent=job-a;"
        " crash_coordinator@2.5+0.5;"
        " partition_control@3.0+0.25,agent=job-b;"
        " rpc_noise@4.5+1.0,drop=0.2,delay=0.01"
    )
    schedule = FaultSchedule.parse(spec)
    restored = _roundtrip(schedule)
    assert restored == schedule
    assert restored.events == schedule.events
    assert restored.ground_truth() == schedule.ground_truth()
    assert restored.has_control_faults
    # A second hop is fixed-point: to_json(from_json(x)) == x.
    assert restored.to_json() == schedule.to_json()


def test_from_json_rejects_garbage():
    with pytest.raises(FaultSpecError):
        FaultSchedule.from_json({"faults": "nope"})
    with pytest.raises(FaultSpecError):
        FaultSchedule.from_json([42])
    with pytest.raises(FaultSpecError):
        FaultSchedule.from_json([])
