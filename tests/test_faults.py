"""Straggler and background-traffic fault utilities."""

import pytest

from repro import Engine, big_switch, linear_chain, two_hosts
from repro.core.units import gbps, megabytes
from repro.scheduling import EchelonMaddScheduler, FairSharingScheduler
from repro.workloads import (
    build_pp_gpipe,
    inject_background_stream,
    pause_device,
    scale_device_durations,
    uniform_model,
    with_straggler,
)

MODEL = uniform_model(
    "u8",
    8,
    param_bytes_per_layer=megabytes(20),
    activation_bytes=megabytes(10),
    forward_time=0.004,
)
HOSTS = ["h0", "h1", "h2", "h3"]


class TestScaleDeviceDurations:
    def test_only_target_device_scaled(self):
        job = build_pp_gpipe("j", MODEL, HOSTS, num_micro_batches=2)
        scaled = scale_device_durations(job.dag, "h1", 2.0)
        for task in job.dag.tasks():
            twin = scaled.task(task.task_id)
            if task.device == "h1":
                assert twin.duration == pytest.approx(2.0 * task.duration)
            elif task.device is not None:
                assert twin.duration == pytest.approx(task.duration)

    def test_structure_preserved(self):
        job = build_pp_gpipe("j", MODEL, HOSTS, num_micro_batches=2)
        scaled = scale_device_durations(job.dag, "h1", 1.5)
        assert len(scaled) == len(job.dag)
        assert scaled.topological_order() == job.dag.topological_order()

    def test_invalid_factor(self):
        job = build_pp_gpipe("j", MODEL, HOSTS, num_micro_batches=2)
        with pytest.raises(ValueError):
            scale_device_durations(job.dag, "h1", 0.0)


class TestStraggler:
    def _run(self, job):
        engine = Engine(linear_chain(4, gbps(10)), EchelonMaddScheduler())
        job.submit_to(engine)
        return engine.run()

    def test_straggler_slows_the_pipeline(self):
        nominal = self._run(build_pp_gpipe("j", MODEL, HOSTS, 4)).last_compute_end()
        straggled = self._run(
            with_straggler(build_pp_gpipe("j", MODEL, HOSTS, 4), "h1", 2.0)
        ).last_compute_end()
        assert straggled > nominal

    def test_arrangements_keep_the_nominal_pattern(self):
        job = with_straggler(build_pp_gpipe("j", MODEL, HOSTS, 4), "h1", 2.0)
        # The EchelonFlows are the original objects: their distances still
        # describe the nominal (un-straggled) per-micro-batch time.
        fwd_ef = next(ef for ef in job.echelonflows if "fwd0-1" in ef.ef_id)
        assert fwd_ef.arrangement.distance == pytest.approx(
            MODEL.total_forward_time / 4 / 4
        )
        self._run(job)  # still executes to completion

    def test_echelon_still_beats_fair_with_straggler(self):
        def run(scheduler):
            job = with_straggler(
                build_pp_gpipe("j", MODEL, HOSTS, 4), "h1", 1.5
            )
            engine = Engine(linear_chain(4, gbps(3)), scheduler)
            job.submit_to(engine)
            return engine.run().last_compute_end()

        assert run(EchelonMaddScheduler()) <= run(FairSharingScheduler())


class TestBackgroundStream:
    def test_stream_slows_foreground(self):
        def run(with_stream):
            engine = Engine(two_hosts(1.0), FairSharingScheduler())
            from repro.workloads import build_pipeline_segment

            job = build_pipeline_segment(
                "fg", "h0", "h1", [0.0, 1.0], [2.0, 2.0], [1.0, 1.0]
            )
            job.submit_to(engine)
            if with_stream:
                inject_background_stream(
                    engine, "h0", "h1", flow_size=1.0, period=1.0, count=4
                )
            return engine.run().last_compute_end()

        assert run(True) > run(False)

    def test_validation(self):
        engine = Engine(two_hosts(1.0), FairSharingScheduler())
        with pytest.raises(ValueError):
            inject_background_stream(engine, "h0", "h1", 1.0, period=0.0, count=2)
        with pytest.raises(ValueError):
            inject_background_stream(engine, "h0", "h1", 1.0, period=1.0, count=0)


class TestPauseDevice:
    def test_pause_delays_queued_work(self):
        def run(with_pause):
            engine = Engine(big_switch(1, 1.0), FairSharingScheduler())
            from repro.simulator import TaskDag

            dag = TaskDag("j")
            dag.add_compute("a", device="h0", duration=1.0)
            dag.add_compute("b", device="h0", duration=1.0, deps=["a"])
            engine.submit(dag)
            if with_pause:
                pause_device(engine, "h0", at_time=0.5, duration=2.0)
            engine.run()
            return engine.job_completion_time("j")

        assert run(False) == pytest.approx(2.0)
        # The pause lands after task a (device busy), then blocks b.
        assert run(True) == pytest.approx(4.0)

    def test_validation(self):
        engine = Engine(big_switch(1, 1.0), FairSharingScheduler())
        with pytest.raises(ValueError):
            pause_device(engine, "h0", 0.0, duration=0.0)
