"""Flow and FlowState behaviour."""

import pytest

from repro.core.flow import Flow, FlowState


def test_flow_ids_are_unique():
    a = Flow("h0", "h1", 10.0)
    b = Flow("h0", "h1", 10.0)
    assert a.flow_id != b.flow_id


def test_flow_rejects_nonpositive_size():
    with pytest.raises(ValueError):
        Flow("h0", "h1", 0.0)
    with pytest.raises(ValueError):
        Flow("h0", "h1", -1.0)


def test_flow_rejects_self_loop():
    with pytest.raises(ValueError):
        Flow("h0", "h0", 1.0)


def test_flow_str_mentions_group():
    flow = Flow("h0", "h1", 1.0, group_id="ef", index_in_group=3)
    assert "ef#3" in str(flow)


def test_state_advance_drains_bytes():
    state = FlowState(flow=Flow("a", "b", 100.0), start_time=0.0, remaining=100.0)
    state.rate = 10.0
    state.advance(2.0)
    assert state.remaining == pytest.approx(80.0)
    assert state.transferred == pytest.approx(20.0)


def test_state_advance_clamps_at_zero():
    state = FlowState(flow=Flow("a", "b", 10.0), start_time=0.0, remaining=10.0)
    state.rate = 100.0
    state.advance(1.0)
    assert state.remaining == 0.0
    assert state.finished


def test_state_advance_rejects_negative_dt():
    state = FlowState(flow=Flow("a", "b", 10.0), start_time=0.0, remaining=10.0)
    with pytest.raises(ValueError):
        state.advance(-0.5)


def test_time_to_finish():
    state = FlowState(flow=Flow("a", "b", 10.0), start_time=0.0, remaining=10.0)
    assert state.time_to_finish() == float("inf")
    state.rate = 5.0
    assert state.time_to_finish() == pytest.approx(2.0)
    state.advance(2.0)
    assert state.time_to_finish() == 0.0


def test_finished_uses_relative_tolerance_for_huge_flows():
    size = 2e9
    state = FlowState(flow=Flow("a", "b", size), start_time=0.0, remaining=size)
    state.remaining = 0.5  # half a byte left of two gigabytes: done
    assert state.finished


def test_tardiness_requires_ideal():
    state = FlowState(flow=Flow("a", "b", 10.0), start_time=0.0, remaining=0.0)
    with pytest.raises(ValueError):
        state.tardiness_at(5.0)
    state.ideal_finish_time = 3.0
    assert state.tardiness_at(5.0) == pytest.approx(2.0)
    assert state.tardiness_at(2.0) == pytest.approx(-1.0)
