"""MIG-style GPU sharing (Section 5 future work)."""

import pytest

from repro import Engine, big_switch
from repro.core.units import gbps, megabytes
from repro.scheduling import EchelonMaddScheduler, FairSharingScheduler
from repro.simulator import TaskDag
from repro.simulator.compute import Device
from repro.simulator.dag import Task, TaskKind
from repro.workloads import build_dp_allreduce, uniform_model

MODEL = uniform_model(
    "u4",
    4,
    param_bytes_per_layer=megabytes(20),
    activation_bytes=megabytes(5),
    forward_time=0.01,
)


def _task(task_id, duration=1.0, priority=0):
    return Task(
        task_id=task_id,
        kind=TaskKind.COMPUTE,
        device="gpu0",
        duration=duration,
        priority=priority,
    )


class TestMultiSlotDevice:
    def test_slots_run_concurrently(self):
        device = Device("gpu0", slots=2)
        device.enqueue(_task("a", 2.0))
        device.enqueue(_task("b", 2.0))
        assert device.start_next(0.0) is not None
        assert device.start_next(0.0) is not None
        assert device.free_slots == 0
        assert device.start_next(0.0) is None
        assert len(device.running_tasks) == 2

    def test_finish_task_by_id(self):
        device = Device("gpu0", slots=2)
        device.enqueue(_task("a"))
        device.enqueue(_task("b"))
        device.start_next(0.0)
        device.start_next(0.0)
        finished = device.finish_task("b", 1.0)
        assert finished.task_id == "b"
        assert device.free_slots == 1
        with pytest.raises(RuntimeError):
            device.finish_task("b", 1.0)

    def test_running_property_guards_multi_slot(self):
        device = Device("gpu0", slots=2)
        device.enqueue(_task("a"))
        device.enqueue(_task("b"))
        device.start_next(0.0)
        assert device.running.task_id == "a"
        device.start_next(0.0)
        with pytest.raises(RuntimeError):
            _ = device.running

    def test_finish_current_guards_multi_slot(self):
        device = Device("gpu0", slots=2)
        device.enqueue(_task("a"))
        device.enqueue(_task("b"))
        device.start_next(0.0)
        device.start_next(0.0)
        with pytest.raises(RuntimeError):
            device.finish_current(1.0)

    def test_utilization_normalized_by_slots(self):
        device = Device("gpu0", slots=2)
        device.enqueue(_task("a", 4.0))
        device.start_next(0.0)
        device.finish_task("a", 4.0)
        assert device.utilization(4.0) == pytest.approx(0.5)

    def test_slot_validation(self):
        with pytest.raises(ValueError):
            Device("gpu0", slots=0)


class TestEngineWithSharedGpus:
    def test_two_tasks_overlap_on_two_slots(self):
        engine = Engine(big_switch(1, 1.0), FairSharingScheduler(), device_slots=2)
        dag = TaskDag("j")
        dag.add_compute("a", device="h0", duration=2.0)
        dag.add_compute("b", device="h0", duration=2.0)
        engine.submit(dag)
        trace = engine.run()
        assert trace.end_time == pytest.approx(2.0)

    def test_single_slot_still_serializes(self):
        engine = Engine(big_switch(1, 1.0), FairSharingScheduler(), device_slots=1)
        dag = TaskDag("j")
        dag.add_compute("a", device="h0", duration=2.0)
        dag.add_compute("b", device="h0", duration=2.0)
        engine.submit(dag)
        trace = engine.run()
        assert trace.end_time == pytest.approx(4.0)

    def test_per_device_slot_mapping(self):
        engine = Engine(
            big_switch(2, 1.0),
            FairSharingScheduler(),
            device_slots={"h0": 2},  # h1 defaults to 1
        )
        dag = TaskDag("j")
        for device, prefix in (("h0", "a"), ("h1", "b")):
            dag.add_compute(f"{prefix}0", device=device, duration=2.0)
            dag.add_compute(f"{prefix}1", device=device, duration=2.0)
        engine.submit(dag)
        trace = engine.run()
        h0_spans = trace.spans_of_device("h0")
        h1_spans = sorted(trace.spans_of_device("h1"), key=lambda s: s.start)
        assert max(s.end for s in h0_spans) == pytest.approx(2.0)
        assert h1_spans[1].start >= h1_spans[0].end - 1e-9

    def test_two_jobs_share_mig_partitioned_hosts(self):
        """Section 5 future work: two DP jobs co-resident on MIG slices.

        Each job's compute runs on its own slice (no slowdown); only the
        network is shared, and EchelonFlow scheduling still applies.
        """
        engine = Engine(
            big_switch(2, gbps(10)), EchelonMaddScheduler(), device_slots=2
        )
        job_a = build_dp_allreduce("a", MODEL, ["h0", "h1"], bucket_bytes=1e9)
        job_b = build_dp_allreduce("b", MODEL, ["h0", "h1"], bucket_bytes=1e9)
        job_a.submit_to(engine)
        job_b.submit_to(engine)
        trace = engine.run()
        assert sorted(engine.completed_jobs) == ["a", "b"]
        # Compute of the two jobs overlaps on the shared hosts ...
        a_spans = trace.spans_of_job("a")
        b_spans = trace.spans_of_job("b")
        overlap = any(
            sa.start < sb.end and sb.start < sa.end
            for sa in a_spans
            for sb in b_spans
            if sa.device == sb.device
        )
        assert overlap
        # ... and completes faster than time-sliced single-slot sharing.
        serial = Engine(
            big_switch(2, gbps(10)), EchelonMaddScheduler(), device_slots=1
        )
        build_dp_allreduce("a", MODEL, ["h0", "h1"], bucket_bytes=1e9).submit_to(serial)
        build_dp_allreduce("b", MODEL, ["h0", "h1"], bucket_bytes=1e9).submit_to(serial)
        serial_trace = serial.run()
        assert trace.end_time < serial_trace.end_time
