"""Hierarchical all-reduce pays off exactly where it should: on
oversubscribed fabrics whose cross-group links are the bottleneck."""

import pytest

from repro.core.echelonflow import make_coflow
from repro.core.units import gbps, megabytes
from repro.scheduling import EchelonMaddScheduler
from repro.simulator import Engine, TaskDag
from repro.topology import leaf_spine
from repro.workloads import hierarchical_all_reduce, ring_all_reduce
from repro.workloads.job import add_collective


def _run_collective(steps, oversubscription):
    topo = leaf_spine(
        n_leaves=2,
        hosts_per_leaf=2,
        host_bandwidth=gbps(10),
        oversubscription=oversubscription,
    )
    engine = Engine(topo, EchelonMaddScheduler())
    dag = TaskDag("j")
    coflow = make_coflow("c", [f for step in steps for f in step])
    # Rebuild steps with the reindexed coflow flows, preserving structure.
    flow_iter = iter(coflow.flows)
    rebuilt = [[next(flow_iter) for _ in step] for step in steps]
    add_collective(dag, "ar", rebuilt)
    engine.submit(dag, echelonflows=(coflow,))
    return engine.run().end_time


PAYLOAD = megabytes(256)
# Locality groups = leaves: h0,h1 on leaf0; h2,h3 on leaf1.
GROUPS = [["h0", "h1"], ["h2", "h3"]]
FLAT_RING = ["h0", "h1", "h2", "h3"]  # crosses the core twice per lap


def test_hierarchical_beats_flat_ring_when_oversubscribed():
    flat = _run_collective(ring_all_reduce(FLAT_RING, PAYLOAD), 4.0)
    hier = _run_collective(hierarchical_all_reduce(GROUPS, PAYLOAD), 4.0)
    assert hier < flat * 0.9  # measured: 17% win at 4:1
    flat8 = _run_collective(ring_all_reduce(FLAT_RING, PAYLOAD), 8.0)
    hier8 = _run_collective(hierarchical_all_reduce(GROUPS, PAYLOAD), 8.0)
    assert hier8 < flat8 * 0.8  # 25% at 8:1: grows with oversubscription


def test_advantage_shrinks_on_a_non_blocking_fabric():
    flat = _run_collective(ring_all_reduce(FLAT_RING, PAYLOAD), 1.0)
    hier = _run_collective(hierarchical_all_reduce(GROUPS, PAYLOAD), 1.0)
    ratio_full = hier / flat
    flat_o = _run_collective(ring_all_reduce(FLAT_RING, PAYLOAD), 4.0)
    hier_o = _run_collective(hierarchical_all_reduce(GROUPS, PAYLOAD), 4.0)
    ratio_over = hier_o / flat_o
    assert ratio_over < ratio_full  # the win comes from the core


def test_cross_core_bytes_are_reduced():
    flat_cross = sum(
        f.size
        for step in ring_all_reduce(FLAT_RING, PAYLOAD)
        for f in step
        if (f.src in GROUPS[0][0:2]) != (f.dst in GROUPS[0][0:2])
    )
    hier_cross = sum(
        f.size
        for step in hierarchical_all_reduce(GROUPS, PAYLOAD)
        for f in step
        if (f.src in GROUPS[0][0:2]) != (f.dst in GROUPS[0][0:2])
    )
    assert hier_cross < flat_cross
