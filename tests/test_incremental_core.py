"""Unit tests for the incremental simulation-core primitives.

Covers the pieces individually -- residual link accounting, the lazy
drain, the finish-time heap (via twin-network differential fuzzing),
engine-maintained group buckets, the scheduler-view delta, the per-group
undated index, and the trace's per-job task index -- complementing the
end-to-end run equivalence in ``test_incremental_equivalence.py``.
"""

import random

import pytest

from repro.core.arrangement import CoflowArrangement
from repro.core.echelonflow import EchelonFlow
from repro.core.flow import Flow
from repro.scheduling import FairSharingScheduler
from repro.scheduling.base import Scheduler, SchedulerView
from repro.simulator import Engine
from repro.simulator.allocation import LinkAccounting, max_min_fair
from repro.simulator.network import CapacityViolation, NetworkModel
from repro.simulator.trace import SimulationTrace, TaskEvent
from repro.topology import big_switch, two_hosts
from repro.topology.routing import ShortestPathRouter


def _network(topology, incremental, strict=True):
    return NetworkModel(
        topology, ShortestPathRouter(topology), strict=strict, incremental=incremental
    )


def _flow(src, dst, size, **kwargs):
    return Flow(src=src, dst=dst, size=size, **kwargs)


# ---------------------------------------------------------------------------
# LinkAccounting
# ---------------------------------------------------------------------------


class TestLinkAccounting:
    def _links_of(self, network, flow_id):
        return network.path(flow_id)

    def test_watch_apply_unwatch_roundtrip(self):
        topo = big_switch(2, 10.0)
        net = _network(topo, incremental=True)
        flow = _flow("h0", "h1", 100.0)
        net.inject(flow, 0.0)
        acc = net.accounting
        path = net.path(flow.flow_id)
        keys = [link.key for link in path]

        # Registered at rate 0: member of every link, no load anywhere.
        for key in keys:
            assert flow.flow_id in acc.flows_on[key]
            assert acc.loads[key] == 0.0
            assert acc.nonzero[key] == 0
        assert net.link_usage() == {}

        net.set_rates({flow.flow_id: 4.0})
        for key in keys:
            assert acc.loads[key] == 4.0
            assert acc.nonzero[key] == 1
        assert net.link_usage() == {link: 4.0 for link in path}

        # Retiring releases the load and hard-resets the idle links.
        net.advance(100.0 / 4.0, 0.0)
        for key in keys:
            assert flow.flow_id not in acc.flows_on[key]
            assert acc.loads[key] == 0.0
            assert acc.nonzero[key] == 0
        assert net.link_usage() == {}

    def test_feasible_with_deltas_matches_capacity_rule(self):
        acc = LinkAccounting()
        link = big_switch(2, 10.0).link("h0", "core")
        acc.watch(1, [link])
        acc.apply([link], 0.0, 6.0)
        assert acc.feasible_with_deltas({link.key: 3.9})
        assert not acc.feasible_with_deltas({link.key: 4.1})
        # The same lenient boundary as allocation.feasible().
        assert acc.feasible_with_deltas({link.key: 4.0 + 9.0e-6})
        assert not acc.feasible_with_deltas({link.key: 4.0 + 2.0e-5})

    def test_usage_filters_by_exact_counters(self):
        acc = LinkAccounting()
        link = big_switch(2, 10.0).link("h0", "core")
        acc.watch(1, [link])
        acc.watch(2, [link])
        acc.apply([link], 0.0, 2.0)
        acc.apply([link], 0.0, 3.0)
        assert acc.usage() == {link: 5.0}
        acc.apply([link], 2.0, 0.0)
        acc.apply([link], 3.0, 0.0)
        # Loads may hold float dust, but zero *counted* flows means absent.
        assert acc.usage() == {}


# ---------------------------------------------------------------------------
# lazy drain + state access
# ---------------------------------------------------------------------------


class TestLazyDrain:
    @pytest.mark.parametrize("incremental", [True, False])
    def test_state_read_materializes_drain(self, incremental):
        net = _network(two_hosts(1.0), incremental)
        flow = _flow("h0", "h1", 10.0)
        net.inject(flow, 0.0)
        net.set_rates({flow.flow_id: 1.0})
        assert net.advance(4.0, 0.0) == []
        # No sync happened for the surviving flow, yet reads see the drain.
        assert net.state(flow.flow_id).remaining == pytest.approx(6.0)
        assert net.bytes_delivered == pytest.approx(4.0)

    @pytest.mark.parametrize("incremental", [True, False])
    def test_active_states_syncs_everyone(self, incremental):
        net = _network(big_switch(4, 10.0), incremental)
        flows = [_flow(f"h{i}", f"h{(i + 1) % 4}", 10.0) for i in range(4)]
        for flow in flows:
            net.inject(flow, 0.0)
        net.set_rates({flow.flow_id: 2.0 for flow in flows})
        net.advance(1.0, 0.0)
        states = net.active_states()
        assert [s.flow.flow_id for s in states] == sorted(f.flow_id for f in flows)
        for state in states:
            assert state.remaining == pytest.approx(8.0)

    @pytest.mark.parametrize("incremental", [True, False])
    def test_zero_rate_flows_never_drift(self, incremental):
        net = _network(two_hosts(1.0), incremental)
        flow = _flow("h0", "h1", 10.0)
        net.inject(flow, 0.0)
        net.advance(5.0, 0.0)
        assert net.state(flow.flow_id).remaining == 10.0
        assert net.earliest_finish_interval() == float("inf")


# ---------------------------------------------------------------------------
# set_rates: dirty set, strictness, scaling
# ---------------------------------------------------------------------------


class TestSetRates:
    @pytest.mark.parametrize("incremental", [True, False])
    def test_negative_rate_rejected(self, incremental):
        net = _network(two_hosts(1.0), incremental)
        flow = _flow("h0", "h1", 10.0)
        net.inject(flow, 0.0)
        with pytest.raises(ValueError):
            net.set_rates({flow.flow_id: -1.0})

    @pytest.mark.parametrize("incremental", [True, False])
    def test_strict_violation_mutates_nothing(self, incremental):
        net = _network(two_hosts(1.0), incremental, strict=True)
        a, b = _flow("h0", "h1", 10.0), _flow("h0", "h1", 10.0)
        net.inject(a, 0.0)
        net.inject(b, 0.0)
        net.set_rates({a.flow_id: 0.5, b.flow_id: 0.25})
        with pytest.raises(CapacityViolation):
            net.set_rates({a.flow_id: 0.9, b.flow_id: 0.9})
        # The pre-violation allocation survives untouched.
        assert net.state(a.flow_id).rate == 0.5
        assert net.state(b.flow_id).rate == 0.25
        assert net.earliest_finish_interval() == pytest.approx(20.0)

    def test_unchanged_rates_do_not_grow_the_heap(self):
        net = _network(two_hosts(1.0), incremental=True)
        a, b = _flow("h0", "h1", 10.0), _flow("h0", "h1", 10.0)
        net.inject(a, 0.0)
        net.inject(b, 0.0)
        net.set_rates({a.flow_id: 0.5, b.flow_id: 0.25})
        before = len(net._finish_heap)
        for _ in range(50):
            net.set_rates({a.flow_id: 0.5, b.flow_id: 0.25})
        assert len(net._finish_heap) == before

    def test_heap_stays_compact_under_repacing(self):
        net = _network(two_hosts(1.0), incremental=True)
        flows = [_flow("h0", "h1", 1000.0) for _ in range(8)]
        for flow in flows:
            net.inject(flow, 0.0)
        rng = random.Random(3)
        for _ in range(200):
            shares = [rng.random() for _ in flows]
            total = sum(shares) * 1.25
            net.set_rates(
                {f.flow_id: s / total for f, s in zip(flows, shares)}
            )
        assert len(net._finish_heap) <= max(64, 4 * net.active_count)


# ---------------------------------------------------------------------------
# twin-network differential fuzz: heap/index vs. full scans
# ---------------------------------------------------------------------------


class TestTwinNetworkFuzz:
    @pytest.mark.parametrize("seed", [1, 7, 23])
    def test_random_op_sequences_agree_exactly(self, seed):
        topo = big_switch(4, 10.0)
        inc = _network(topo, incremental=True, strict=False)
        ref = _network(topo, incremental=False, strict=False)
        rng = random.Random(seed)
        now = 0.0
        next_flows = []

        for step in range(300):
            op = rng.random()
            if op < 0.25 or not inc.active_count:
                src = rng.randrange(4)
                dst = (src + rng.randrange(1, 4)) % 4
                flow = _flow(
                    f"h{src}",
                    f"h{dst}",
                    0.5 + rng.random() * 5.0,
                    group_id=f"g{rng.randrange(3)}" if rng.random() < 0.7 else None,
                )
                inc.inject(flow, now)
                ref.inject(flow, now)
                next_flows.append(flow.flow_id)
            elif op < 0.6:
                rates = {
                    s.flow.flow_id: rng.random() * 4.0
                    for s in inc.iter_active()
                    if rng.random() < 0.8
                }
                inc.set_rates(rates)
                ref.set_rates(rates)
            else:
                horizon = inc.earliest_finish_interval()
                if horizon == float("inf"):
                    dt = rng.random()
                else:
                    dt = horizon * rng.choice([0.5, 1.0, 1.0])
                done_inc = inc.advance(dt, now)
                done_ref = ref.advance(dt, now)
                now += dt
                assert [s.flow.flow_id for s in done_inc] == [
                    s.flow.flow_id for s in done_ref
                ]
                assert [s.finish_time for s in done_inc] == [
                    s.finish_time for s in done_ref
                ]

            # Observable state must agree exactly after every operation.
            assert inc.earliest_finish_interval() == ref.earliest_finish_interval()
            assert inc.link_usage() == ref.link_usage()
            inc_states = inc.active_states()
            ref_states = ref.active_states()
            assert [s.flow.flow_id for s in inc_states] == [
                s.flow.flow_id for s in ref_states
            ]
            assert [s.remaining for s in inc_states] == [
                s.remaining for s in ref_states
            ]
            assert [s.rate for s in inc_states] == [s.rate for s in ref_states]
            assert [
                (gid, [s.flow.flow_id for s in states])
                for gid, states in inc.group_buckets()
            ] == [
                (gid, [s.flow.flow_id for s in states])
                for gid, states in ref.group_buckets()
            ]


# ---------------------------------------------------------------------------
# group buckets
# ---------------------------------------------------------------------------


class TestGroupBuckets:
    @pytest.mark.parametrize("incremental", [True, False])
    def test_sorted_by_group_none_last_fids_ascending(self, incremental):
        net = _network(big_switch(4, 10.0), incremental)
        flows = [
            _flow("h0", "h1", 5.0, group_id="b"),
            _flow("h1", "h2", 5.0, group_id="a"),
            _flow("h2", "h3", 5.0),
            _flow("h3", "h0", 5.0, group_id="a"),
        ]
        for flow in flows:
            net.inject(flow, 0.0)
        buckets = net.group_buckets()
        assert [gid for gid, _ in buckets] == ["a", "b", None]
        a_bucket = dict((gid, states) for gid, states in buckets)["a"]
        assert [s.flow.flow_id for s in a_bucket] == sorted(
            [flows[1].flow_id, flows[3].flow_id]
        )

    @pytest.mark.parametrize("incremental", [True, False])
    def test_retirement_empties_buckets(self, incremental):
        net = _network(two_hosts(1.0), incremental)
        flow = _flow("h0", "h1", 1.0, group_id="g")
        net.inject(flow, 0.0)
        net.set_rates({flow.flow_id: 1.0})
        net.advance(1.0, 0.0)
        assert net.group_buckets() == []


# ---------------------------------------------------------------------------
# scheduler-view delta + persistence
# ---------------------------------------------------------------------------


class _ViewProbe(Scheduler):
    name = "view-probe"

    def __init__(self):
        self.views = []
        self.deltas = []

    def allocate(self, view):
        self.views.append(view)
        self.deltas.append((view.injected_flows, view.departed_flows))
        demands = view.flow_demands()
        if not demands:
            return {}
        return max_min_fair(demands)


class TestViewDelta:
    def test_incremental_engine_reuses_one_view_with_deltas(self):
        engine = Engine(big_switch(4, 4.0), _ViewProbe(), incremental=True)
        flows = [_flow(f"h{i}", f"h{(i + 1) % 4}", float(i + 1)) for i in range(3)]
        for i, flow in enumerate(flows):
            engine.inject_background_flow(flow, at_time=0.1 * i)
        engine.run()
        probe = engine.scheduler
        assert len(set(map(id, probe.views))) == 1  # persistent view
        injected_seen = [fid for inj, _ in probe.deltas for fid in inj]
        departed_seen = [fid for _, dep in probe.deltas for fid in dep]
        assert sorted(injected_seen) == sorted(f.flow_id for f in flows)
        # Departure deltas surface on the invocations after each finish
        # (the final departures happen after the last reschedule).
        assert set(departed_seen) <= {f.flow_id for f in flows}
        first_injected = probe.deltas[0][0]
        assert flows[0].flow_id in first_injected

    def test_legacy_engine_builds_fresh_views(self):
        engine = Engine(big_switch(4, 4.0), _ViewProbe(), incremental=False)
        for i in range(3):
            engine.inject_background_flow(
                _flow(f"h{i}", f"h{i + 1}", float(i + 1)), at_time=0.1 * i
            )
        engine.run()
        probe = engine.scheduler
        assert len(set(map(id, probe.views))) == len(probe.views)

    def test_direct_view_construction_has_empty_delta(self):
        net = _network(two_hosts(1.0), incremental=True)
        view = SchedulerView(now=0.0, network=net)
        assert view.injected_flows == ()
        assert view.departed_flows == ()


# ---------------------------------------------------------------------------
# per-group undated index (Engine._inject_flow)
# ---------------------------------------------------------------------------


class TestUndatedIndex:
    @pytest.mark.parametrize("incremental", [True, False])
    def test_late_head_dates_earlier_members(self, incremental):
        engine = Engine(
            big_switch(4, 10.0), FairSharingScheduler(), incremental=incremental
        )
        group = EchelonFlow("ef", CoflowArrangement())
        engine.register_echelonflow(group)
        followers = [
            _flow("h0", "h1", 5.0, group_id="ef", index_in_group=1),
            _flow("h1", "h2", 5.0, group_id="ef", index_in_group=2),
        ]
        head = _flow("h2", "h3", 5.0, group_id="ef", index_in_group=0)

        engine._inject_flow(followers[0], owner=None)
        engine._inject_flow(followers[1], owner=None)
        undated = [
            s
            for s in engine.network.active_states()
            if s.ideal_finish_time is None
        ]
        assert len(undated) == 2
        if incremental:
            assert [s.flow.flow_id for s in engine._undated["ef"]] == [
                f.flow_id for f in followers
            ]

        # The head pins the reference; everyone gets dated, index drained.
        engine._inject_flow(head, owner=None)
        for state in engine.network.active_states():
            assert state.ideal_finish_time == group.ideal_finish_time_of(state.flow)
        assert "ef" not in engine._undated

    def test_undated_flow_that_finishes_leaves_the_index(self):
        engine = Engine(
            big_switch(4, 10.0), FairSharingScheduler(), incremental=True
        )
        engine.register_echelonflow(EchelonFlow("ef", CoflowArrangement()))
        follower = _flow("h0", "h1", 1.0, group_id="ef", index_in_group=1)
        engine.inject_background_flow(follower, at_time=0.0)
        engine.run()
        assert engine._undated == {}


# ---------------------------------------------------------------------------
# trace per-job task index + job_completion_time
# ---------------------------------------------------------------------------


class TestTraceJobIndex:
    def test_task_events_of_job_matches_linear_filter(self):
        trace = SimulationTrace()
        for i in range(20):
            trace.task_events.append(
                TaskEvent(
                    task_id=f"t{i}",
                    kind="compute",
                    time=float(i),
                    job_id=f"job{i % 3}",
                )
            )
        for job in ("job0", "job1", "job2", "missing"):
            expected = [e for e in trace.task_events if e.job_id == job]
            assert trace.task_events_of_job(job) == expected

    def test_index_absorbs_appends_incrementally(self):
        trace = SimulationTrace()
        trace.task_events.append(TaskEvent("a", "compute", 1.0, "j"))
        assert [e.task_id for e in trace.task_events_of_job("j")] == ["a"]
        trace.task_events.append(TaskEvent("b", "comm", 2.0, "j"))
        assert [e.task_id for e in trace.task_events_of_job("j")] == ["a", "b"]


# ---------------------------------------------------------------------------
# fair-share fast path
# ---------------------------------------------------------------------------


class TestFairshareFastPath:
    def test_unweighted_fast_path_matches_weighted_route(self):
        net = _network(big_switch(4, 10.0), incremental=True)
        for i in range(6):
            net.inject(_flow(f"h{i % 4}", f"h{(i + 1) % 4}", 10.0, job_id="j"), 0.0)
        view = SchedulerView(now=0.0, network=net)
        fast = FairSharingScheduler().allocate(view)
        slow = FairSharingScheduler(weight_by_job={"other": 2.0}).allocate(view)
        assert fast == slow

    def test_cached_demands_are_reused(self):
        net = _network(two_hosts(1.0), incremental=True)
        flow = _flow("h0", "h1", 10.0)
        net.inject(flow, 0.0)
        assert net.demand(flow.flow_id) is net.demand(flow.flow_id)
        assert net.demands()[0] is net.demand(flow.flow_id)
