"""Reference core == incremental core == vector kernel, bit for bit.

Every scenario is simulated three times -- ``allocation="reference"``
(full scans per event, the pre-refactor cost model),
``allocation="incremental"`` (finish-time heap, residual accounting,
dirty-set rates, persistent scheduler view), and ``allocation="vector"``
(the incremental engine dispatching the numpy waterfilling kernel and
bulk ``set_rates``) -- and all runs must agree *exactly*: the same flow
records (starts, finishes, ideal finishes), the same task/compute
events, the same end time, and the same rate allocation at every
scheduler invocation.

Flow ids come from a global counter, so two builds of the same scenario
number their flows differently; comparisons use structural keys (src,
dst, size, group, index, job, tag) instead of ids. ``bytes_delivered``
accumulates in different orders between the modes (sync order vs. scan
order), so it alone is compared approximately.
"""

import random

import pytest

from repro.core.flow import Flow
from repro.core.units import gbps, megabytes
from repro.scheduling import (
    CoflowMaddScheduler,
    EchelonMaddScheduler,
    FairSharingScheduler,
    SincroniaScheduler,
)
from repro.scheduling.base import Scheduler
from repro.simulator import Engine
from repro.simulator.vector import HAVE_NUMPY
from repro.topology import big_switch, leaf_spine, two_hosts
from repro.workloads import (
    build_dp_allreduce,
    build_dp_ps,
    build_fsdp,
    build_pipeline_segment,
    build_pp_gpipe,
    build_tp_megatron,
    uniform_model,
)

# ---------------------------------------------------------------------------
# comparison machinery
# ---------------------------------------------------------------------------


def _flow_key(flow: Flow):
    return (
        flow.src,
        flow.dst,
        flow.size,
        flow.group_id or "",
        flow.index_in_group,
        flow.job_id or "",
        flow.tag,
    )


class _RecordingScheduler(Scheduler):
    """Wraps a scheduler and logs every allocation, structurally keyed."""

    name = "recording"

    def __init__(self, inner: Scheduler) -> None:
        self.inner = inner
        self.log = []

    def allocate(self, view):
        rates = self.inner.allocate(view)
        entry = tuple(
            sorted(
                _flow_key(state.flow) + (rates.get(state.flow.flow_id, 0.0),)
                for state in view.active_states()
            )
        )
        self.log.append((view.now, view.trigger_cause, entry))
        return rates


def _run(engine_factory, scheduler_factory, allocation: str):
    recorder = _RecordingScheduler(scheduler_factory())
    engine = engine_factory(recorder, allocation)
    trace = engine.run()
    return engine, recorder, trace


def _flow_records_key(trace):
    return sorted(
        _flow_key(r.flow)
        + (r.start, r.finish, r.ideal_finish is None, r.ideal_finish or 0.0)
        for r in trace.flow_records
    )


def assert_equivalent(engine_factory, scheduler_factory):
    ref_engine, ref_rec, ref_trace = _run(
        engine_factory, scheduler_factory, "reference"
    )
    for mode in ("incremental", "vector"):
        if mode == "vector" and not HAVE_NUMPY:
            continue
        inc_engine, inc_rec, inc_trace = _run(
            engine_factory, scheduler_factory, mode
        )

        # Identical traces: every delivered flow, exactly when it started
        # and finished, against exactly which deadline.
        assert _flow_records_key(inc_trace) == _flow_records_key(ref_trace)
        assert [
            (e.task_id, e.kind, e.time, e.job_id) for e in inc_trace.task_events
        ] == [(e.task_id, e.kind, e.time, e.job_id) for e in ref_trace.task_events]
        assert [
            (s.task_id, s.device, s.start, s.end, s.job_id, s.tag)
            for s in inc_trace.compute_spans
        ] == [
            (s.task_id, s.device, s.start, s.end, s.job_id, s.tag)
            for s in ref_trace.compute_spans
        ]
        assert inc_trace.end_time == ref_trace.end_time

        # Identical allocations at every single reschedule.
        assert inc_engine.scheduler_invocations == ref_engine.scheduler_invocations
        assert len(inc_rec.log) == len(ref_rec.log)
        for (inc_now, inc_cause, inc_rates), (ref_now, ref_cause, ref_rates) in zip(
            inc_rec.log, ref_rec.log
        ):
            assert inc_now == ref_now
            assert inc_cause == ref_cause
            assert inc_rates == ref_rates

        # Byte conservation agrees up to float association order.
        assert inc_engine.network.bytes_delivered == pytest.approx(
            ref_engine.network.bytes_delivered, rel=1e-9
        )


# ---------------------------------------------------------------------------
# scenarios
# ---------------------------------------------------------------------------

_MODEL = uniform_model(
    "u8",
    8,
    param_bytes_per_layer=megabytes(30),
    activation_bytes=megabytes(15),
    forward_time=0.004,
)


def _fig2_factory(scheduler, allocation):
    engine = Engine(two_hosts(1.0), scheduler, allocation=allocation)
    job = build_pipeline_segment(
        "fig2", "h0", "h1", [0.0, 1.0, 2.0], [2.0, 2.0, 2.0], [2.0, 2.0, 2.0]
    )
    job.submit_to(engine)
    return engine


def _multijob_factory(interval):
    def factory(scheduler, allocation):
        topology = leaf_spine(
            n_leaves=4, hosts_per_leaf=4, host_bandwidth=gbps(10), oversubscription=2.0
        )
        engine = Engine(
            topology,
            scheduler,
            scheduling_interval=interval,
            allocation=allocation,
        )
        jobs = [
            build_pp_gpipe(
                "pp", _MODEL, ["h0", "h4", "h8", "h12"], num_micro_batches=4
            ),
            build_fsdp("fsdp", _MODEL, ["h1", "h5", "h9", "h13"]),
            build_dp_allreduce(
                "dp", _MODEL, ["h2", "h6", "h10", "h14"], bucket_bytes=megabytes(60)
            ),
        ]
        for job in jobs:
            job.submit_to(engine)
        return engine

    return factory


def _fsdp_factory(scheduler, allocation):
    topology = leaf_spine(
        n_leaves=2, hosts_per_leaf=2, host_bandwidth=gbps(10), oversubscription=2.0
    )
    engine = Engine(topology, scheduler, allocation=allocation)
    job = build_fsdp("fsdp", _MODEL, ["h0", "h1", "h2", "h3"])
    job.submit_to(engine)
    return engine


def _seeded_background_factory(interval):
    def factory(scheduler, allocation):
        topology = big_switch(8, host_bandwidth=4.0)
        engine = Engine(
            topology,
            scheduler,
            scheduling_interval=interval,
            allocation=allocation,
        )
        rng = random.Random(42)
        for i in range(60):
            src = rng.randrange(8)
            dst = (src + rng.randrange(1, 8)) % 8
            engine.inject_background_flow(
                Flow(
                    src=f"h{src}",
                    dst=f"h{dst}",
                    size=0.5 + rng.random() * 3.0,
                    job_id=f"job{i % 3}",
                    tag=f"bg{i}",
                ),
                at_time=rng.random() * 2.0,
            )
        return engine

    return factory


# ---------------------------------------------------------------------------
# the matrix
# ---------------------------------------------------------------------------


def test_fig2_echelon_equivalent():
    assert_equivalent(_fig2_factory, EchelonMaddScheduler)


def test_fig2_coflow_equivalent():
    assert_equivalent(_fig2_factory, CoflowMaddScheduler)


def test_fig2_fair_equivalent():
    assert_equivalent(_fig2_factory, FairSharingScheduler)


def test_multijob_echelon_per_event_equivalent():
    assert_equivalent(_multijob_factory(None), EchelonMaddScheduler)


def test_multijob_echelon_interval_equivalent():
    # Section 5's "per scheduling interval" rerun policy: departures do
    # not resync the allocation, so flows drain lazily across many events
    # between ticks -- the regime where the incremental core shortcuts
    # the most work.
    assert_equivalent(_multijob_factory(0.005), EchelonMaddScheduler)


def test_multijob_sincronia_equivalent():
    assert_equivalent(_multijob_factory(None), SincroniaScheduler)


def test_fsdp_echelon_equivalent():
    assert_equivalent(_fsdp_factory, EchelonMaddScheduler)


def test_fsdp_coflow_equivalent():
    assert_equivalent(_fsdp_factory, CoflowMaddScheduler)


def test_seeded_background_fair_per_event_equivalent():
    assert_equivalent(_seeded_background_factory(None), FairSharingScheduler)


def test_seeded_background_fair_interval_equivalent():
    assert_equivalent(_seeded_background_factory(0.25), FairSharingScheduler)


# ---------------------------------------------------------------------------
# Table-1 paradigms x scheduler matrix (reference == incremental == vector)
# ---------------------------------------------------------------------------

_SMALL = uniform_model(
    "u4",
    4,
    param_bytes_per_layer=megabytes(20),
    activation_bytes=megabytes(10),
    forward_time=0.004,
)

_HOSTS4 = ["h0", "h1", "h2", "h3"]


def _paradigm_factory(build):
    def factory(scheduler, allocation):
        engine = Engine(
            big_switch(5, host_bandwidth=gbps(10)),
            scheduler,
            allocation=allocation,
        )
        build().submit_to(engine)
        return engine

    return factory


_PARADIGMS = {
    "dp_allreduce": lambda: build_dp_allreduce(
        "dp", _SMALL, _HOSTS4, bucket_bytes=megabytes(40)
    ),
    "dp_ps": lambda: build_dp_ps(
        "ps", _SMALL, _HOSTS4, server="h4", bucket_bytes=megabytes(40)
    ),
    "pp_gpipe": lambda: build_pp_gpipe(
        "pp", _SMALL, _HOSTS4, num_micro_batches=2
    ),
    "fsdp": lambda: build_fsdp("fsdp", _SMALL, _HOSTS4),
    "tp_megatron": lambda: build_tp_megatron("tp", _SMALL, _HOSTS4),
}

_SCHEDULERS = {
    "echelon": EchelonMaddScheduler,
    "coflow": CoflowMaddScheduler,
    "fairshare": FairSharingScheduler,
}


@pytest.mark.parametrize("paradigm", sorted(_PARADIGMS))
@pytest.mark.parametrize("scheduler", sorted(_SCHEDULERS))
def test_paradigm_matrix_equivalent(paradigm, scheduler):
    assert_equivalent(
        _paradigm_factory(_PARADIGMS[paradigm]), _SCHEDULERS[scheduler]
    )
