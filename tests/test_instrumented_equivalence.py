"""Instrumented incremental core == instrumented reference core.

The incremental-equivalence suite proves the two cores simulate the same
run; this one proves they *observe* the same run: with a full
Instrumentation attached (event log, link timelines, rate recorder,
live-tardiness series), ``incremental=True`` and ``incremental=False``
must produce identical recordings.

Flow ids come from a global counter, so events are compared after
normalizing every flow id (and task ``flow_ids`` list) to the flow's
structural key; everything else must match field-for-field, in order.
"""

import pytest

from repro.core.units import gbps, megabytes
from repro.obs import Instrumentation, JsonlEventLog
from repro.scheduling import make_scheduler
from repro.simulator import Engine
from repro.topology import leaf_spine, two_hosts
from repro.workloads import (
    build_dp_allreduce,
    build_fsdp,
    build_pipeline_segment,
    build_pp_gpipe,
    uniform_model,
)

_MODEL = uniform_model(
    "u8",
    8,
    param_bytes_per_layer=megabytes(30),
    activation_bytes=megabytes(15),
    forward_time=0.004,
)


def _fig2_engine(scheduler, obs, incremental):
    engine = Engine(
        two_hosts(1.0), scheduler, instrumentation=obs, incremental=incremental
    )
    job = build_pipeline_segment(
        "fig2", "h0", "h1", [0.0, 1.0, 2.0], [2.0] * 3, [2.0] * 3
    )
    job.submit_to(engine)
    return engine


def _multijob_engine(scheduler, obs, incremental):
    topology = leaf_spine(
        n_leaves=4, hosts_per_leaf=4, host_bandwidth=gbps(10), oversubscription=2.0
    )
    engine = Engine(
        topology, scheduler, instrumentation=obs, incremental=incremental
    )
    jobs = [
        build_pp_gpipe("pp", _MODEL, ["h0", "h4", "h8", "h12"], num_micro_batches=4),
        build_fsdp("fsdp", _MODEL, ["h1", "h5", "h9", "h13"]),
        build_dp_allreduce(
            "dp", _MODEL, ["h2", "h6", "h10", "h14"], bucket_bytes=megabytes(60)
        ),
    ]
    for job in jobs:
        job.submit_to(engine)
    return engine


def _run_instrumented(engine_factory, scheduler_name, incremental):
    obs = Instrumentation(event_log=JsonlEventLog())
    engine = engine_factory(make_scheduler(scheduler_name), obs, incremental)
    trace = engine.run()
    return trace, obs


def _id_to_key(events):
    """flow id -> structural identity, from the log's own events."""
    keys = {}
    for event in events:
        if event.get("ev") in ("flow_injected", "flow_finished"):
            keys[event["flow_id"]] = (
                event.get("src"),
                event.get("dst"),
                event.get("size"),
                event.get("group") or "",
                event.get("index", 0),
                event.get("job") or "",
                event.get("tag") or "",
            )
    return keys


def _normalized_events(log):
    keys = _id_to_key(log.events)
    out = []
    for event in log.events:
        event = dict(event)
        if "flow_id" in event:
            event["flow_id"] = keys[event["flow_id"]]
        if "flow_ids" in event:
            event["flow_ids"] = sorted(keys[fid] for fid in event["flow_ids"])
        out.append(event)
    return out


def _normalized_rate_segments(obs):
    keys = _id_to_key(obs.event_log.events)
    recorder = obs.rate_recorder
    return {
        keys[flow_id]: segments
        for flow_id, segments in recorder.segments.items()
    }


def assert_instrumented_equivalent(engine_factory, scheduler_name):
    ref_trace, ref_obs = _run_instrumented(engine_factory, scheduler_name, False)
    inc_trace, inc_obs = _run_instrumented(engine_factory, scheduler_name, True)

    # Identical event logs (up to run-local flow numbering).
    assert _normalized_events(inc_obs.event_log) == _normalized_events(
        ref_obs.event_log
    )

    # Identical link-utilization timelines, segment for segment.
    assert inc_obs.link_timeline.capacities == ref_obs.link_timeline.capacities
    assert set(inc_obs.link_timeline.segments) == set(
        ref_obs.link_timeline.segments
    )
    for key, inc_series in inc_obs.link_timeline.segments.items():
        ref_series = ref_obs.link_timeline.segments[key]
        assert len(inc_series) == len(ref_series), key
        for inc_seg, ref_seg in zip(inc_series, ref_series):
            assert inc_seg[:2] == ref_seg[:2], key
            assert inc_seg[2] == pytest.approx(ref_seg[2], abs=1e-9), key

    # Identical live-tardiness series.
    assert inc_obs.tardiness_series == ref_obs.tardiness_series

    # Identical per-flow allocated-rate histories.
    assert _normalized_rate_segments(inc_obs) == _normalized_rate_segments(
        ref_obs
    )
    assert inc_obs.rate_recorder.evicted_flows == 0
    assert ref_obs.rate_recorder.evicted_flows == 0

    # And, of course, the same simulation underneath.
    assert inc_trace.end_time == ref_trace.end_time
    assert len(inc_trace.flow_records) == len(ref_trace.flow_records)


def test_fig2_fair_instrumented_equivalent():
    assert_instrumented_equivalent(_fig2_engine, "fair")


def test_fig2_echelon_instrumented_equivalent():
    assert_instrumented_equivalent(_fig2_engine, "echelon")


def test_multijob_echelon_instrumented_equivalent():
    assert_instrumented_equivalent(_multijob_engine, "echelon")


def test_multijob_coflow_instrumented_equivalent():
    assert_instrumented_equivalent(_multijob_engine, "coflow")
