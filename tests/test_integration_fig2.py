"""End-to-end reproduction of the Fig. 2 motivating example.

Setting: a pipeline-parallel boundary. The producer releases micro-batch
activations of 2B bytes at t = 0, 1, 2 over a B-bandwidth link; the consumer
computes each micro-batch for 2 time units, in order.

Expected (see EXPERIMENTS.md for the mapping to the paper's numbers):
EchelonFlow = 8 exactly (matches the paper's optimal 8); fair sharing and
Coflow are strictly worse, with Coflow worst -- the paper's headline
ordering "Coflow ... even longer than bandwidth fair sharing".
"""

import pytest

from repro.analysis import comp_finish_time, tardiness_report
from repro.scheduling import (
    CoflowMaddScheduler,
    EchelonMaddScheduler,
    FairSharingScheduler,
    PipelineStageSpec,
    ShortestFlowFirstScheduler,
    single_link_pipeline_optimum,
)
from repro.simulator import Engine
from repro.topology import two_hosts
from repro.workloads import build_pipeline_segment

RELEASES = [0.0, 1.0, 2.0]
SIZES = [2.0, 2.0, 2.0]
COMPUTES = [2.0, 2.0, 2.0]


def _run(scheduler):
    job = build_pipeline_segment(
        "fig2", "h0", "h1", RELEASES, SIZES, COMPUTES
    )
    engine = Engine(two_hosts(1.0), scheduler)
    job.submit_to(engine)
    trace = engine.run()
    return trace, job


def test_echelonflow_achieves_the_paper_value_of_8():
    trace, _job = _run(EchelonMaddScheduler())
    assert comp_finish_time(trace) == pytest.approx(8.0)


def test_echelonflow_matches_the_oracle_optimum():
    stages = [
        PipelineStageSpec(release_time=r, flow_size=s, compute_time=c)
        for r, s, c in zip(RELEASES, SIZES, COMPUTES)
    ]
    optimum, _, _ = single_link_pipeline_optimum(stages, bandwidth=1.0)
    trace, _job = _run(EchelonMaddScheduler())
    assert comp_finish_time(trace) == pytest.approx(optimum)


def test_echelonflow_flow_finishes_are_staggered():
    trace, _job = _run(EchelonMaddScheduler())
    finishes = sorted(r.finish for r in trace.flow_records)
    assert finishes == [pytest.approx(2.0), pytest.approx(4.0), pytest.approx(6.0)]


def test_fair_sharing_is_worse_than_echelon():
    fair, _ = _run(FairSharingScheduler())
    assert comp_finish_time(fair) == pytest.approx(9.5)


def test_coflow_is_worst_even_worse_than_fair_sharing():
    """The paper's key observation about Coflow on pipeline traffic."""
    fair, _ = _run(FairSharingScheduler())
    coflow, _ = _run(CoflowMaddScheduler())
    echelon, _ = _run(EchelonMaddScheduler())
    assert comp_finish_time(echelon) < comp_finish_time(fair)
    assert comp_finish_time(fair) < comp_finish_time(coflow)


def test_coflow_finishes_flows_simultaneously():
    trace, _job = _run(CoflowMaddScheduler())
    finishes = [r.finish for r in trace.flow_records]
    assert max(finishes) - min(finishes) == pytest.approx(0.0, abs=1e-6)


def test_echelon_tardiness_is_uniform_across_flows():
    """All flows share the same tardiness: the formation is maintained."""
    trace, job = _run(EchelonMaddScheduler())
    tardies = [r.tardiness for r in trace.flow_records]
    assert all(t == pytest.approx(2.0) for t in tardies)
    report = tardiness_report(trace, job.echelonflows)
    assert report.worst == pytest.approx(2.0)


def test_echelon_tardiness_below_all_baselines():
    results = {}
    for scheduler in (
        EchelonMaddScheduler(),
        FairSharingScheduler(),
        CoflowMaddScheduler(),
        ShortestFlowFirstScheduler(),
    ):
        trace, job = _run(scheduler)
        results[scheduler.name] = tardiness_report(trace, job.echelonflows).worst
    assert results["echelon"] == min(results.values())
