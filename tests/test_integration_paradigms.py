"""Table 1 end-to-end: Coflow compliance per training paradigm.

For Coflow-compliant paradigms (DP-AllReduce, DP-PS, TP) EchelonFlow
scheduling should match Coflow scheduling; for PP and FSDP the staggered
arrangements should strictly beat Coflow's simultaneous finishes.
"""

import pytest

from repro.analysis import comp_finish_time
from repro.core.units import gbps, megabytes
from repro.scheduling import (
    CoflowMaddScheduler,
    EchelonMaddScheduler,
    FairSharingScheduler,
)
from repro.simulator import Engine
from repro.topology import big_switch, linear_chain
from repro.workloads import (
    build_dp_allreduce,
    build_dp_ps,
    build_fsdp,
    build_pp_gpipe,
    build_tp_megatron,
    uniform_model,
)

MODEL = uniform_model(
    "u8",
    8,
    param_bytes_per_layer=megabytes(40),
    activation_bytes=megabytes(20),
    forward_time=0.004,
)
HOSTS4 = ["h0", "h1", "h2", "h3"]


def _measure(build, topo_factory, scheduler):
    job = build()
    engine = Engine(topo_factory(), scheduler)
    job.submit_to(engine)
    trace = engine.run()
    assert engine.completed_jobs == [job.job_id]
    return comp_finish_time(trace)


def _sweep(build, topo_factory):
    return {
        name: _measure(build, topo_factory, scheduler)
        for name, scheduler in (
            ("fair", FairSharingScheduler()),
            ("coflow", CoflowMaddScheduler()),
            ("echelon", EchelonMaddScheduler()),
        )
    }


class TestCoflowCompliantParadigms:
    def test_dp_allreduce_echelon_equals_coflow(self):
        results = _sweep(
            lambda: build_dp_allreduce("j", MODEL, HOSTS4, bucket_bytes=megabytes(80)),
            lambda: big_switch(4, gbps(10)),
        )
        assert results["echelon"] == pytest.approx(results["coflow"], rel=1e-6)

    def test_dp_ps_echelon_equals_coflow(self):
        results = _sweep(
            lambda: build_dp_ps(
                "j", MODEL, HOSTS4, "h4", bucket_bytes=megabytes(80)
            ),
            lambda: big_switch(5, gbps(10)),
        )
        assert results["echelon"] == pytest.approx(results["coflow"], rel=1e-6)

    def test_tp_echelon_equals_coflow(self):
        results = _sweep(
            lambda: build_tp_megatron("j", MODEL, HOSTS4),
            lambda: big_switch(4, gbps(10)),
        )
        assert results["echelon"] == pytest.approx(results["coflow"], rel=1e-6)


class TestNonCompliantParadigms:
    def test_pp_echelon_beats_both_and_coflow_is_worst(self):
        results = _sweep(
            lambda: build_pp_gpipe("j", MODEL, HOSTS4, num_micro_batches=4),
            lambda: linear_chain(4, gbps(10)),
        )
        assert results["echelon"] < results["fair"]
        assert results["fair"] < results["coflow"]

    def test_fsdp_echelon_beats_both_and_coflow_is_worst(self):
        results = _sweep(
            lambda: build_fsdp("j", MODEL, HOSTS4),
            lambda: big_switch(4, gbps(10)),
        )
        assert results["echelon"] < results["fair"]
        assert results["fair"] < results["coflow"]

    def test_fsdp_speedup_is_substantial(self):
        results = _sweep(
            lambda: build_fsdp("j", MODEL, HOSTS4),
            lambda: big_switch(4, gbps(10)),
        )
        assert results["coflow"] / results["echelon"] > 1.2


class TestMultiIterationStability:
    def test_pp_iterations_scale_linearly_under_echelon(self):
        def run(iterations):
            job = build_pp_gpipe(
                "j", MODEL, HOSTS4, num_micro_batches=4, iterations=iterations
            )
            engine = Engine(linear_chain(4, gbps(10)), EchelonMaddScheduler())
            job.submit_to(engine)
            return engine.run().end_time

        t1, t3 = run(1), run(3)
        assert t3 == pytest.approx(3 * t1, rel=0.05)
