"""Experiment matrices and the standard battery."""

import pytest

from repro.analysis import (
    ExperimentCase,
    MatrixResult,
    run_matrix,
    standard_battery,
)
from repro.core.units import gbps, megabytes
from repro.scheduling import make_scheduler
from repro.topology import big_switch
from repro.workloads import build_dp_allreduce, uniform_model

MODEL = uniform_model(
    "u4",
    4,
    param_bytes_per_layer=megabytes(10),
    activation_bytes=megabytes(5),
    forward_time=0.002,
)


def _tiny_case(name="dp"):
    return ExperimentCase(
        name,
        lambda: build_dp_allreduce(
            "j", MODEL, ["h0", "h1"], bucket_bytes=megabytes(20)
        ),
        lambda: big_switch(2, gbps(10)),
    )


def test_run_matrix_fills_grid():
    schedulers = {
        "fair": lambda: make_scheduler("fair"),
        "echelon": lambda: make_scheduler("echelon"),
    }
    result = run_matrix([_tiny_case()], schedulers)
    assert result.cases == ["dp"]
    assert set(result.values["dp"]) == {"fair", "echelon"}
    assert result.value("dp", "fair") > 0


def test_completion_metric_includes_trailing_comm():
    schedulers = {"echelon": lambda: make_scheduler("echelon")}
    comp = run_matrix([_tiny_case()], schedulers, metric="comp_finish")
    full = run_matrix([_tiny_case()], schedulers, metric="completion")
    assert full.value("dp", "echelon") > comp.value("dp", "echelon")


def test_invalid_metric():
    with pytest.raises(ValueError):
        run_matrix([_tiny_case()], {}, metric="latency")


def test_best_and_speedup():
    result = MatrixResult(cases=["w"], schedulers=["a", "b"])
    result.values["w"] = {"a": 2.0, "b": 1.0}
    assert result.best_scheduler("w") == "b"
    assert result.speedup("w", "b", baseline="a") == pytest.approx(2.0)


def test_to_table_renders():
    result = MatrixResult(cases=["w"], schedulers=["a"])
    result.values["w"] = {"a": 1.5}
    table = result.to_table(title="T")
    assert "T" in table and "1.5" in table and "best" in table


def test_standard_battery_shape():
    cases = standard_battery(model=MODEL, workers=4, micro_batches=2)
    names = [case.name for case in cases]
    assert names == [
        "dp-allreduce",
        "dp-ps",
        "pp-gpipe",
        "pp-1f1b",
        "tp",
        "fsdp",
        "hybrid-3d",
    ]


def test_standard_battery_small_worker_count_skips_hybrid():
    cases = standard_battery(model=MODEL, workers=2, micro_batches=2)
    assert "hybrid-3d" not in [case.name for case in cases]


def test_battery_runs_end_to_end():
    cases = standard_battery(model=MODEL, workers=2, micro_batches=2)
    schedulers = {"echelon": lambda: make_scheduler("echelon")}
    result = run_matrix(cases, schedulers)
    for case in result.cases:
        assert result.value(case, "echelon") > 0
