"""Decision reuse across iterations (MemoizingScheduler)."""

import pytest

from repro import Engine, big_switch, linear_chain
from repro.core.units import gbps, megabytes
from repro.scheduling import EchelonMaddScheduler, MemoizingScheduler
from repro.workloads import build_dp_allreduce, build_pp_gpipe, uniform_model

MODEL = uniform_model(
    "u8",
    8,
    param_bytes_per_layer=megabytes(40),
    activation_bytes=megabytes(20),
    forward_time=0.004,
)
HOSTS = ["h0", "h1", "h2", "h3"]


def _run_pp(scheduler, iterations):
    job = build_pp_gpipe(
        "j", MODEL, HOSTS, num_micro_batches=4, iterations=iterations
    )
    engine = Engine(linear_chain(4, gbps(3)), scheduler)
    job.submit_to(engine)
    return engine.run()


def test_identical_schedule_to_inner():
    cached = MemoizingScheduler(EchelonMaddScheduler())
    trace_cached = _run_pp(cached, 5)
    trace_plain = _run_pp(EchelonMaddScheduler(), 5)
    assert trace_cached.end_time == pytest.approx(trace_plain.end_time, abs=1e-12)
    cached_finishes = sorted(r.finish for r in trace_cached.flow_records)
    plain_finishes = sorted(r.finish for r in trace_plain.flow_records)
    assert cached_finishes == pytest.approx(plain_finishes)


def test_hit_rate_grows_with_iterations():
    """Iterative structure: hit rate approaches (k-1)/k over k iterations."""
    one = MemoizingScheduler(EchelonMaddScheduler())
    _run_pp(one, 1)
    many = MemoizingScheduler(EchelonMaddScheduler())
    _run_pp(many, 10)
    assert one.hit_rate == 0.0
    assert many.hit_rate > 0.85


def test_works_for_dp_too():
    scheduler = MemoizingScheduler(EchelonMaddScheduler())
    job = build_dp_allreduce(
        "j", MODEL, HOSTS, bucket_bytes=megabytes(80), iterations=6
    )
    engine = Engine(big_switch(4, gbps(10)), scheduler)
    job.submit_to(engine)
    engine.run()
    assert scheduler.hit_rate > 0.7


def test_lru_eviction_bounds_memory():
    scheduler = MemoizingScheduler(EchelonMaddScheduler(), max_entries=4)
    _run_pp(scheduler, 3)
    assert len(scheduler._cache) <= 4


def test_clear_resets_counters():
    scheduler = MemoizingScheduler(EchelonMaddScheduler())
    _run_pp(scheduler, 2)
    scheduler.clear()
    assert scheduler.hits == 0 and scheduler.misses == 0
    assert scheduler.hit_rate == 0.0


def test_validation():
    with pytest.raises(ValueError):
        MemoizingScheduler(EchelonMaddScheduler(), max_entries=0)


def test_different_situations_do_not_collide():
    """Same topology, different flow sizes: distinct fingerprints."""
    scheduler = MemoizingScheduler(EchelonMaddScheduler())
    small = build_dp_allreduce("a", MODEL, HOSTS, bucket_bytes=megabytes(80))
    engine = Engine(big_switch(4, gbps(10)), scheduler)
    small.submit_to(engine)
    engine.run()
    misses_after_first = scheduler.misses

    big_model = MODEL.scaled(size_scale=2.0)
    engine2 = Engine(big_switch(4, gbps(10)), scheduler)
    build_dp_allreduce("b", big_model, HOSTS, bucket_bytes=megabytes(160)).submit_to(
        engine2
    )
    engine2.run()
    # The second job's flows are twice the size: all fresh situations.
    assert scheduler.misses > misses_after_first
