"""Grab-bag coverage: smaller API surfaces exercised directly."""

import pytest

from repro import Engine, big_switch, two_hosts
from repro.core.flow import Flow
from repro.scheduling import FairSharingScheduler
from repro.simulator import TaskDag


class TestTraceQueries:
    def _trace(self):
        engine = Engine(big_switch(3, 10.0), FairSharingScheduler())
        dag_a = TaskDag("a")
        dag_a.add_compute("c", device="h0", duration=1.0, tag="work 1")
        dag_a.add_comm("x", [Flow("h0", "h1", 5.0, job_id="a", group_id="g")])
        engine.submit(dag_a)
        dag_b = TaskDag("b")
        dag_b.add_compute("c", device="h2", duration=2.0)
        engine.submit(dag_b)
        engine.run()
        return engine.trace

    def test_flows_of_job_and_group(self):
        trace = self._trace()
        assert len(trace.flows_of_job("a")) == 1
        assert len(trace.flows_of_job("b")) == 0
        assert len(trace.flows_of_group("g")) == 1
        assert len(trace.flows_of_group("ghost")) == 0

    def test_spans_of_job_and_device(self):
        trace = self._trace()
        assert {s.job_id for s in trace.spans_of_job("a")} == {"a"}
        assert {s.device for s in trace.spans_of_device("h2")} == {"h2"}
        assert trace.last_compute_end("b") == pytest.approx(2.0)

    def test_actual_finish_times_keys(self):
        trace = self._trace()
        finish_times = trace.actual_finish_times()
        assert len(finish_times) == 1
        (value,) = finish_times.values()
        assert value == pytest.approx(0.5)  # 5 bytes over the 10 B/s NIC


class TestTimelineOptions:
    def _trace(self):
        engine = Engine(two_hosts(1.0), FairSharingScheduler())
        dag = TaskDag("j")
        dag.add_compute("p", device="h0", duration=1.0, tag="produce 3")
        dag.add_comm("x", [Flow("h0", "h1", 2.0, job_id="j", group_id="g")], deps=["p"])
        dag.add_compute("c", device="h1", duration=1.0, deps=["x"], tag="consume")
        engine.submit(dag)
        engine.run()
        return engine.trace

    def test_device_subset_and_width(self):
        from repro.analysis import render_device_timeline

        art = render_device_timeline(self._trace(), devices=["h0"], width=30)
        assert "h0" in art and "h1" not in art

    def test_tag_digits_label_spans(self):
        from repro.analysis import render_device_timeline

        art = render_device_timeline(self._trace(), width=30)
        assert "3" in art  # from "produce 3"
        assert "#" in art  # from the digitless "consume"

    def test_flow_timeline_group_filter(self):
        from repro.analysis import render_flow_timeline

        trace = self._trace()
        assert "=" in render_flow_timeline(trace, group_id="g")
        assert "no flows" in render_flow_timeline(trace, group_id="ghost")


class TestQueueQuantizationLadder:
    def test_more_queues_refine_the_ladder(self):
        from repro.system import quantize_to_queue

        shares = [2.0 ** -k for k in range(10)]
        coarse = {quantize_to_queue(s, 2) for s in shares}
        fine = {quantize_to_queue(s, 8) for s in shares}
        assert len(fine) > len(coarse)

    def test_weights_double_per_queue(self):
        from repro.system.backend import queue_weight

        assert queue_weight(3) == 8.0
        assert queue_weight(0) == 1.0


class TestPlacementEdges:
    def test_spread_with_large_stride_still_fills(self):
        from repro.topology import big_switch
        from repro.workloads.placement import ClusterPlacer

        placer = ClusterPlacer(big_switch(6, 1.0))
        hosts = placer.place_spread("j", 5, stride=7)
        assert len(set(hosts)) == 5

    def test_release_unknown_job_is_noop(self):
        from repro.topology import big_switch
        from repro.workloads.placement import ClusterPlacer

        placer = ClusterPlacer(big_switch(2, 1.0))
        placer.release("ghost")
        assert len(placer.free_hosts) == 2


class TestSpecDpPsNeedsSpareHost:
    def test_error_when_cluster_exactly_full(self):
        from repro.workloads import SpecError, run_spec

        spec = {
            "topology": {"hosts": 2},
            "jobs": [
                {"name": "j", "paradigm": "dp-ps", "model": "tiny_mlp", "workers": 2}
            ],
        }
        with pytest.raises(SpecError):
            run_spec(spec)


class TestCollectiveHelpers:
    def test_total_bytes_and_flow_count(self):
        from repro.workloads import flow_count, ring_all_reduce, total_bytes

        steps = ring_all_reduce(["h0", "h1", "h2"], 30.0)
        assert flow_count(steps) == 4 * 3  # 2(m-1) steps x m flows
        assert total_bytes(steps) == pytest.approx(4 * 3 * 10.0)
