"""Model specs: bucketing and pipeline partitioning."""

import pytest

from repro.workloads.model import LayerSpec, ModelSpec, uniform_model
from repro.workloads.zoo import (
    alexnet,
    bert_large,
    get_model,
    gpt2_xl,
    model_names,
    resnet50,
    vgg16,
)


def test_uniform_model_shape():
    model = uniform_model("u", 4, 100.0, 10.0, forward_time=1.0)
    assert model.num_layers == 4
    assert model.total_param_bytes == 400.0
    assert model.total_forward_time == pytest.approx(4.0)
    assert model.total_backward_time == pytest.approx(8.0)  # 2x default


def test_layer_validation():
    with pytest.raises(ValueError):
        LayerSpec("bad", -1.0, 0.0, 1.0, 1.0)
    with pytest.raises(ValueError):
        LayerSpec("bad", 1.0, 0.0, -1.0, 1.0)


def test_empty_model_rejected():
    with pytest.raises(ValueError):
        ModelSpec("empty", ())


def test_scaled():
    model = uniform_model("u", 2, 100.0, 10.0, forward_time=1.0)
    scaled = model.scaled(compute_scale=2.0, size_scale=0.5)
    assert scaled.total_forward_time == pytest.approx(4.0)
    assert scaled.total_param_bytes == pytest.approx(100.0)


class TestGradientBuckets:
    def test_buckets_cover_all_layers_in_backward_order(self):
        model = uniform_model("u", 6, 100.0, 10.0, forward_time=1.0)
        buckets = model.gradient_buckets(bucket_bytes=250.0)
        covered = [i for b in buckets for i in b.layer_indices]
        assert sorted(covered) == list(range(6))
        # Bucket 0 holds the deepest layers (backward order).
        assert max(buckets[0].layer_indices) == 5

    def test_bucket_sizes(self):
        model = uniform_model("u", 6, 100.0, 10.0, forward_time=1.0)
        buckets = model.gradient_buckets(bucket_bytes=250.0)
        assert [b.param_bytes for b in buckets] == [300.0, 300.0]

    def test_single_giant_bucket(self):
        model = uniform_model("u", 3, 100.0, 10.0, forward_time=1.0)
        buckets = model.gradient_buckets(bucket_bytes=1e9)
        assert len(buckets) == 1
        assert buckets[0].param_bytes == pytest.approx(300.0)

    def test_invalid_bucket_bytes(self):
        model = uniform_model("u", 2, 1.0, 1.0, 1.0)
        with pytest.raises(ValueError):
            model.gradient_buckets(0.0)


class TestPipelinePartition:
    def test_uniform_split(self):
        model = uniform_model("u", 8, 100.0, 10.0, forward_time=1.0)
        stages = model.pipeline_partition(4)
        assert len(stages) == 4
        assert all(len(s.layer_indices) == 2 for s in stages)
        assert stages[0].forward_time == pytest.approx(2.0)

    def test_stages_are_contiguous_and_complete(self):
        model = vgg16()
        stages = model.pipeline_partition(4)
        flattened = [i for s in stages for i in s.layer_indices]
        assert flattened == list(range(model.num_layers))

    def test_balance_on_heterogeneous_model(self):
        model = vgg16()
        stages = model.pipeline_partition(4)
        times = [s.forward_time + s.backward_time for s in stages]
        total = model.total_forward_time + model.total_backward_time
        largest_layer = max(l.forward_time + l.backward_time for l in model.layers)
        # A contiguous partition can never beat the largest single layer;
        # beyond that, greedy should stay within 2x of the ideal share.
        assert max(times) <= max(largest_layer, 2.0 * total / 4) + 1e-9

    def test_balance_on_homogeneous_transformer(self):
        model = bert_large()
        stages = model.pipeline_partition(4)
        times = [s.forward_time + s.backward_time for s in stages]
        total = model.total_forward_time + model.total_backward_time
        assert max(times) <= 1.5 * total / 4

    def test_boundary_activation_from_last_layer(self):
        model = uniform_model("u", 4, 100.0, 10.0, forward_time=1.0)
        stages = model.pipeline_partition(2)
        assert stages[0].boundary_activation_bytes == pytest.approx(10.0)

    def test_validation(self):
        model = uniform_model("u", 2, 1.0, 1.0, 1.0)
        with pytest.raises(ValueError):
            model.pipeline_partition(0)
        with pytest.raises(ValueError):
            model.pipeline_partition(3)


class TestZoo:
    @pytest.mark.parametrize(
        "builder,params_m",
        [
            (alexnet, 61),
            (vgg16, 138),
            (resnet50, 25.6),
            (bert_large, 340),
            (gpt2_xl, 1500),
        ],
    )
    def test_parameter_counts_are_realistic(self, builder, params_m):
        model = builder()
        measured_m = model.total_param_bytes / 4.0 / 1e6
        assert measured_m == pytest.approx(params_m, rel=0.1)

    def test_backward_is_twice_forward(self):
        model = resnet50()
        assert model.total_backward_time == pytest.approx(
            2.0 * model.total_forward_time
        )

    def test_batch_scale_inflates_compute(self):
        small = resnet50(batch_scale=1.0)
        large = resnet50(batch_scale=4.0)
        assert large.total_forward_time == pytest.approx(
            4.0 * small.total_forward_time
        )

    def test_get_model_and_names(self):
        assert "resnet50" in model_names()
        assert get_model("resnet50").name == "resnet50"
        with pytest.raises(KeyError):
            get_model("skynet")
