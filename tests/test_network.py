"""The fluid-flow network model."""

import pytest

from repro.core.flow import Flow
from repro.simulator.network import CapacityViolation, NetworkModel
from repro.topology import ShortestPathRouter, big_switch, two_hosts


def _network(n_hosts=3, bw=10.0, strict=True):
    topo = big_switch(n_hosts, bw)
    return NetworkModel(topo, ShortestPathRouter(topo), strict=strict)


def test_inject_assigns_path_and_state():
    net = _network()
    flow = Flow("h0", "h1", 100.0)
    state = net.inject(flow, now=1.0)
    assert state.start_time == 1.0
    assert state.remaining == 100.0
    assert [l.key for l in net.path(flow.flow_id)] == [
        ("h0", "core"),
        ("core", "h1"),
    ]


def test_double_injection_rejected():
    net = _network()
    flow = Flow("h0", "h1", 100.0)
    net.inject(flow, 0.0)
    with pytest.raises(ValueError):
        net.inject(flow, 0.0)


def test_set_rates_and_advance():
    net = _network()
    flow = Flow("h0", "h1", 100.0)
    net.inject(flow, 0.0)
    net.set_rates({flow.flow_id: 10.0})
    finished = net.advance(5.0, now=0.0)
    assert finished == []
    assert net.state(flow.flow_id).remaining == pytest.approx(50.0)
    finished = net.advance(5.0, now=5.0)
    assert len(finished) == 1
    assert finished[0].finish_time == pytest.approx(10.0)
    assert net.active_count == 0
    assert net.bytes_delivered == pytest.approx(100.0)


def test_strict_mode_rejects_oversubscription():
    net = _network(bw=10.0, strict=True)
    f1 = Flow("h0", "h1", 10.0)
    f2 = Flow("h0", "h2", 10.0)
    net.inject(f1, 0.0)
    net.inject(f2, 0.0)
    with pytest.raises(CapacityViolation):
        net.set_rates({f1.flow_id: 8.0, f2.flow_id: 8.0})


def test_lenient_mode_scales_down():
    net = _network(bw=10.0, strict=False)
    f1 = Flow("h0", "h1", 10.0)
    f2 = Flow("h0", "h2", 10.0)
    net.inject(f1, 0.0)
    net.inject(f2, 0.0)
    net.set_rates({f1.flow_id: 8.0, f2.flow_id: 8.0})
    total = net.state(f1.flow_id).rate + net.state(f2.flow_id).rate
    assert total == pytest.approx(10.0)
    # Scaling is proportional.
    assert net.state(f1.flow_id).rate == pytest.approx(5.0)


def test_negative_rate_rejected():
    net = _network()
    flow = Flow("h0", "h1", 10.0)
    net.inject(flow, 0.0)
    with pytest.raises(ValueError):
        net.set_rates({flow.flow_id: -1.0})


def test_unlisted_flows_idle():
    net = _network()
    flow = Flow("h0", "h1", 10.0)
    net.inject(flow, 0.0)
    net.set_rates({})
    assert net.state(flow.flow_id).rate == 0.0
    assert net.earliest_finish_interval() == float("inf")


def test_earliest_finish_interval():
    net = _network()
    f1 = Flow("h0", "h1", 100.0)
    f2 = Flow("h2", "h1", 10.0)
    net.inject(f1, 0.0)
    net.inject(f2, 0.0)
    net.set_rates({f1.flow_id: 5.0, f2.flow_id: 5.0})
    assert net.earliest_finish_interval() == pytest.approx(2.0)


def test_two_hosts_direct_link():
    topo = two_hosts(4.0)
    net = NetworkModel(topo, ShortestPathRouter(topo))
    flow = Flow("h0", "h1", 8.0)
    net.inject(flow, 0.0)
    net.set_rates({flow.flow_id: 4.0})
    net.advance(2.0, 0.0)
    assert net.completed_states[0].finish_time == pytest.approx(2.0)


def test_port_capacity_views():
    net = _network(n_hosts=2, bw=7.0)
    assert net.egress_capacities() == {"h0": 7.0, "h1": 7.0}
    assert net.ingress_capacities() == {"h0": 7.0, "h1": 7.0}


def test_demands_sorted_by_flow_id():
    net = _network()
    f2 = Flow("h0", "h2", 10.0)
    f1 = Flow("h0", "h1", 10.0)
    net.inject(f2, 0.0)
    net.inject(f1, 0.0)
    demands = net.demands()
    assert [d.flow_id for d in demands] == sorted([f1.flow_id, f2.flow_id])
