"""The observability layer: registry, instrumentation, profiling, export."""

import json

import pytest

from repro.obs import (
    Instrumentation,
    JsonlEventLog,
    MetricsRegistry,
    ProfiledScheduler,
    build_metrics_report,
    chrome_trace_dict,
    rate_vector_churn,
    read_jsonl,
    summarize_events,
)
from repro.scheduling import make_scheduler
from repro.simulator import Engine
from repro.topology import two_hosts
from repro.workloads import build_pipeline_segment


def _fig2_engine(instrumentation=None, scheduler=None):
    """The paper's Fig. 2 motivating example on a single 1 B/s link."""
    job = build_pipeline_segment(
        "fig2", "h0", "h1", [0.0, 1.0, 2.0], [2.0] * 3, [2.0] * 3
    )
    engine = Engine(
        two_hosts(1.0),
        scheduler or make_scheduler("echelon"),
        instrumentation=instrumentation,
    )
    job.submit_to(engine)
    return engine


# ----------------------------------------------------------------------
# metrics registry
# ----------------------------------------------------------------------


class TestRegistry:
    def test_counter_accumulates(self):
        registry = MetricsRegistry()
        registry.counter("requests_total").inc()
        registry.counter("requests_total").inc(2.5)
        assert registry.counter_value("requests_total") == 3.5

    def test_counter_rejects_negative(self):
        with pytest.raises(ValueError):
            MetricsRegistry().counter("x").inc(-1)

    def test_labels_split_series(self):
        registry = MetricsRegistry()
        registry.counter("inv_total", cause="arrival").inc()
        registry.counter("inv_total", cause="departure").inc(2)
        assert registry.counter_value("inv_total", cause="arrival") == 1
        assert registry.counter_value("inv_total", cause="departure") == 2
        assert registry.counter_total("inv_total") == 3
        labels = registry.labels_of("inv_total")
        assert {"cause": "arrival"} in labels and {"cause": "departure"} in labels

    def test_label_order_is_irrelevant(self):
        registry = MetricsRegistry()
        registry.counter("m", a="1", b="2").inc()
        registry.counter("m", b="2", a="1").inc()
        assert registry.counter_value("m", a="1", b="2") == 2

    def test_gauge_last_write_wins(self):
        registry = MetricsRegistry()
        gauge = registry.gauge("active_flows")
        gauge.set(7)
        gauge.set(3)
        gauge.inc()
        assert registry.gauge("active_flows").value == 4

    def test_histogram_stats(self):
        hist = MetricsRegistry().histogram("latency")
        for value in (0.001, 0.002, 0.004, 0.5):
            hist.observe(value)
        assert hist.count == 4
        assert hist.total == pytest.approx(0.507)
        assert hist.min == 0.001 and hist.max == 0.5
        assert hist.mean == pytest.approx(0.507 / 4)
        summary = hist.summary()
        assert summary["count"] == 4
        assert summary["p50"] <= summary["p95"] <= summary["p99"] <= hist.max
        assert summary["p95"] == hist.quantile(0.95)

    def test_histogram_quantile_edges(self):
        hist = MetricsRegistry().histogram("h")
        assert hist.quantile(0.5) == 0.0  # empty
        hist.observe(2.0)
        assert hist.quantile(0.0) == 2.0
        assert hist.quantile(1.0) == 2.0

    def test_snapshot_is_json_dumpable(self):
        registry = MetricsRegistry()
        registry.counter("c", cause="tick").inc()
        registry.gauge("g").set(1.5)
        registry.histogram("h").observe(0.2)
        snapshot = json.loads(json.dumps(registry.snapshot()))
        assert snapshot["counters"]["c"][0]["labels"] == {"cause": "tick"}
        assert snapshot["gauges"]["g"][0]["value"] == 1.5
        assert snapshot["histograms"]["h"][0]["count"] == 1

    def test_merge_counters_add_gauges_overwrite(self):
        a, b = MetricsRegistry(), MetricsRegistry()
        a.counter("c", shard="0").inc(2)
        b.counter("c", shard="0").inc(3)
        b.counter("c", shard="1").inc(5)
        a.gauge("g").set(1)
        b.gauge("g").set(9)
        a.histogram("h").observe(1.0)
        b.histogram("h").observe(3.0)
        a.merge(b)
        assert a.counter_value("c", shard="0") == 5
        assert a.counter_value("c", shard="1") == 5
        assert a.gauge("g").value == 9
        merged = a.histogram("h")
        assert merged.count == 2 and merged.total == 4.0
        assert merged.min == 1.0 and merged.max == 3.0

    def test_merge_rejects_mismatched_buckets(self):
        a, b = MetricsRegistry(), MetricsRegistry()
        a.histogram("h", buckets=(1, 2)).observe(1)
        b.histogram("h", buckets=(1, 2, 3)).observe(1)
        with pytest.raises(ValueError):
            a.merge(b)


# ----------------------------------------------------------------------
# scheduler profiling middleware
# ----------------------------------------------------------------------


class TestProfiledScheduler:
    def test_counts_invocations_by_cause_on_fig2(self):
        profiled = ProfiledScheduler(make_scheduler("echelon"))
        engine = _fig2_engine(scheduler=profiled)
        engine.run()
        assert profiled.invocations == engine.scheduler_invocations
        by_cause = profiled.by_cause()
        # Fig. 2 injects three flows (arrivals); the per-event policy also
        # reruns on departures, except when a departure coalesces with an
        # arrival in the same round (arrival takes precedence) or leaves
        # the network empty.
        assert by_cause["arrival"] == 3
        assert by_cause["departure"] >= 1
        assert sum(by_cause.values()) == profiled.invocations

    def test_tick_cause_in_interval_mode(self):
        profiled = ProfiledScheduler(make_scheduler("echelon"))
        job = build_pipeline_segment(
            "fig2", "h0", "h1", [0.0, 1.0, 2.0], [2.0] * 3, [2.0] * 3
        )
        engine = Engine(two_hosts(1.0), profiled, scheduling_interval=0.5)
        job.submit_to(engine)
        engine.run()
        by_cause = profiled.by_cause()
        assert by_cause.get("tick", 0) > 0
        assert "departure" not in by_cause  # interval mode: no departure reruns

    def test_records_wall_clock_and_flows(self):
        profiled = ProfiledScheduler(make_scheduler("echelon"))
        engine = _fig2_engine(scheduler=profiled)
        engine.run()
        assert profiled.records, "keep_records should retain invocations"
        assert all(r.wall_clock >= 0 for r in profiled.records)
        assert profiled.total_wall_clock >= 0
        assert max(r.flows_considered for r in profiled.records) >= 2
        summary = profiled.summary()
        assert summary["invocations"] == profiled.invocations
        assert summary["wall_clock_seconds"]["count"] == profiled.invocations

    def test_allocations_are_passed_through_unchanged(self):
        plain_trace = _fig2_engine().run()
        profiled_trace = _fig2_engine(
            scheduler=ProfiledScheduler(make_scheduler("echelon"))
        ).run()
        assert [r.finish for r in profiled_trace.flow_records] == pytest.approx(
            [r.finish for r in plain_trace.flow_records]
        )

    def test_emits_scheduler_invocation_events(self):
        log = JsonlEventLog()
        profiled = ProfiledScheduler(make_scheduler("echelon"), event_log=log)
        engine = _fig2_engine(scheduler=profiled)
        engine.run()
        invocations = [
            e for e in log.events if e["ev"] == "scheduler_invocation"
        ]
        assert len(invocations) == profiled.invocations
        for event in invocations:
            assert event["wall_clock"] >= 0
            assert event["cause"] in ("arrival", "departure")
            assert event["flows"] >= 0
            assert 0.0 <= event["churn"] <= 1.0

    def test_rate_vector_churn(self):
        assert rate_vector_churn({}, {}) == 0
        assert rate_vector_churn({1: 1.0}, {1: 1.0}) == 0
        assert rate_vector_churn({1: 1.0}, {1: 2.0}) == 1
        # A newcomer at rate zero needs no agent action.
        assert rate_vector_churn({}, {2: 0.0}) == 0
        assert rate_vector_churn({}, {2: 0.5}) == 1


# ----------------------------------------------------------------------
# engine/network instrumentation
# ----------------------------------------------------------------------


class TestInstrumentation:
    def test_zero_overhead_default(self):
        engine = _fig2_engine()
        assert engine.obs is None
        assert engine.network.observer is None
        engine.run()  # nothing recorded, nothing crashes

    def test_link_utilization_timeline(self):
        obs = Instrumentation()
        engine = _fig2_engine(instrumentation=obs)
        trace = engine.run()
        stats = obs.link_stats(horizon=trace.end_time)
        assert "h0->h1" in stats
        link = stats["h0->h1"]
        # The single bottleneck link saturates while flows drain ...
        assert link["peak_utilization"] == pytest.approx(1.0)
        assert 0 < link["mean_utilization"] <= 1.0 + 1e-9
        # ... and carries exactly the delivered bytes.
        assert link["bytes_carried"] == pytest.approx(
            sum(r.flow.size for r in trace.flow_records)
        )

    def test_live_tardiness_series(self):
        obs = Instrumentation()
        engine = _fig2_engine(instrumentation=obs)
        trace = engine.run()
        assert obs.tardiness_series, "grouped flows must record live tardiness"
        (group_id,) = obs.tardiness_series
        series = obs.tardiness_series[group_id]
        assert len(series) == len(trace.flow_records)
        # Samples appear in delivery order with the trace's tardiness.
        assert [t for _, t in series] == pytest.approx(
            [r.tardiness for r in trace.flow_records]
        )
        assert obs.worst_tardiness_by_group()[group_id] == pytest.approx(
            max(r.tardiness for r in trace.flow_records)
        )

    def test_registry_counters(self):
        obs = Instrumentation()
        engine = _fig2_engine(instrumentation=obs)
        trace = engine.run()
        registry = obs.registry
        assert registry.counter_value("flows_injected_total") == 3
        assert registry.counter_value("flows_delivered_total") == 3
        assert registry.counter_value("jobs_completed_total") == 1
        assert registry.counter_total("engine_reschedules_total") == (
            engine.scheduler_invocations
        )
        assert obs.reschedules_by_cause()["arrival"] == 3
        assert registry.counter_value("flow_bytes_delivered_total") == (
            pytest.approx(sum(r.flow.size for r in trace.flow_records))
        )

    def test_event_log_records_lifecycle(self):
        log = JsonlEventLog()
        obs = Instrumentation(event_log=log)
        _fig2_engine(instrumentation=obs).run()
        kinds = [event["ev"] for event in log.events]
        for expected in ("job_arrival", "flow_injected", "reschedule",
                         "flow_finished", "job_completed"):
            assert expected in kinds


# ----------------------------------------------------------------------
# exporters
# ----------------------------------------------------------------------


class TestChromeExport:
    def test_trace_events_have_valid_fields(self):
        obs = Instrumentation(event_log=JsonlEventLog())
        engine = _fig2_engine(instrumentation=obs)
        trace = engine.run()
        document = json.loads(json.dumps(chrome_trace_dict(trace, obs)))
        events = document["traceEvents"]
        assert events
        phases = {event["ph"] for event in events}
        assert {"X", "M", "C"} <= phases
        for event in events:
            assert isinstance(event["name"], str) and event["name"]
            if event["ph"] in ("X", "C", "i"):
                assert isinstance(event["ts"], (int, float))
            if event["ph"] == "X":
                assert isinstance(event["dur"], (int, float))
                assert event["dur"] >= 0

    def test_counter_track_per_link(self):
        obs = Instrumentation()
        engine = _fig2_engine(instrumentation=obs)
        trace = engine.run()
        counters = [
            e for e in chrome_trace_dict(trace, obs)["traceEvents"]
            if e["ph"] == "C"
        ]
        assert counters, "instrumented export must include utilization counters"
        assert {e["name"] for e in counters} == {"h0->h1"}
        utilizations = [e["args"]["utilization"] for e in counters]
        assert max(utilizations) == pytest.approx(1.0)
        assert utilizations[-1] == 0.0  # the track closes at idle

    def test_plain_export_without_instrumentation(self):
        trace = _fig2_engine().run()
        document = chrome_trace_dict(trace)
        assert all(e["ph"] != "C" for e in document["traceEvents"])


class TestMetricsReport:
    def test_report_sections(self):
        obs = Instrumentation()
        profiled = ProfiledScheduler(make_scheduler("echelon"), registry=obs.registry)
        engine = _fig2_engine(instrumentation=obs, scheduler=profiled)
        trace = engine.run()
        report = build_metrics_report(trace, instrumentation=obs, profiler=profiled)
        report = json.loads(json.dumps(report))  # must be JSON-clean
        assert report["scheduler"]["invocations"] == engine.scheduler_invocations
        assert report["scheduler"]["by_cause"]["arrival"] == 3
        assert "p95" in report["scheduler"]["wall_clock_seconds"]
        assert report["links"]["h0->h1"]["peak_utilization"] == pytest.approx(1.0)
        diagnosis = report["diagnosis"]
        assert diagnosis["coverage"]["with_rate_data"] == 3
        assert diagnosis["echelonflows"]
        assert diagnosis["blame"]
        group = next(iter(report["echelonflows"].values()))
        assert group["flows"] == 3
        assert "worst_tardiness" in group and "mean_tardiness" in group
        assert report["flows"]["delivered"] == 3
        assert report["live_tardiness"]

    def test_report_without_profiler_uses_engine_counts(self):
        obs = Instrumentation()
        engine = _fig2_engine(instrumentation=obs)
        trace = engine.run()
        report = build_metrics_report(
            trace,
            instrumentation=obs,
            scheduler_invocations=engine.scheduler_invocations,
        )
        assert report["scheduler"]["invocations"] == engine.scheduler_invocations
        assert report["scheduler"]["by_cause"]["arrival"] == 3


class TestJsonl:
    def test_round_trip(self, tmp_path):
        log = JsonlEventLog()
        log.append("reschedule", 0.5, cause="arrival", active_flows=2)
        log.append("flow_finished", 1.0, flow_id=7, tardiness=0.25)
        path = tmp_path / "events.jsonl"
        log.write(str(path))
        events = read_jsonl(str(path))
        assert events == log.events

    def test_capacity_ring(self):
        log = JsonlEventLog(capacity=2)
        for i in range(5):
            log.append("tick", float(i))
        assert len(log) == 2
        assert log.total_appended == 5
        assert [e["t"] for e in log.events] == [3.0, 4.0]

    def test_summarize(self):
        log = JsonlEventLog()
        log.append("reschedule", 0.0, cause="arrival", active_flows=1)
        log.append("reschedule", 1.0, cause="departure", active_flows=0)
        log.append("flow_finished", 1.0, flow_id=1, tardiness=0.5)
        log.append("link_sample", 0.5, dt=0.5, links={"h0->h1": 0.75})
        summary = summarize_events(log.events)
        assert summary["events"] == 4
        assert summary["scheduler"]["by_cause"] == {
            "arrival": 1, "departure": 1
        }
        assert summary["flows"]["delivered"] == 1
        assert summary["flows"]["worst_tardiness"] == 0.5
        assert summary["links"]["peak_utilization"]["h0->h1"] == 0.75
        assert summary["time_span"] == {"start": 0.0, "end": 1.0}

    def test_summarize_latency_percentiles(self):
        log = JsonlEventLog()
        for i in range(100):
            log.append(
                "scheduler_invocation",
                float(i),
                cause="arrival",
                wall_clock=(i + 1) / 1000.0,
                flows=1,
                churn=0.0,
            )
        latency = summarize_events(log.events)["scheduler"]["latency_seconds"]
        assert latency["count"] == 100
        assert latency["p50"] == pytest.approx(0.051)
        assert latency["p95"] == pytest.approx(0.095)
        assert latency["p99"] == pytest.approx(0.099)
        assert latency["max"] == pytest.approx(0.100)
        assert latency["mean"] == pytest.approx(0.0505)

    def test_summarize_without_invocations_has_no_latency(self):
        log = JsonlEventLog()
        log.append("reschedule", 0.0, cause="arrival", active_flows=1)
        assert "latency_seconds" not in summarize_events(log.events)["scheduler"]

    def test_read_rejects_bad_json(self, tmp_path):
        path = tmp_path / "bad.jsonl"
        path.write_text('{"ev": "ok", "t": 0}\nnot-json\n')
        with pytest.raises(ValueError):
            read_jsonl(str(path))

    def test_stream_to_spills_past_the_ring(self, tmp_path):
        # A tiny ring plus a streaming spill: memory stays O(capacity)
        # while the on-disk log keeps every record ever appended.
        path = tmp_path / "spill.jsonl"
        with JsonlEventLog(capacity=10, stream_to=str(path),
                           flush_every=8) as log:
            for i in range(100):
                log.append("tick", float(i), i=i)
            assert len(log.events) == 10
        records = read_jsonl(str(path))
        assert [r["i"] for r in records] == list(range(100))

    def test_close_flushes_partial_buffer_and_is_idempotent(self, tmp_path):
        path = tmp_path / "spill.jsonl"
        log = JsonlEventLog(stream_to=str(path), flush_every=512)
        log.append("tick", 0.0)
        log.close()
        log.close()
        assert read_jsonl(str(path)) == [{"ev": "tick", "t": 0.0}]

    def test_stream_rejects_bad_flush_every(self, tmp_path):
        with pytest.raises(ValueError):
            JsonlEventLog(stream_to=str(tmp_path / "x.jsonl"), flush_every=0)


# ----------------------------------------------------------------------
# histogram percentile edge cases
# ----------------------------------------------------------------------


class TestHistogramEdges:
    def test_empty_histogram(self):
        from repro.obs.registry import Histogram

        hist = Histogram()
        assert hist.summary() == {"count": 0, "sum": 0.0}
        assert hist.mean == 0.0
        for q in (0.0, 0.5, 0.95, 0.99, 1.0):
            assert hist.quantile(q) == 0.0

    def test_single_sample(self):
        from repro.obs.registry import Histogram

        hist = Histogram(buckets=(1.0, 10.0))
        hist.observe(3.5)
        summary = hist.summary()
        assert summary["count"] == 1
        assert summary["min"] == summary["max"] == 3.5
        # One sample pins every percentile: interpolation is clamped to
        # the observed min/max, never the bucket bounds.
        assert summary["p50"] == pytest.approx(3.5)
        assert summary["p95"] == pytest.approx(3.5)
        assert summary["p99"] == pytest.approx(3.5)
        assert hist.quantile(0.0) == 3.5
        assert hist.quantile(1.0) == 3.5

    def test_all_equal_samples(self):
        from repro.obs.registry import Histogram

        hist = Histogram(buckets=(0.1, 1.0, 10.0))
        for _ in range(100):
            hist.observe(0.5)
        summary = hist.summary()
        assert summary["count"] == 100
        assert summary["sum"] == pytest.approx(50.0)
        assert summary["p50"] == pytest.approx(0.5)
        assert summary["p95"] == pytest.approx(0.5)
        assert summary["p99"] == pytest.approx(0.5)
        assert summary["mean"] == pytest.approx(0.5)

    def test_quantile_bounds_are_validated(self):
        from repro.obs.registry import Histogram

        hist = Histogram()
        hist.observe(1.0)
        with pytest.raises(ValueError):
            hist.quantile(-0.1)
        with pytest.raises(ValueError):
            hist.quantile(1.1)

    def test_buckets_must_increase(self):
        from repro.obs.registry import Histogram

        with pytest.raises(ValueError):
            Histogram(buckets=(1.0, 1.0, 2.0))


class TestZeroFlowReport:
    def test_report_on_run_without_flows(self):
        # A run that never moves a byte (no jobs at all) still yields a
        # well-formed, JSON-clean report with graceful empty sections.
        obs = Instrumentation()
        engine = Engine(
            two_hosts(1.0), make_scheduler("echelon"), instrumentation=obs
        )
        trace = engine.run()
        report = build_metrics_report(
            trace,
            instrumentation=obs,
            scheduler_invocations=engine.scheduler_invocations,
        )
        report = json.loads(json.dumps(report))
        assert report["flows"] == {"delivered": 0}
        assert report["echelonflows"] == {}
        assert report["run"]["compute_spans"] == 0
        assert "scheduler" not in report or report["scheduler"].get(
            "invocations", 0
        ) == engine.scheduler_invocations
