"""Optimality references (Property 1 machinery)."""

import pytest

from repro.scheduling.oracle import (
    PipelineStageSpec,
    makespan_lower_bounds,
    single_link_pipeline_optimum,
)
from repro.core.flow import Flow
from repro.simulator.dag import TaskDag
from repro.topology import big_switch, two_hosts


class TestSingleLinkPipelineOptimum:
    def test_fig2_configuration_gives_eight(self):
        """The exact Fig. 2c optimum: comp finish time 8."""
        stages = [
            PipelineStageSpec(release_time=t, flow_size=2.0, compute_time=2.0)
            for t in (0.0, 1.0, 2.0)
        ]
        comp_finish, flow_finishes, compute_finishes = single_link_pipeline_optimum(
            stages, bandwidth=1.0
        )
        assert flow_finishes == [pytest.approx(2.0), pytest.approx(4.0), pytest.approx(6.0)]
        assert compute_finishes == [pytest.approx(4.0), pytest.approx(6.0), pytest.approx(8.0)]
        assert comp_finish == pytest.approx(8.0)

    def test_link_serializes_back_to_back_releases(self):
        stages = [
            PipelineStageSpec(release_time=0.0, flow_size=4.0, compute_time=1.0),
            PipelineStageSpec(release_time=0.0, flow_size=4.0, compute_time=1.0),
        ]
        comp_finish, flow_finishes, _ = single_link_pipeline_optimum(stages, 2.0)
        assert flow_finishes == [pytest.approx(2.0), pytest.approx(4.0)]
        assert comp_finish == pytest.approx(5.0)

    def test_compute_bound_pipeline(self):
        # Tiny flows: completion driven by the consumer's serial compute.
        stages = [
            PipelineStageSpec(release_time=0.0, flow_size=0.001, compute_time=3.0)
            for _ in range(4)
        ]
        comp_finish, _, _ = single_link_pipeline_optimum(stages, 1000.0)
        assert comp_finish == pytest.approx(12.0, rel=1e-3)

    def test_empty_and_validation(self):
        assert single_link_pipeline_optimum([], 1.0)[0] == 0.0
        with pytest.raises(ValueError):
            single_link_pipeline_optimum([], 0.0)


class TestMakespanLowerBounds:
    def test_device_work_bound(self):
        dag = TaskDag("j")
        dag.add_compute("a", device="h0", duration=3.0)
        dag.add_compute("b", device="h0", duration=4.0)
        bounds = makespan_lower_bounds(dag, big_switch(2, 1.0))
        assert bounds.device_work == pytest.approx(7.0)
        assert bounds.best >= 7.0

    def test_critical_path_includes_min_transfer(self):
        dag = TaskDag("j")
        dag.add_compute("a", device="h0", duration=1.0)
        dag.add_comm("x", [Flow("h0", "h1", 4.0, job_id="j")], deps=["a"])
        dag.add_compute("b", device="h1", duration=1.0, deps=["x"])
        bounds = makespan_lower_bounds(dag, two_hosts(2.0))
        # 1 + 4/2 + 1 = 4.
        assert bounds.critical_path == pytest.approx(4.0)

    def test_link_work_bound(self):
        dag = TaskDag("j")
        dag.add_comm("x", [Flow("h0", "h1", 10.0, job_id="j")])
        dag.add_comm("y", [Flow("h0", "h1", 10.0, job_id="j")])
        bounds = makespan_lower_bounds(dag, two_hosts(2.0))
        assert bounds.link_work == pytest.approx(10.0)

    def test_bounds_hold_for_simulated_schedule(self):
        """Any simulated schedule completes no earlier than the bounds."""
        from repro.scheduling import FairSharingScheduler
        from repro.simulator import Engine

        dag = TaskDag("j")
        dag.add_compute("a", device="h0", duration=1.0)
        dag.add_comm("x", [Flow("h0", "h1", 6.0, job_id="j")], deps=["a"])
        dag.add_compute("b", device="h1", duration=2.0, deps=["x"])
        topo = two_hosts(2.0)
        bounds = makespan_lower_bounds(dag, topo)
        engine = Engine(topo, FairSharingScheduler())
        engine.submit(dag)
        trace = engine.run()
        assert trace.end_time >= bounds.best - 1e-9
