"""Direct unit tests of every inter-EchelonFlow ordering policy."""

import pytest

from repro.core.arrangement import CoflowArrangement, StaggeredArrangement
from repro.core.echelonflow import EchelonFlow
from repro.core.flow import Flow
from repro.scheduling import ORDERINGS, EchelonMaddScheduler
from repro.scheduling.base import SchedulerView
from repro.simulator.network import NetworkModel
from repro.topology import ShortestPathRouter, big_switch


def _view(flows, echelonflows, now=0.0, n_hosts=8, bw=10.0, starts=None):
    topo = big_switch(n_hosts, bw)
    network = NetworkModel(topo, ShortestPathRouter(topo))
    groups = {ef.ef_id: ef for ef in echelonflows}
    for i, flow in enumerate(flows):
        start = starts[i] if starts else 0.0
        state = network.inject(flow, start)
        group = groups.get(flow.group_id)
        if group is not None:
            group.observe_flow_start(flow, start)
            if group.reference_time is not None:
                state.ideal_finish_time = group.ideal_finish_time_of(flow)
    return SchedulerView(now=now, network=network, echelonflows=groups)


def _order(scheduler, view):
    groups = scheduler._build_groups(view)
    network = view.network
    full_caps = {}
    for state in view.active_states():
        for link in network.path(state.flow.flow_id):
            full_caps[link.key] = link.capacity
    ordered = scheduler._order_groups(groups, view.now, network, full_caps)
    return [g.group_id for g in ordered]


def _coflow(ef_id, src, dst, size, job_id=None, weight=1.0):
    ef = EchelonFlow(ef_id, CoflowArrangement(), job_id=job_id or ef_id, weight=weight)
    flow = Flow(src, dst, size, group_id=ef_id, job_id=job_id or ef_id)
    ef.add_flow(flow)
    return ef, flow


def test_orderings_constant_lists_every_policy():
    assert set(ORDERINGS) == {
        "hybrid",
        "tardiness",
        "projected",
        "tardiness-asc",
        "sebf",
        "fifo",
    }


def test_fifo_orders_by_group_id():
    ef_b, fb = _coflow("b", "h0", "h1", 5.0)
    ef_a, fa = _coflow("a", "h2", "h3", 50.0)
    view = _view([fb, fa], [ef_a, ef_b])
    order = _order(EchelonMaddScheduler(ordering="fifo"), view)
    assert order == ["a", "b"]


def test_sebf_orders_by_bottleneck():
    ef_small, fs = _coflow("zz-small", "h0", "h1", 5.0)
    ef_large, fl = _coflow("aa-large", "h2", "h3", 50.0)
    view = _view([fs, fl], [ef_small, ef_large])
    order = _order(EchelonMaddScheduler(ordering="sebf"), view)
    assert order == ["zz-small", "aa-large"]


def test_current_tardiness_orders_by_deadline_age():
    # Same sizes; group "old" started (reference) earlier -> more behind.
    ef_old, fo = _coflow("old", "h0", "h1", 10.0)
    ef_new, fn = _coflow("new", "h2", "h3", 10.0)
    view = _view([fo, fn], [ef_old, ef_new], now=5.0, starts=[0.0, 4.0])
    order = _order(EchelonMaddScheduler(ordering="tardiness"), view)
    assert order == ["old", "new"]


def test_current_tardiness_ignores_size():
    """Unlike projected: a big fresh group must not outrank a small late one."""
    ef_late, fl = _coflow("late-small", "h0", "h1", 1.0)
    ef_big, fb = _coflow("fresh-big", "h2", "h3", 1000.0)
    view = _view([fl, fb], [ef_late, ef_big], now=3.0, starts=[0.0, 3.0])
    current = _order(EchelonMaddScheduler(ordering="tardiness"), view)
    projected = _order(EchelonMaddScheduler(ordering="projected"), view)
    assert current == ["late-small", "fresh-big"]
    # Projected inflates the big group's lateness by its Gamma (100s).
    assert projected == ["fresh-big", "late-small"]


def test_tardiness_asc_is_the_reverse_of_projected():
    ef_a, fa = _coflow("a", "h0", "h1", 5.0)
    ef_b, fb = _coflow("b", "h2", "h3", 50.0)
    view = _view([fa, fb], [ef_a, ef_b])
    asc = _order(EchelonMaddScheduler(ordering="tardiness-asc"), view)
    desc = _order(EchelonMaddScheduler(ordering="projected"), view)
    assert asc == list(reversed(desc))


class TestHybrid:
    def test_jobs_rank_by_least_lateness(self):
        # Job X: small nearly-done group; job Y: big group. X first.
        ef_x, fx = _coflow("x", "h0", "h1", 1.0, job_id="jobX")
        ef_y, fy = _coflow("y", "h2", "h3", 100.0, job_id="jobY")
        view = _view([fx, fy], [ef_x, ef_y])
        order = _order(EchelonMaddScheduler(ordering="hybrid"), view)
        assert order == ["x", "y"]

    def test_within_job_most_currently_behind_first(self):
        staggered = EchelonFlow(
            "behind", StaggeredArrangement(0.1), job_id="job"
        )
        f_behind = Flow("h0", "h1", 5.0, group_id="behind", job_id="job")
        staggered.add_flow(f_behind)
        fresh = EchelonFlow("fresh", CoflowArrangement(), job_id="job")
        f_fresh = Flow("h2", "h3", 5.0, group_id="fresh", job_id="job")
        fresh.add_flow(f_fresh)
        view = _view(
            [f_behind, f_fresh], [staggered, fresh], now=4.0, starts=[0.0, 3.9]
        )
        order = _order(EchelonMaddScheduler(ordering="hybrid"), view)
        assert order == ["behind", "fresh"]

    def test_registered_outranks_unregistered(self):
        ef, registered_flow = _coflow("tenant", "h0", "h1", 100.0, job_id="job")
        background = Flow("h2", "h3", 1.0)  # no group: best-effort
        view = _view([registered_flow, background], [ef])
        order = _order(EchelonMaddScheduler(ordering="hybrid"), view)
        assert order[0] == "tenant"
        assert order[1].startswith("_flow")

    def test_weight_uses_smiths_rule(self):
        # Equal sizes; the heavier job sorts first under ascending keys.
        ef_light, fl = _coflow("light", "h0", "h1", 10.0, weight=1.0)
        ef_heavy, fh = _coflow("heavy", "h2", "h3", 10.0, weight=5.0)
        view = _view([fl, fh], [ef_light, ef_heavy])
        order = _order(EchelonMaddScheduler(ordering="hybrid"), view)
        assert order == ["heavy", "light"]
