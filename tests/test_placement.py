"""Cluster placement policies."""

import random

import pytest

from repro.topology import big_switch
from repro.workloads.placement import ClusterPlacer, PlacementError


def _placer(n=8):
    return ClusterPlacer(big_switch(n, 1.0))


def test_contiguous_takes_first_free():
    placer = _placer()
    assert placer.place_contiguous("a", 3) == ["h0", "h1", "h2"]
    assert placer.place_contiguous("b", 2) == ["h3", "h4"]


def test_exhaustion_raises():
    placer = _placer(4)
    placer.place_contiguous("a", 3)
    with pytest.raises(PlacementError):
        placer.place_contiguous("b", 2)


def test_release_returns_hosts():
    placer = _placer(4)
    placer.place_contiguous("a", 3)
    placer.release("a")
    assert len(placer.free_hosts) == 4
    placer.place_contiguous("b", 4)


def test_spread_produces_distinct_hosts():
    placer = _placer(8)
    hosts = placer.place_spread("a", 4)
    assert len(set(hosts)) == 4


def test_random_is_seeded_and_distinct():
    placer1 = _placer(8)
    placer2 = _placer(8)
    rng1 = random.Random(42)
    rng2 = random.Random(42)
    assert placer1.place_random("a", 4, rng1) == placer2.place_random("a", 4, rng2)


def test_assignment_lookup():
    placer = _placer(4)
    placer.place_contiguous("a", 2)
    assert placer.assignment("a") == ["h0", "h1"]


def test_placed_hosts_leave_free_pool():
    placer = _placer(4)
    taken = placer.place_spread("a", 2)
    for host in taken:
        assert host not in placer.free_hosts
