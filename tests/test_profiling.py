"""Profiler and noise models."""

import random

import pytest

from repro.core.arrangement import (
    PhasedArrangement,
    StaggeredArrangement,
    TabledArrangement,
)
from repro.profiling import (
    ComputeProfile,
    biased_arrangement,
    perturb_arrangement,
    phased_arrangement_from_profile,
    profile_job,
    staggered_arrangement_from_profile,
)
from repro.topology import linear_chain
from repro.workloads import build_pp_gpipe, uniform_model

MODEL = uniform_model(
    "u4", 4, param_bytes_per_layer=100.0, activation_bytes=4.0, forward_time=1.0
)


class TestComputeProfile:
    def test_profile_job_extracts_durations(self):
        profile = profile_job(
            lambda: build_pp_gpipe("j", MODEL, ["h0", "h1"], num_micro_batches=2),
            linear_chain(2, 1000.0),
            warmup_runs=2,
        )
        # Stage 1 forward per micro-batch: 2 layers x 1.0 / 2 = 1.0.
        assert profile.mean_duration("h1", "F") == pytest.approx(1.0)
        assert profile.mean_duration("h1", "B") == pytest.approx(2.0)

    def test_missing_samples_raise(self):
        profile = ComputeProfile()
        with pytest.raises(KeyError):
            profile.mean_duration("ghost")

    def test_stddev(self):
        profile = ComputeProfile()
        profile.samples[("d", "F")] = [1.0, 1.0]
        assert profile.stddev("d", "F") == 0.0
        profile.samples[("d", "F")] = [1.0]
        assert profile.stddev("d", "F") == 0.0

    def test_merge(self):
        a = ComputeProfile(samples={("d", "x"): [1.0]})
        b = ComputeProfile(samples={("d", "x"): [3.0]})
        a.merge(b)
        assert a.mean_duration("d", "x") == pytest.approx(2.0)

    def test_arrangement_builders(self):
        profile = ComputeProfile(
            samples={("h1", "F l0"): [1.0, 1.0], ("h1", "B l0"): [2.0]}
        )
        staggered = staggered_arrangement_from_profile(profile, "h1", "F")
        assert staggered.distance == pytest.approx(1.0)
        phased = phased_arrangement_from_profile(profile, layers=3)
        assert phased.forward_distance == pytest.approx(1.0)
        assert phased.backward_distance == pytest.approx(2.0)

    def test_warmup_validation(self):
        with pytest.raises(ValueError):
            profile_job(lambda: None, linear_chain(2, 1.0), warmup_runs=0)


class TestNoise:
    def test_zero_error_is_identity(self):
        arrangement = StaggeredArrangement(2.0)
        assert perturb_arrangement(arrangement, 0.0, 5) is arrangement

    def test_perturbed_staggered_within_bounds(self):
        rng = random.Random(7)
        for _ in range(20):
            noisy = perturb_arrangement(StaggeredArrangement(2.0), 0.25, 5, rng)
            assert 1.5 <= noisy.distance <= 2.5

    def test_perturbed_phased_keeps_shape(self):
        noisy = perturb_arrangement(
            PhasedArrangement(layers=3, forward_distance=1.0, backward_distance=2.0),
            0.1,
            6,
            random.Random(0),
        )
        assert isinstance(noisy, PhasedArrangement)
        assert noisy.layers == 3

    def test_perturbed_table_remains_monotone(self):
        table = TabledArrangement((0.0, 1.0, 3.0, 3.5))
        noisy = perturb_arrangement(table, 0.5, 4, random.Random(3))
        noisy.validate(4)

    def test_negative_error_rejected(self):
        with pytest.raises(ValueError):
            perturb_arrangement(StaggeredArrangement(1.0), -0.1, 3)

    def test_biased_scaling(self):
        biased = biased_arrangement(StaggeredArrangement(2.0), 1.5, 4)
        assert biased.distance == pytest.approx(3.0)
        biased_phased = biased_arrangement(
            PhasedArrangement(layers=2, forward_distance=1.0, backward_distance=2.0),
            0.5,
            4,
        )
        assert biased_phased.forward_distance == pytest.approx(0.5)
        table = biased_arrangement(TabledArrangement((0.0, 2.0)), 2.0, 2)
        assert table.offset(1) == pytest.approx(4.0)
        with pytest.raises(ValueError):
            biased_arrangement(StaggeredArrangement(1.0), -1.0, 2)
