"""Property-based invariants across the whole stack (hypothesis)."""

import pytest
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.analysis import comp_finish_time
from repro.core.arrangement import StaggeredArrangement, TabledArrangement
from repro.core.echelonflow import EchelonFlow
from repro.core.flow import Flow
from repro.scheduling import (
    CoflowMaddScheduler,
    EchelonMaddScheduler,
    FairSharingScheduler,
    ShortestFlowFirstScheduler,
)
from repro.scheduling.oracle import PipelineStageSpec, single_link_pipeline_optimum
from repro.simulator import Engine, TaskDag
from repro.topology import big_switch, two_hosts
from repro.workloads import build_pipeline_segment

SCHEDULERS = [
    FairSharingScheduler,
    ShortestFlowFirstScheduler,
    CoflowMaddScheduler,
    EchelonMaddScheduler,
]


@st.composite
def pipeline_instances(draw):
    """Random Fig.-2-like single-boundary pipelines."""
    count = draw(st.integers(min_value=1, max_value=5))
    gaps = draw(
        st.lists(
            st.floats(min_value=0.0, max_value=3.0),
            min_size=count,
            max_size=count,
        )
    )
    releases = []
    t = 0.0
    for gap in gaps:
        releases.append(t)
        t += gap
    sizes = draw(
        st.lists(
            st.floats(min_value=0.1, max_value=5.0), min_size=count, max_size=count
        )
    )
    computes = draw(
        st.lists(
            st.floats(min_value=0.0, max_value=3.0), min_size=count, max_size=count
        )
    )
    distance = draw(st.floats(min_value=0.0, max_value=3.0))
    return releases, sizes, computes, distance


def _run_pipeline(instance, scheduler):
    releases, sizes, computes, distance = instance
    job = build_pipeline_segment(
        "p", "h0", "h1", releases, sizes, computes, distance=distance
    )
    engine = Engine(two_hosts(1.0), scheduler)
    job.submit_to(engine)
    trace = engine.run()
    return trace


@given(pipeline_instances())
@settings(max_examples=40, deadline=None)
def test_all_schedulers_deliver_all_bytes(instance):
    """Conservation: every scheduler transfers exactly the injected bytes."""
    releases, sizes, computes, distance = instance
    for scheduler_cls in SCHEDULERS:
        trace = _run_pipeline(instance, scheduler_cls())
        assert len(trace.flow_records) == len(sizes)
        for record in trace.flow_records:
            assert record.finish >= record.start


@given(pipeline_instances())
@settings(max_examples=40, deadline=None)
def test_echelon_matches_single_link_optimum(instance):
    """Property 1 on the PP segment: with the exact profiled arrangement
    (heterogeneous per-unit durations -> TabledArrangement), echelon
    scheduling matches the oracle optimum on single-link instances."""
    from repro.core.arrangement import arrangement_from_compute_durations

    releases, sizes, computes, _distance = instance
    stages = [
        PipelineStageSpec(release_time=r, flow_size=s, compute_time=c)
        for r, s, c in zip(releases, sizes, computes)
    ]
    optimum, _, _ = single_link_pipeline_optimum(stages, 1.0)
    job = build_pipeline_segment("p", "h0", "h1", releases, sizes, computes)
    job.echelonflows[0].arrangement = arrangement_from_compute_durations(computes)
    engine = Engine(two_hosts(1.0), EchelonMaddScheduler())
    job.submit_to(engine)
    trace = engine.run()
    assert comp_finish_time(trace) <= optimum + 1e-6


@given(pipeline_instances())
@settings(max_examples=40, deadline=None)
def test_no_scheduler_beats_the_oracle(instance):
    """The oracle is a true lower bound for every scheduler."""
    releases, sizes, computes, _distance = instance
    stages = [
        PipelineStageSpec(release_time=r, flow_size=s, compute_time=c)
        for r, s, c in zip(releases, sizes, computes)
    ]
    optimum, _, _ = single_link_pipeline_optimum(stages, 1.0)
    for scheduler_cls in SCHEDULERS:
        trace = _run_pipeline(instance, scheduler_cls())
        assert comp_finish_time(trace) >= optimum - 1e-6


@given(
    st.lists(st.floats(min_value=0.5, max_value=20.0), min_size=1, max_size=6),
    st.integers(min_value=2, max_value=5),
)
@settings(max_examples=30, deadline=None)
def test_coflow_and_echelon_agree_on_pure_coflows(sizes, n_hosts):
    """Property 2 at system level: a single Coflow completes at Gamma under
    both Varys and the EchelonFlow scheduler."""
    hosts = [f"h{i}" for i in range(n_hosts)]

    def run(scheduler):
        engine = Engine(big_switch(n_hosts, 2.0), scheduler)
        ef = EchelonFlow("c", TabledArrangement((0.0,)), job_id="j")
        flows = []
        for i, size in enumerate(sizes):
            src = hosts[i % n_hosts]
            dst = hosts[(i + 1) % n_hosts]
            flow = Flow(src, dst, size, group_id="c", index_in_group=0, job_id="j")
            ef.add_flow(flow)
            flows.append(flow)
        dag = TaskDag("j")
        dag.add_comm("x", flows)
        engine.submit(dag, echelonflows=(ef,))
        return engine.run().end_time

    coflow_time = run(CoflowMaddScheduler())
    echelon_time = run(EchelonMaddScheduler())
    assert echelon_time == pytest.approx(coflow_time, rel=1e-6)


@given(st.floats(min_value=0.1, max_value=5.0), st.floats(min_value=0.0, max_value=5.0))
@settings(max_examples=30, deadline=None)
def test_recalibration_achieves_optimal_max_tardiness(size, delay):
    """Fig. 6b: delay the later releases; echelon scheduling still achieves
    the minimum possible maximum tardiness (the oracle's in-order full-rate
    transmission), so the formation recovers as well as physics allows."""
    releases = [0.0, delay + 1.0, delay + 2.0]
    computes = [2.0, 2.0, 2.0]
    sizes = [size, size, size]
    job = build_pipeline_segment(
        "p", "h0", "h1", releases, sizes, computes, distance=2.0
    )
    engine = Engine(two_hosts(1.0), EchelonMaddScheduler())
    job.submit_to(engine)
    trace = engine.run()

    stages = [
        PipelineStageSpec(release_time=r, flow_size=s, compute_time=c)
        for r, s, c in zip(releases, sizes, computes)
    ]
    _, oracle_finishes, _ = single_link_pipeline_optimum(stages, 1.0)
    deadlines = [2.0 * j for j in range(3)]  # r = 0, distance 2
    oracle_max_tardiness = max(
        f - d for f, d in zip(oracle_finishes, deadlines)
    )
    measured = {r.flow.index_in_group: r for r in trace.flow_records}
    measured_max_tardiness = max(
        measured[j].finish - deadlines[j] for j in range(3)
    )
    assert measured_max_tardiness <= oracle_max_tardiness + 1e-6
