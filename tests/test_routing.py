"""Routers: shortest path, ECMP, determinism."""

import pytest

from repro.topology import (
    EcmpRouter,
    RoutingError,
    ShortestPathRouter,
    Topology,
    big_switch,
    fat_tree,
    leaf_spine,
    widest_bottleneck,
)


def test_shortest_path_on_big_switch():
    topo = big_switch(3, 10.0)
    router = ShortestPathRouter(topo)
    path = router.path("h0", "h1")
    assert [link.key for link in path] == [("h0", "core"), ("core", "h1")]


def test_path_is_cached_and_stable():
    topo = big_switch(3, 10.0)
    router = ShortestPathRouter(topo)
    assert router.path("h0", "h2") is router.path("h0", "h2")


def test_no_path_raises():
    topo = Topology("disconnected")
    topo.add_host("a")
    topo.add_host("b")
    topo.add_host("c")
    topo.add_duplex_link("a", "b", 1.0)
    router = ShortestPathRouter(topo)
    with pytest.raises(RoutingError):
        router.path("a", "c")


def test_router_validates_endpoints():
    topo = big_switch(2, 1.0)
    router = ShortestPathRouter(topo)
    with pytest.raises(ValueError):
        router.path("h0", "core")


def test_ecmp_enumerates_multiple_shortest_paths():
    topo = leaf_spine(2, 2, 10.0, n_spines=2)
    router = EcmpRouter(topo)
    # Cross-leaf pairs have one path per spine.
    hosts = topo.hosts
    cross = (hosts[0], hosts[2])
    assert len(router.paths(*cross)) == 2


def test_ecmp_is_deterministic_per_flow():
    topo = leaf_spine(2, 2, 10.0, n_spines=2)
    router = EcmpRouter(topo)
    a = router.path("h0", "h2", flow_id=5)
    b = router.path("h0", "h2", flow_id=5)
    assert a == b


def test_ecmp_spreads_flows_across_paths():
    topo = leaf_spine(2, 2, 10.0, n_spines=4)
    router = EcmpRouter(topo)
    chosen = {router.path("h0", "h2", flow_id=i) for i in range(32)}
    assert len(chosen) > 1


def test_ecmp_on_fat_tree_paths_have_consistent_length():
    topo = fat_tree(4, 1.0)
    router = EcmpRouter(topo)
    hosts = topo.hosts
    paths = router.paths(hosts[0], hosts[-1])
    lengths = {len(p) for p in paths}
    assert len(lengths) == 1  # all shortest


def test_widest_bottleneck():
    topo = Topology("t")
    topo.add_host("a")
    topo.add_switch("s")
    topo.add_host("b")
    topo.add_link("a", "s", 5.0)
    topo.add_link("s", "b", 2.0)
    router = ShortestPathRouter(topo)
    assert widest_bottleneck(router.path("a", "b")) == 2.0
    with pytest.raises(ValueError):
        widest_bottleneck([])
