"""Scheduler behaviour at the allocation level (no full simulation)."""

import pytest

from repro.core.arrangement import CoflowArrangement, StaggeredArrangement
from repro.core.echelonflow import EchelonFlow, make_coflow
from repro.core.flow import Flow
from repro.scheduling import (
    CoflowMaddScheduler,
    EchelonMaddScheduler,
    FairSharingScheduler,
    FifoFlowScheduler,
    ShortestFlowFirstScheduler,
    make_scheduler,
    scheduler_names,
)
from repro.scheduling.base import SchedulerView
from repro.scheduling.coflow_madd import madd_rates, remaining_gamma
from repro.simulator.network import NetworkModel
from repro.topology import ShortestPathRouter, big_switch, two_hosts


def _view(topology, flows, now=0.0, echelonflows=()):
    network = NetworkModel(topology, ShortestPathRouter(topology))
    for flow in flows:
        state = network.inject(flow, now=now)
        group = {ef.ef_id: ef for ef in echelonflows}.get(flow.group_id)
        if group is not None:
            group.observe_flow_start(flow, now)
            if group.reference_time is not None:
                state.ideal_finish_time = group.ideal_finish_time_of(flow)
    return SchedulerView(
        now=now,
        network=network,
        echelonflows={ef.ef_id: ef for ef in echelonflows},
    )


class TestFairSharing:
    def test_equal_split(self):
        topo = big_switch(3, 10.0)
        f1 = Flow("h0", "h1", 100.0)
        f2 = Flow("h0", "h2", 100.0)
        view = _view(topo, [f1, f2])
        rates = FairSharingScheduler().allocate(view)
        assert rates[f1.flow_id] == pytest.approx(5.0)
        assert rates[f2.flow_id] == pytest.approx(5.0)

    def test_job_weights(self):
        topo = big_switch(3, 12.0)
        f1 = Flow("h0", "h1", 100.0, job_id="a")
        f2 = Flow("h0", "h2", 100.0, job_id="b")
        view = _view(topo, [f1, f2])
        rates = FairSharingScheduler(weight_by_job={"a": 2.0}).allocate(view)
        assert rates[f1.flow_id] == pytest.approx(8.0)
        assert rates[f2.flow_id] == pytest.approx(4.0)


class TestSizeBased:
    def test_sjf_prioritizes_small(self):
        topo = big_switch(3, 10.0)
        small = Flow("h0", "h1", 1.0)
        large = Flow("h0", "h2", 100.0)
        view = _view(topo, [large, small])
        rates = ShortestFlowFirstScheduler().allocate(view)
        assert rates[small.flow_id] == pytest.approx(10.0)
        assert rates[large.flow_id] == pytest.approx(0.0)

    def test_fifo_prioritizes_earlier_start(self):
        topo = big_switch(3, 10.0)
        network = NetworkModel(topo, ShortestPathRouter(topo))
        first = Flow("h0", "h1", 100.0)
        second = Flow("h0", "h2", 1.0)
        network.inject(first, now=0.0)
        network.inject(second, now=1.0)
        view = SchedulerView(now=1.0, network=network)
        rates = FifoFlowScheduler().allocate(view)
        assert rates[first.flow_id] == pytest.approx(10.0)
        assert rates[second.flow_id] == pytest.approx(0.0)


class TestCoflowMadd:
    def test_gamma_and_madd_on_big_switch(self):
        topo = big_switch(4, 2.0)
        flows = [
            Flow("h0", "h1", 12.0, group_id="c"),
            Flow("h0", "h2", 4.0, group_id="c"),
            Flow("h3", "h1", 6.0, group_id="c"),
        ]
        view = _view(topo, flows, echelonflows=[make_coflow("c", flows)])
        network = view.network
        states = network.active_states()
        caps = {}
        for state in states:
            for link in network.path(state.flow.flow_id):
                caps[link.key] = link.capacity
        gamma = remaining_gamma(states, network, caps)
        # Ingress of h1 carries 18 bytes at cap 2 -> Gamma = 9.
        assert gamma == pytest.approx(9.0)
        rates = madd_rates(states, network, caps)
        for state in states:
            assert rates[state.flow.flow_id] == pytest.approx(state.remaining / 9.0)

    def test_all_flows_finish_together(self):
        topo = big_switch(4, 2.0)
        flows = [
            Flow("h0", "h1", 12.0, group_id="c"),
            Flow("h0", "h2", 4.0, group_id="c"),
        ]
        view = _view(topo, flows, echelonflows=[make_coflow("c", flows)])
        rates = CoflowMaddScheduler(backfill=False).allocate(view)
        finish = {f.flow_id: f.size / rates[f.flow_id] for f in flows}
        values = list(finish.values())
        assert values[0] == pytest.approx(values[1])

    def test_sebf_prioritizes_small_coflow(self):
        topo = big_switch(3, 10.0)
        small = Flow("h0", "h1", 5.0, group_id="small")
        large = Flow("h0", "h2", 100.0, group_id="large")
        view = _view(
            topo,
            [small, large],
            echelonflows=[make_coflow("small", [small]), make_coflow("large", [large])],
        )
        rates = CoflowMaddScheduler().allocate(view)
        # Small coflow paced to its own Gamma = 0.5 -> full rate; large
        # backfills the rest.
        assert rates[small.flow_id] == pytest.approx(10.0)
        assert rates[large.flow_id] == pytest.approx(0.0)

    def test_backfill_uses_leftover(self):
        topo = big_switch(4, 10.0)
        a = Flow("h0", "h1", 10.0, group_id="a")
        b = Flow("h2", "h3", 100.0, group_id="b")
        view = _view(
            topo,
            [a, b],
            echelonflows=[make_coflow("a", [a]), make_coflow("b", [b])],
        )
        rates = CoflowMaddScheduler(backfill=True).allocate(view)
        # Disjoint paths: both run at line rate.
        assert rates[a.flow_id] == pytest.approx(10.0)
        assert rates[b.flow_id] == pytest.approx(10.0)

    def test_ungrouped_flows_are_singletons(self):
        topo = big_switch(3, 10.0)
        f1 = Flow("h0", "h1", 5.0)
        f2 = Flow("h0", "h2", 50.0)
        view = _view(topo, [f1, f2])
        rates = CoflowMaddScheduler().allocate(view)
        assert rates[f1.flow_id] == pytest.approx(10.0)


class TestEchelonMadd:
    def test_coflow_arrangement_reduces_to_madd(self):
        """Property 2 executable: Eq.-5 EF gets exactly MADD rates."""
        topo = big_switch(4, 2.0)
        flows = [
            Flow("h0", "h1", 12.0, group_id="c", index_in_group=0),
            Flow("h0", "h2", 4.0, group_id="c", index_in_group=0),
            Flow("h3", "h1", 6.0, group_id="c", index_in_group=0),
        ]
        ef = EchelonFlow("c", CoflowArrangement())
        for f in flows:
            ef.add_flow(f)
        view = _view(topo, flows, echelonflows=[ef])
        echelon = EchelonMaddScheduler(backfill=False).allocate(view)
        varys = CoflowMaddScheduler(backfill=False).allocate(view)
        for flow in flows:
            assert echelon[flow.flow_id] == pytest.approx(varys[flow.flow_id])

    def test_staggered_deadlines_prioritize_head(self):
        topo = two_hosts(1.0)
        ef = EchelonFlow("ef", StaggeredArrangement(distance=2.0))
        f0 = Flow("h0", "h1", 2.0, group_id="ef", index_in_group=0)
        f1 = Flow("h0", "h1", 2.0, group_id="ef", index_in_group=1)
        ef.add_flow(f0)
        ef.add_flow(f1)
        view = _view(topo, [f0, f1], echelonflows=[ef])
        rates = EchelonMaddScheduler().allocate(view)
        # Head flow is already due (d0 = r = 0): full rate; f1 waits.
        assert rates[f0.flow_id] == pytest.approx(1.0)
        assert rates[f1.flow_id] == pytest.approx(0.0)

    def test_future_deadline_is_paced_without_backfill(self):
        # Disjoint paths so pacing is observable: f0 (due now) runs at line
        # rate, f1 (due at t=10) is paced to land exactly on its deadline.
        topo = big_switch(4, 10.0)
        ef = EchelonFlow("ef", StaggeredArrangement(distance=10.0))
        f0 = Flow("h0", "h1", 2.0, group_id="ef", index_in_group=0)
        f1 = Flow("h2", "h3", 2.0, group_id="ef", index_in_group=1)
        ef.add_flow(f0)
        ef.add_flow(f1)
        view = _view(topo, [f0, f1], echelonflows=[ef])
        rates = EchelonMaddScheduler(backfill=False).allocate(view)
        assert rates[f0.flow_id] == pytest.approx(10.0)
        assert rates[f1.flow_id] == pytest.approx(0.2)

    def test_late_stage_starved_by_urgent_head_on_shared_link(self):
        # On one shared link the due-now head flow takes everything; the
        # later stage waits (EDF), exactly the Fig. 2c staggered service.
        topo = two_hosts(10.0)
        ef = EchelonFlow("ef", StaggeredArrangement(distance=10.0))
        f0 = Flow("h0", "h1", 2.0, group_id="ef", index_in_group=0)
        f1 = Flow("h0", "h1", 2.0, group_id="ef", index_in_group=1)
        ef.add_flow(f0)
        ef.add_flow(f1)
        view = _view(topo, [f0, f1], echelonflows=[ef])
        rates = EchelonMaddScheduler(backfill=False).allocate(view)
        assert rates[f0.flow_id] == pytest.approx(10.0)
        assert rates[f1.flow_id] == pytest.approx(0.0)

    def test_backfill_makes_work_conserving(self):
        topo = two_hosts(10.0)
        ef = EchelonFlow("ef", StaggeredArrangement(distance=10.0))
        f0 = Flow("h0", "h1", 2.0, group_id="ef", index_in_group=0)
        ef.add_flow(f0)
        view = _view(topo, [f0], echelonflows=[ef])
        rates = EchelonMaddScheduler(backfill=True).allocate(view)
        assert rates[f0.flow_id] == pytest.approx(10.0)

    def test_flow_start_anchor_ignores_arrangement(self):
        topo = two_hosts(1.0)
        ef = EchelonFlow("ef", StaggeredArrangement(distance=5.0))
        f0 = Flow("h0", "h1", 2.0, group_id="ef", index_in_group=0)
        f1 = Flow("h0", "h1", 2.0, group_id="ef", index_in_group=1)
        ef.add_flow(f0)
        ef.add_flow(f1)
        view = _view(topo, [f0, f1], echelonflows=[ef])
        rates = EchelonMaddScheduler(anchor="flow_start", backfill=False).allocate(view)
        # Both anchored at start=now: both urgent; EDF tie -> stage order by
        # deadline collapses; both flows form one stage paced by Gamma.
        total = rates[f0.flow_id] + rates[f1.flow_id]
        assert total == pytest.approx(1.0)

    def test_invalid_options_rejected(self):
        with pytest.raises(ValueError):
            EchelonMaddScheduler(ordering="bogus")
        with pytest.raises(ValueError):
            EchelonMaddScheduler(anchor="bogus")


class TestRegistry:
    def test_names_registered(self):
        names = scheduler_names()
        for expected in ("fair", "sjf", "fifo", "coflow", "echelon"):
            assert expected in names

    def test_make_scheduler(self):
        scheduler = make_scheduler("echelon", ordering="sebf")
        assert isinstance(scheduler, EchelonMaddScheduler)
        assert scheduler.ordering == "sebf"

    def test_unknown_name(self):
        with pytest.raises(KeyError):
            make_scheduler("nope")
