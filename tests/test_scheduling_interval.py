"""Interval-based rescheduling (Section 5's second rerun policy)."""

import pytest

from repro import Engine, big_switch, two_hosts
from repro.core.flow import Flow
from repro.scheduling import EchelonMaddScheduler, FairSharingScheduler
from repro.simulator import TaskDag


def test_interval_validation():
    with pytest.raises(ValueError):
        Engine(two_hosts(1.0), FairSharingScheduler(), scheduling_interval=0.0)
    with pytest.raises(ValueError):
        Engine(two_hosts(1.0), FairSharingScheduler(), scheduling_interval=-1.0)


def test_invocation_counter_counts():
    engine = Engine(two_hosts(1.0), FairSharingScheduler())
    dag = TaskDag("j")
    dag.add_comm("x", [Flow("h0", "h1", 2.0, job_id="j")])
    engine.submit(dag)
    engine.run()
    assert engine.scheduler_invocations >= 1


def test_departures_do_not_reschedule_under_interval_mode():
    """After a flow departs, survivors keep stale rates until the tick."""
    engine = Engine(
        big_switch(3, 10.0), FairSharingScheduler(), scheduling_interval=5.0
    )
    dag = TaskDag("j")
    # Two flows share h0's egress: fair split 5/5. The small one departs
    # at t=0.2; with a 5s tick the big one keeps rate 5 long afterwards.
    dag.add_comm("x", [Flow("h0", "h1", 1.0, job_id="j")])
    dag.add_comm("y", [Flow("h0", "h2", 10.0, job_id="j")])
    engine.submit(dag)
    trace = engine.run()
    big = max(trace.flow_records, key=lambda r: r.flow.size)
    # Per-event would finish at 0.2 + 9/10 = 1.1; stale 5 B/s gives 2.0.
    assert big.finish == pytest.approx(2.0)


def test_per_event_mode_uses_freed_capacity_immediately():
    engine = Engine(big_switch(3, 10.0), FairSharingScheduler())
    dag = TaskDag("j")
    dag.add_comm("x", [Flow("h0", "h1", 1.0, job_id="j")])
    dag.add_comm("y", [Flow("h0", "h2", 10.0, job_id="j")])
    engine.submit(dag)
    trace = engine.run()
    big = max(trace.flow_records, key=lambda r: r.flow.size)
    assert big.finish == pytest.approx(1.1)


def test_tick_picks_up_freed_capacity():
    engine = Engine(
        big_switch(3, 10.0), FairSharingScheduler(), scheduling_interval=0.5
    )
    dag = TaskDag("j")
    dag.add_comm("x", [Flow("h0", "h1", 1.0, job_id="j")])
    dag.add_comm("y", [Flow("h0", "h2", 10.0, job_id="j")])
    engine.submit(dag)
    trace = engine.run()
    big = max(trace.flow_records, key=lambda r: r.flow.size)
    # Departure at 0.2; ticks at 0.5, 1.0, ... -> big flow: 5 B/s until
    # 0.5 (2.5B done), then 10 B/s: remaining 7.5B -> finish 1.25.
    assert big.finish == pytest.approx(1.25)


def test_arrivals_still_reschedule_immediately():
    """New flows must not wait for a tick (they'd otherwise sit at rate 0)."""
    engine = Engine(
        big_switch(3, 10.0), FairSharingScheduler(), scheduling_interval=100.0
    )
    dag = TaskDag("j")
    dag.add_comm("x", [Flow("h0", "h1", 10.0, job_id="j")])
    engine.submit(dag)
    engine.inject_background_flow(Flow("h0", "h2", 1.0), at_time=0.3)
    trace = engine.run()
    background = min(trace.flow_records, key=lambda r: r.flow.size)
    assert background.start == pytest.approx(0.3)
    # It received a rate right away (fair split of h0 egress).
    assert background.finish == pytest.approx(0.3 + 0.2)


def test_idle_network_cancels_tick_and_ends_cleanly():
    engine = Engine(
        two_hosts(1.0), FairSharingScheduler(), scheduling_interval=50.0
    )
    dag = TaskDag("j")
    dag.add_comm("x", [Flow("h0", "h1", 1.0, job_id="j")])
    engine.submit(dag)
    trace = engine.run()
    # Without tick cancellation the run would drag to the 50s tick.
    assert trace.end_time == pytest.approx(1.0)


def test_interval_results_converge_to_per_event():
    from repro.core.units import gbps, megabytes
    from repro.workloads import build_fsdp, uniform_model

    model = uniform_model(
        "u4",
        4,
        param_bytes_per_layer=megabytes(20),
        activation_bytes=megabytes(5),
        forward_time=0.004,
    )

    def run(interval):
        job = build_fsdp("j", model, ["h0", "h1", "h2", "h3"])
        engine = Engine(
            big_switch(4, gbps(10)),
            EchelonMaddScheduler(),
            scheduling_interval=interval,
        )
        job.submit_to(engine)
        return engine.run().end_time

    exact = run(None)
    fine = run(1e-5)
    coarse = run(0.05)
    assert fine == pytest.approx(exact, rel=0.02)
    assert coarse >= exact - 1e-9
