"""Sincronia BSSI ordering and scheduling."""

import pytest

from repro.core.echelonflow import make_coflow
from repro.core.flow import Flow
from repro.scheduling import SincroniaScheduler, bssi_order
from repro.scheduling.base import SchedulerView
from repro.simulator import Engine, TaskDag
from repro.simulator.network import NetworkModel
from repro.topology import ShortestPathRouter, big_switch, two_hosts


def _network(topo, flows):
    network = NetworkModel(topo, ShortestPathRouter(topo))
    for flow in flows:
        network.inject(flow, 0.0)
    return network


class TestBssiOrder:
    def test_small_coflow_ranks_first_on_shared_port(self):
        topo = two_hosts(1.0)
        small = Flow("h0", "h1", 1.0, group_id="small")
        large = Flow("h0", "h1", 100.0, group_id="large")
        network = _network(topo, [small, large])
        order = bssi_order(
            {"small": [network.state(small.flow_id)], "large": [network.state(large.flow_id)]},
            network,
        )
        assert order == ["small", "large"]

    def test_weights_shift_the_order(self):
        topo = two_hosts(1.0)
        small = Flow("h0", "h1", 10.0, group_id="small")
        large = Flow("h0", "h1", 20.0, group_id="large")
        network = _network(topo, [small, large])
        coflows = {
            "small": [network.state(small.flow_id)],
            "large": [network.state(large.flow_id)],
        }
        plain = bssi_order(coflows, network)
        boosted = bssi_order(coflows, network, weights={"large": 100.0})
        assert plain == ["small", "large"]
        assert boosted == ["large", "small"]

    def test_order_is_deterministic_and_complete(self):
        topo = big_switch(4, 1.0)
        flows = [
            Flow("h0", "h1", 5.0, group_id=f"c{i}") for i in range(3)
        ] + [Flow("h2", "h3", 7.0, group_id="c3")]
        network = _network(topo, flows)
        coflows = {}
        for flow in flows:
            coflows.setdefault(flow.group_id, []).append(network.state(flow.flow_id))
        order_a = bssi_order(coflows, network)
        order_b = bssi_order(coflows, network)
        assert order_a == order_b
        assert sorted(order_a) == ["c0", "c1", "c2", "c3"]

    def test_empty(self):
        topo = two_hosts(1.0)
        network = _network(topo, [])
        assert bssi_order({}, network) == []


class TestSincroniaScheduler:
    def test_allocation_respects_order(self):
        topo = two_hosts(1.0)
        small = Flow("h0", "h1", 1.0, group_id="small")
        large = Flow("h0", "h1", 100.0, group_id="large")
        network = _network(topo, [small, large])
        view = SchedulerView(now=0.0, network=network)
        rates = SincroniaScheduler().allocate(view)
        assert rates[small.flow_id] == pytest.approx(1.0)
        assert rates[large.flow_id] == pytest.approx(0.0)

    def test_single_coflow_cct_matches_port_bound(self):
        topo = big_switch(3, 2.0)
        flows = [
            Flow("h0", "h1", 8.0, group_id="c"),
            Flow("h0", "h2", 4.0, group_id="c"),
        ]
        coflow = make_coflow("c", flows)
        engine = Engine(topo, SincroniaScheduler())
        dag = TaskDag("j")
        dag.add_comm("x", list(coflow.flows))
        engine.submit(dag, echelonflows=(coflow,))
        trace = engine.run()
        # Egress h0 carries 12 bytes at 2 B/s: work-conserving greedy keeps
        # the port busy, finishing everything at 6.
        assert trace.end_time == pytest.approx(6.0)

    def test_better_than_fifo_on_mixed_sizes(self):
        from repro.scheduling import FifoFlowScheduler

        def run(scheduler):
            topo = two_hosts(1.0)
            engine = Engine(topo, scheduler)
            # Large coflow arrives first, then a stream of small ones.
            dag = TaskDag("j")
            dag.add_comm("big", [Flow("h0", "h1", 50.0, group_id="big", job_id="j")])
            engine.submit(dag)
            for i in range(5):
                small_dag = TaskDag(f"s{i}")
                small_dag.add_comm(
                    f"small{i}",
                    [Flow("h0", "h1", 1.0, group_id=f"small{i}", job_id=f"s{i}")],
                )
                engine.submit(small_dag, at_time=1.0 + i)
            trace = engine.run()
            smalls = [
                r.completion_time
                for r in trace.flow_records
                if r.flow.group_id.startswith("small")
            ]
            return sum(smalls) / len(smalls)

        assert run(SincroniaScheduler()) < run(FifoFlowScheduler())

    def test_registered(self):
        from repro.scheduling import make_scheduler, scheduler_names

        assert "sincronia" in scheduler_names()
        assert isinstance(make_scheduler("sincronia"), SincroniaScheduler)
