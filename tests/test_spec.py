"""Declarative experiment specs."""

import json

import pytest

from repro.workloads import SpecError, run_spec, run_spec_file


def _base_spec(**overrides):
    spec = {
        "topology": {"kind": "big_switch", "hosts": 4, "bandwidth_gbps": 10},
        "scheduler": {"name": "echelon"},
        "jobs": [
            {
                "name": "j1",
                "paradigm": "dp-allreduce",
                "model": "tiny_mlp",
                "workers": 2,
                "bucket_mb": 2,
            }
        ],
    }
    spec.update(overrides)
    return spec


def test_minimal_spec_runs():
    results = run_spec(_base_spec())
    assert results["makespan"] > 0
    assert results["jobs"]["j1"]["paradigm"] == "dp-allreduce"
    assert results["jobs"]["j1"]["flows"] > 0


def test_multiple_jobs_first_fit_hosts():
    spec = _base_spec(
        jobs=[
            {"name": "a", "paradigm": "dp-allreduce", "model": "tiny_mlp",
             "workers": 2, "bucket_mb": 2},
            {"name": "b", "paradigm": "dp-allreduce", "model": "tiny_mlp",
             "workers": 2, "bucket_mb": 2, "arrival": 0.001},
        ]
    )
    results = run_spec(spec)
    assert set(results["jobs"]) == {"a", "b"}


def test_explicit_worker_lists():
    spec = _base_spec()
    spec["jobs"][0]["workers"] = ["h0", "h3"]
    results = run_spec(spec)
    assert results["jobs"]["j1"]["completion_time"] > 0


@pytest.mark.parametrize(
    "paradigm,extra",
    [
        ("dp-ps", {}),
        ("pp-gpipe", {"micro_batches": 2}),
        ("pp-1f1b", {"micro_batches": 2}),
        ("tp", {}),
        ("fsdp", {}),
    ],
)
def test_every_paradigm_via_spec(paradigm, extra):
    spec = _base_spec()
    spec["topology"]["hosts"] = 5  # room for a PS
    spec["jobs"][0].update({"paradigm": paradigm, **extra})
    results = run_spec(spec)
    assert results["jobs"]["j1"]["paradigm"].startswith(paradigm.split("-")[0])


@pytest.mark.parametrize(
    "topo",
    [
        {"kind": "linear_chain", "hosts": 4},
        {"kind": "leaf_spine", "leaves": 2, "hosts_per_leaf": 2},
        {"kind": "fat_tree", "k": 4},
        {"kind": "dumbbell", "left": 2, "right": 2, "bottleneck_gbps": 5},
    ],
)
def test_every_topology_kind(topo):
    spec = _base_spec(topology=topo)
    if topo["kind"] == "linear_chain":
        spec["jobs"][0]["paradigm"] = "pp-gpipe"
        spec["jobs"][0]["micro_batches"] = 2
    results = run_spec(spec)
    assert results["makespan"] > 0


def test_scheduler_options_pass_through():
    spec = _base_spec(scheduler={"name": "echelon", "ordering": "sebf"})
    assert run_spec(spec)["scheduler"] == "echelon"


def test_scheduling_interval_option():
    spec = _base_spec(scheduling_interval=0.01)
    assert run_spec(spec)["makespan"] > 0


def test_spec_errors():
    with pytest.raises(SpecError):
        run_spec({"jobs": []})
    with pytest.raises(SpecError):
        run_spec(_base_spec(topology={"kind": "torus", "hosts": 4}))
    bad = _base_spec()
    bad["jobs"][0]["paradigm"] = "quantum"
    with pytest.raises(SpecError):
        run_spec(bad)
    nameless = _base_spec()
    del nameless["jobs"][0]["name"]
    with pytest.raises(SpecError):
        run_spec(nameless)
    crowded = _base_spec()
    crowded["jobs"][0]["workers"] = 99
    with pytest.raises(SpecError):
        run_spec(crowded)
    unknown_hosts = _base_spec()
    unknown_hosts["jobs"][0]["workers"] = ["h0", "ghost"]
    with pytest.raises(SpecError):
        run_spec(unknown_hosts)


def test_run_spec_file(tmp_path):
    path = tmp_path / "spec.json"
    path.write_text(json.dumps(_base_spec()))
    results = run_spec_file(str(path))
    assert results["jobs"]["j1"]["completion_time"] > 0


def test_cli_run_spec(tmp_path, capsys):
    from repro.cli import main

    path = tmp_path / "spec.json"
    path.write_text(json.dumps(_base_spec()))
    assert main(["run-spec", str(path), "--json"]) == 0
    out = capsys.readouterr().out
    assert "makespan" in out and "j1" in out
    assert '"completion_time"' in out
