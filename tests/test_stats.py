"""Bootstrap statistics helpers."""

import pytest

from repro.analysis import (
    bootstrap_ci,
    paired_compare,
    replicate,
    summarize,
)


def test_summarize_basics():
    summary = summarize([1.0, 2.0, 3.0, 4.0])
    assert summary.n == 4
    assert summary.mean == pytest.approx(2.5)
    assert summary.stdev == pytest.approx(1.2909944, rel=1e-6)
    assert summary.ci_low <= summary.mean <= summary.ci_high


def test_ci_narrows_with_more_data():
    narrow = summarize([10.0 + 0.01 * i for i in range(50)])
    wide = summarize([10.0, 20.0, 0.0])
    assert (narrow.ci_high - narrow.ci_low) < (wide.ci_high - wide.ci_low)


def test_ci_contains_true_mean_for_tight_data():
    low, high = bootstrap_ci([5.0] * 10)
    assert low == pytest.approx(5.0)
    assert high == pytest.approx(5.0)


def test_bootstrap_deterministic_given_seed():
    values = [1.0, 3.0, 2.0, 5.0]
    assert bootstrap_ci(values, seed=1) == bootstrap_ci(values, seed=1)


def test_bootstrap_validation():
    with pytest.raises(ValueError):
        bootstrap_ci([])
    with pytest.raises(ValueError):
        bootstrap_ci([1.0], confidence=1.5)
    with pytest.raises(ValueError):
        bootstrap_ci([1.0], resamples=0)
    with pytest.raises(ValueError):
        summarize([])


def test_paired_compare_detects_consistent_improvement():
    baseline = [1.0, 1.1, 0.9, 1.05, 0.95]
    better = [x - 0.2 for x in baseline]
    result = paired_compare(baseline, better)
    assert result.mean_diff == pytest.approx(-0.2)
    assert result.wins == 5
    assert result.significant
    assert result.ci_high < 0


def test_paired_compare_no_difference_is_insignificant():
    a = [1.0, 2.0, 3.0, 2.5, 1.5, 2.2]
    b = [1.1, 1.9, 3.05, 2.4, 1.55, 2.1]
    result = paired_compare(a, b)
    assert not result.significant


def test_paired_compare_validation():
    with pytest.raises(ValueError):
        paired_compare([1.0], [1.0, 2.0])
    with pytest.raises(ValueError):
        paired_compare([], [])


def test_replicate_runs_per_seed():
    values = replicate(lambda seed: float(seed * seed), [1, 2, 3])
    assert values == [1.0, 4.0, 9.0]
    with pytest.raises(ValueError):
        replicate(lambda seed: 0.0, [])
