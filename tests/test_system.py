"""The Fig. 7 system stack: messages, agent, coordinator, enforcement."""

import pytest

from repro.core.arrangement import (
    CoflowArrangement,
    PhasedArrangement,
    StaggeredArrangement,
    TabledArrangement,
)
from repro.core.echelonflow import EchelonFlow
from repro.core.flow import Flow
from repro.scheduling import EchelonMaddScheduler, FairSharingScheduler
from repro.system import (
    ArrangementDescriptor,
    ArrangementKind,
    Coordinator,
    CoordinatedScheduler,
    EchelonFlowAgent,
    QueueEnforcedScheduler,
    allocation_error,
    quantize_to_queue,
    run_cluster,
)
from repro.system.messages import EchelonFlowRequest, FlowInfo
from repro.topology import big_switch, two_hosts
from repro.workloads import build_pipeline_segment, build_dp_allreduce, uniform_model


class TestArrangementDescriptor:
    @pytest.mark.parametrize(
        "arrangement",
        [
            CoflowArrangement(),
            StaggeredArrangement(2.5),
            PhasedArrangement(layers=3, forward_distance=1.0, backward_distance=2.0),
            TabledArrangement((0.0, 0.5, 2.0)),
        ],
    )
    def test_round_trip(self, arrangement):
        descriptor = ArrangementDescriptor.from_arrangement(arrangement, count=3)
        rebuilt = descriptor.build()
        for j in range(3):
            assert rebuilt.offset(j) == pytest.approx(arrangement.offset(j))

    def test_kinds(self):
        assert (
            ArrangementDescriptor.from_arrangement(CoflowArrangement(), 1).kind
            is ArrangementKind.COFLOW
        )
        assert (
            ArrangementDescriptor.from_arrangement(StaggeredArrangement(1.0), 2).kind
            is ArrangementKind.STAGGERED
        )


class TestCoordinator:
    def _request(self, ef_id="ef"):
        return EchelonFlowRequest(
            ef_id=ef_id,
            job_id="j",
            framework="fw",
            arrangement=ArrangementDescriptor(ArrangementKind.STAGGERED, (2.0,)),
            flows=(FlowInfo(flow_id=0, src="h0", dst="h1", size=1.0, index_in_group=0),),
        )

    def test_register_builds_echelonflow(self):
        coordinator = Coordinator()
        ef = coordinator.register(self._request())
        assert ef.ef_id == "ef"
        assert ef.arrangement.distance == 2.0
        assert coordinator.request_log[0].framework == "fw"

    def test_duplicate_registration_rejected(self):
        coordinator = Coordinator()
        coordinator.register(self._request())
        with pytest.raises(ValueError):
            coordinator.register(self._request())

    def test_deregister_is_idempotent(self):
        coordinator = Coordinator()
        coordinator.register(self._request())
        coordinator.deregister("ef")
        coordinator.deregister("ef")
        assert "ef" not in coordinator.echelonflows


class TestAgent:
    def test_report_echelonflow_registers_flows(self):
        coordinator = Coordinator()
        agent = EchelonFlowAgent("fw", coordinator)
        ef = EchelonFlow("ef", StaggeredArrangement(1.0), job_id="j")
        flow = Flow("h0", "h1", 5.0, group_id="ef", index_in_group=0)
        ef.add_flow(flow)
        registered = agent.report_echelonflow(ef)
        assert registered is coordinator.echelonflows["ef"]
        assert registered.cardinality == 1
        with pytest.raises(ValueError):
            agent.report_echelonflow(ef)

    def test_enqueue_maps_rate_to_queue(self):
        coordinator = Coordinator()
        agent = EchelonFlowAgent("fw", coordinator, num_queues=8)
        flow = Flow("h0", "h1", 5.0)
        full = agent.enqueue(flow, rate=10.0, egress_capacity=10.0)
        trickle = agent.enqueue(flow, rate=0.01, egress_capacity=10.0)
        assert full.queue > trickle.queue
        assert agent.enqueue_log == [full, trickle]


class TestQueueEnforcement:
    def test_quantize_bounds(self):
        assert quantize_to_queue(0.0, 8) == 0
        assert quantize_to_queue(1.0, 8) == 7
        assert quantize_to_queue(1e-9, 8) == 0
        with pytest.raises(ValueError):
            quantize_to_queue(0.5, 0)

    def test_quantize_monotone_in_share(self):
        shares = [0.001, 0.01, 0.1, 0.5, 1.0]
        queues = [quantize_to_queue(s, 8) for s in shares]
        assert queues == sorted(queues)

    def test_enforced_rates_approximate_ideal(self):
        # Two flows with very different urgency; enforcement should keep
        # the priority inversion-free ordering.
        topo = big_switch(3, 10.0)
        from repro.scheduling.base import SchedulerView
        from repro.simulator.network import NetworkModel
        from repro.topology import ShortestPathRouter

        network = NetworkModel(topo, ShortestPathRouter(topo))
        urgent = Flow("h0", "h1", 1.0)
        lazy = Flow("h0", "h2", 100.0)
        network.inject(urgent, 0.0)
        network.inject(lazy, 0.0)
        view = SchedulerView(now=0.0, network=network)

        from repro.scheduling import ShortestFlowFirstScheduler

        inner = ShortestFlowFirstScheduler()
        enforced = QueueEnforcedScheduler(inner, num_queues=8)
        ideal = inner.allocate(view)
        achieved = enforced.allocate(view)
        assert achieved[urgent.flow_id] > achieved[lazy.flow_id]
        mean_err, max_err = allocation_error(ideal, achieved)
        assert mean_err <= 1.0  # sanity: bounded distortion

    def test_allocation_error_ignores_zero_targets(self):
        assert allocation_error({1: 0.0}, {1: 5.0}) == (0.0, 0.0)
        mean_err, max_err = allocation_error({1: 10.0}, {1: 5.0})
        assert mean_err == pytest.approx(0.5)
        assert max_err == pytest.approx(0.5)

    def test_validation(self):
        with pytest.raises(ValueError):
            QueueEnforcedScheduler(FairSharingScheduler(), num_queues=0)


class TestClusterRun:
    def test_fig2_through_the_full_stack(self):
        """Agent -> coordinator -> engine reproduces the direct result."""
        job = build_pipeline_segment(
            "j",
            "h0",
            "h1",
            release_times=[0.0, 1.0, 2.0],
            flow_sizes=[2.0, 2.0, 2.0],
            consumer_compute_times=[2.0, 2.0, 2.0],
        )
        run = run_cluster(two_hosts(1.0), [(job, 0.0)])
        assert run.trace.last_compute_end() == pytest.approx(8.0)
        assert run.coordinator.invocations > 0
        assert run.coordinator.request_log
        assert run.job_completion_times()["j"] == pytest.approx(8.0)

    def test_multi_job_cluster(self):
        model = uniform_model("m", 4, 50.0, 5.0, forward_time=0.5)
        job_a = build_dp_allreduce("a", model, ["h0", "h1"], bucket_bytes=1e9)
        job_b = build_dp_allreduce("b", model, ["h2", "h3"], bucket_bytes=1e9)
        run = run_cluster(big_switch(4, 100.0), [(job_a, 0.0), (job_b, 0.5)])
        jcts = run.job_completion_times()
        assert set(jcts) == {"a", "b"}
        assert all(t > 0 for t in jcts.values())

    def test_queue_enforcement_slows_but_completes(self):
        job = build_pipeline_segment(
            "j",
            "h0",
            "h1",
            release_times=[0.0, 1.0, 2.0],
            flow_sizes=[2.0, 2.0, 2.0],
            consumer_compute_times=[2.0, 2.0, 2.0],
        )
        run = run_cluster(two_hosts(1.0), [(job, 0.0)], enforce_with_queues=True)
        finish = run.trace.last_compute_end()
        assert finish >= 8.0 - 1e-9
        assert finish <= 12.0  # bounded distortion from quantization
