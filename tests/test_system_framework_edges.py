"""System-stack edge cases: arrivals, JCT accounting, registries."""

import pytest

from repro.core.units import gbps, megabytes
from repro.scheduling import CoflowMaddScheduler
from repro.system import Coordinator, run_cluster
from repro.topology import big_switch
from repro.workloads import build_dp_allreduce, uniform_model

MODEL = uniform_model(
    "u4",
    4,
    param_bytes_per_layer=megabytes(10),
    activation_bytes=megabytes(5),
    forward_time=0.002,
)


def _job(name, hosts):
    return build_dp_allreduce(name, MODEL, hosts, bucket_bytes=megabytes(20))


def test_jct_is_measured_from_arrival():
    run = run_cluster(
        big_switch(4, gbps(10)),
        [(_job("late", ["h0", "h1"]), 5.0)],
    )
    jct = run.job_completion_times()["late"]
    # The job arrives at t=5; its JCT must exclude the idle prefix.
    assert jct < 1.0
    assert run.trace.end_time > 5.0


def test_custom_coordinator_algorithm_is_used():
    coordinator = Coordinator(algorithm=CoflowMaddScheduler())
    run = run_cluster(
        big_switch(4, gbps(10)),
        [(_job("j", ["h0", "h1"]), 0.0)],
        coordinator=coordinator,
    )
    assert run.coordinator is coordinator
    assert coordinator.invocations > 0


def test_agents_register_disjoint_echelonflows():
    run = run_cluster(
        big_switch(4, gbps(10)),
        [(_job("a", ["h0", "h1"]), 0.0), (_job("b", ["h2", "h3"]), 0.0)],
    )
    registered = run.coordinator.echelonflows
    a_groups = {k for k in registered if k.startswith("a/")}
    b_groups = {k for k in registered if k.startswith("b/")}
    assert a_groups and b_groups
    assert a_groups.isdisjoint(b_groups)
    # Per-agent logs carry only that framework's groups.
    for framework in run.frameworks:
        for ef_id in framework.agent.registered:
            assert ef_id.startswith(framework.job.job_id + "/")


def test_coordinator_allocation_log_is_chronological():
    run = run_cluster(
        big_switch(4, gbps(10)),
        [(_job("j", ["h0", "h1"]), 0.0)],
    )
    times = [a.issued_at for a in run.coordinator.allocation_log]
    assert times == sorted(times)


def test_reference_times_pinned_through_the_stack():
    run = run_cluster(
        big_switch(4, gbps(10)),
        [(_job("j", ["h0", "h1"]), 0.25)],
    )
    for ef in run.coordinator.echelonflows.values():
        assert ef.reference_time is not None
        assert ef.reference_time >= 0.25
