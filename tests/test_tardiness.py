"""Tardiness metrics and objectives (Eqs. 1-4)."""

import pytest

from repro.core.arrangement import StaggeredArrangement
from repro.core.echelonflow import EchelonFlow
from repro.core.flow import Flow
from repro.core.tardiness import (
    CompletionTimeObjective,
    FlowOutcome,
    TardinessObjective,
    evaluate_tardiness,
    max_tardiness,
    sum_tardiness_by_group,
)


def _outcome(flow_id, start, finish, ideal, group="g"):
    return FlowOutcome(
        flow_id=flow_id,
        group_id=group,
        start_time=start,
        finish_time=finish,
        ideal_finish_time=ideal,
    )


def test_flow_outcome_metrics():
    outcome = _outcome(1, start=2.0, finish=7.0, ideal=5.0)
    assert outcome.completion_time == pytest.approx(5.0)
    assert outcome.tardiness == pytest.approx(2.0)


def test_flow_outcome_tardiness_requires_ideal():
    outcome = _outcome(1, start=0.0, finish=1.0, ideal=None)
    with pytest.raises(ValueError):
        _ = outcome.tardiness


def test_max_tardiness():
    outcomes = [
        _outcome(1, 0.0, 3.0, 1.0),  # 2.0
        _outcome(2, 0.0, 3.0, 2.5),  # 0.5
    ]
    assert max_tardiness(outcomes) == pytest.approx(2.0)
    assert max_tardiness([]) == 0.0


def test_sum_tardiness_by_group():
    outcomes = [
        _outcome(1, 0.0, 3.0, 1.0, group="a"),
        _outcome(2, 0.0, 2.0, 1.0, group="a"),
        _outcome(3, 0.0, 5.0, 5.0, group="b"),
        FlowOutcome(4, None, 0.0, 9.0, 1.0),  # ungrouped: ignored
    ]
    per_group = sum_tardiness_by_group(outcomes)
    assert per_group == {"a": pytest.approx(2.0), "b": pytest.approx(0.0)}


def test_evaluate_tardiness_report():
    ef1 = EchelonFlow("a", StaggeredArrangement(1.0), weight=2.0)
    f1 = Flow("h0", "h1", 1.0, group_id="a", index_in_group=0)
    f2 = Flow("h0", "h1", 1.0, group_id="a", index_in_group=1)
    ef1.add_flow(f1)
    ef1.add_flow(f2)
    ef1.set_reference_time(0.0)  # ideals 0, 1
    report = evaluate_tardiness([ef1], {f1.flow_id: 0.5, f2.flow_id: 1.2})
    assert report.per_echelonflow["a"] == pytest.approx(0.5)
    assert report.total == pytest.approx(0.5)
    assert report.weighted_total == pytest.approx(1.0)
    assert report.worst == pytest.approx(0.5)


def test_evaluate_tardiness_empty():
    report = evaluate_tardiness([], {})
    assert report.total == 0.0
    assert report.worst == 0.0


class TestObjectives:
    def test_tardiness_objective_uses_ideal(self):
        objective = TardinessObjective()
        assert objective.urgency(10.0, 5.0, 0.0, 3.0) == 3.0

    def test_tardiness_objective_falls_back_without_ideal(self):
        objective = TardinessObjective()
        assert objective.urgency(10.0, 5.0, 0.0, None) == pytest.approx(15.0)

    def test_fct_objective_ignores_ideal(self):
        """The FCT anchor shifts with the flow's own start -- no recovery."""
        objective = CompletionTimeObjective()
        early = objective.urgency(0.0, 5.0, 0.0, 100.0)
        late = objective.urgency(0.0, 5.0, 50.0, 100.0)
        assert late - early == pytest.approx(50.0)

    def test_names(self):
        assert TardinessObjective().name == "tardiness"
        assert CompletionTimeObjective().name == "fct"
