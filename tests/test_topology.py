"""Topology graph and fabric builders."""

import pytest

from repro.topology import (
    Topology,
    big_switch,
    fat_tree,
    leaf_spine,
    linear_chain,
    two_hosts,
)


class TestTopologyGraph:
    def test_add_nodes_and_links(self):
        topo = Topology("t")
        topo.add_host("h0")
        topo.add_switch("s0")
        topo.add_link("h0", "s0", 10.0)
        assert topo.hosts == ["h0"]
        assert topo.switches == ["s0"]
        assert topo.link("h0", "s0").capacity == 10.0
        assert topo.has_link("h0", "s0")
        assert not topo.has_link("s0", "h0")

    def test_duplicate_node_rejected(self):
        topo = Topology("t")
        topo.add_host("x")
        with pytest.raises(ValueError):
            topo.add_switch("x")

    def test_duplicate_link_rejected(self):
        topo = Topology("t")
        topo.add_host("a")
        topo.add_host("b")
        topo.add_link("a", "b", 1.0)
        with pytest.raises(ValueError):
            topo.add_link("a", "b", 2.0)

    def test_link_to_unknown_node_rejected(self):
        topo = Topology("t")
        topo.add_host("a")
        with pytest.raises(KeyError):
            topo.add_link("a", "ghost", 1.0)

    def test_nonpositive_capacity_rejected(self):
        topo = Topology("t")
        topo.add_host("a")
        topo.add_host("b")
        with pytest.raises(ValueError):
            topo.add_link("a", "b", 0.0)

    def test_duplex_link(self):
        topo = Topology("t")
        topo.add_host("a")
        topo.add_host("b")
        forward, backward = topo.add_duplex_link("a", "b", 3.0)
        assert forward.key == ("a", "b")
        assert backward.key == ("b", "a")

    def test_host_port_capacities(self):
        topo = big_switch(3, host_bandwidth=5.0)
        assert topo.host_egress_capacity("h0") == 5.0
        assert topo.host_ingress_capacity("h0") == 5.0

    def test_validate_endpoints(self):
        topo = big_switch(2, 1.0)
        topo.validate_endpoints("h0", "h1")
        with pytest.raises(ValueError):
            topo.validate_endpoints("h0", "h0")
        with pytest.raises(ValueError):
            topo.validate_endpoints("h0", "core")


class TestFabrics:
    def test_big_switch_shape(self):
        topo = big_switch(4, 10.0)
        assert len(topo.hosts) == 4
        assert topo.switches == ["core"]
        # 4 duplex host links = 8 directed links.
        assert sum(1 for _ in topo.links()) == 8

    def test_big_switch_needs_hosts(self):
        with pytest.raises(ValueError):
            big_switch(0, 1.0)

    def test_two_hosts(self):
        topo = two_hosts(7.0)
        assert topo.hosts == ["h0", "h1"]
        assert topo.link("h0", "h1").capacity == 7.0

    def test_linear_chain(self):
        topo = linear_chain(4, 1.0)
        assert topo.has_link("h1", "h2")
        assert topo.has_link("h2", "h1")
        assert not topo.has_link("h0", "h2")
        with pytest.raises(ValueError):
            linear_chain(1, 1.0)

    def test_leaf_spine_shape(self):
        topo = leaf_spine(n_leaves=2, hosts_per_leaf=3, host_bandwidth=10.0)
        assert len(topo.hosts) == 6
        assert "leaf0" in topo.switches and "spine1" in topo.switches

    def test_leaf_spine_oversubscription_shrinks_uplinks(self):
        full = leaf_spine(2, 4, 10.0, n_spines=2, oversubscription=1.0)
        over = leaf_spine(2, 4, 10.0, n_spines=2, oversubscription=4.0)
        assert over.link("leaf0", "spine0").capacity == pytest.approx(
            full.link("leaf0", "spine0").capacity / 4.0
        )

    def test_leaf_spine_validation(self):
        with pytest.raises(ValueError):
            leaf_spine(0, 1, 1.0)
        with pytest.raises(ValueError):
            leaf_spine(1, 1, 1.0, oversubscription=0.0)

    def test_fat_tree_host_count(self):
        # k-ary fat tree has k^3/4 hosts.
        topo = fat_tree(4, 1.0)
        assert len(topo.hosts) == 16

    def test_fat_tree_rejects_odd_k(self):
        with pytest.raises(ValueError):
            fat_tree(3, 1.0)


class TestDumbbell:
    def test_shape(self):
        from repro.topology import dumbbell

        topo = dumbbell(2, 3, 10.0, 4.0)
        assert len(topo.hosts) == 5
        assert topo.link("sw-left", "sw-right").capacity == 4.0

    def test_cross_traffic_shares_the_bottleneck(self):
        from repro.core.flow import Flow
        from repro.scheduling import FairSharingScheduler
        from repro.simulator import Engine, TaskDag
        from repro.topology import dumbbell

        topo = dumbbell(2, 2, 10.0, 4.0)
        engine = Engine(topo, FairSharingScheduler())
        dag = TaskDag("j")
        dag.add_comm(
            "x",
            [Flow("h0", "h2", 4.0, job_id="j"), Flow("h1", "h3", 4.0, job_id="j")],
        )
        engine.submit(dag)
        trace = engine.run()
        # 8 bytes through a 4 B/s bottleneck: both finish at 2.
        assert trace.end_time == pytest.approx(2.0)

    def test_intra_group_traffic_avoids_the_bottleneck(self):
        from repro.core.flow import Flow
        from repro.scheduling import FairSharingScheduler
        from repro.simulator import Engine, TaskDag
        from repro.topology import dumbbell

        topo = dumbbell(2, 2, 10.0, 1.0)
        engine = Engine(topo, FairSharingScheduler())
        dag = TaskDag("j")
        dag.add_comm("x", [Flow("h0", "h1", 10.0, job_id="j")])
        engine.submit(dag)
        trace = engine.run()
        assert trace.end_time == pytest.approx(1.0)  # full 10 B/s NIC rate

    def test_validation(self):
        from repro.topology import dumbbell

        with pytest.raises(ValueError):
            dumbbell(0, 2, 1.0, 1.0)
        with pytest.raises(ValueError):
            dumbbell(1, 1, 1.0, 0.0)
