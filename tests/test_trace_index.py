"""SimulationTrace's lazy indexes: O(1) lookups that track appends."""

import pytest

from repro.core.flow import Flow
from repro.simulator.trace import (
    ComputeSpan,
    FlowRecord,
    SimulationTrace,
    TaskEvent,
)


def _record(src, dst, group_id=None, job_id=None, finish=1.0):
    flow = Flow(src=src, dst=dst, size=10.0, group_id=group_id, job_id=job_id)
    return FlowRecord(flow=flow, start=0.0, finish=finish, ideal_finish=None)


def _span(task_id, device, job_id=None, start=0.0, end=1.0):
    return ComputeSpan(
        task_id=task_id, device=device, start=start, end=end, job_id=job_id
    )


class TestTaskIndex:
    def test_lookup_and_missing(self):
        trace = SimulationTrace()
        trace.task_events.append(TaskEvent("t0", "compute", 1.5, "j"))
        trace.task_events.append(TaskEvent("t1", "comm", 2.5, "j"))
        assert trace.task_completion("t0") == 1.5
        assert trace.task_completion("t1") == 2.5
        with pytest.raises(KeyError):
            trace.task_completion("nope")

    def test_first_completion_wins(self):
        trace = SimulationTrace()
        trace.task_events.append(TaskEvent("t", "compute", 1.0, "a"))
        trace.task_events.append(TaskEvent("t", "compute", 9.0, "b"))
        assert trace.task_completion("t") == 1.0

    def test_index_absorbs_appends_after_first_use(self):
        trace = SimulationTrace()
        trace.task_events.append(TaskEvent("t0", "compute", 1.0, "j"))
        assert trace.task_completion("t0") == 1.0
        trace.task_events.append(TaskEvent("t1", "compute", 2.0, "j"))
        assert trace.task_completion("t1") == 2.0

    def test_index_resets_when_list_replaced(self):
        trace = SimulationTrace()
        trace.task_events.append(TaskEvent("t0", "compute", 1.0, "j"))
        assert trace.task_completion("t0") == 1.0
        trace.task_events = [TaskEvent("t9", "compute", 9.0, "j")]
        assert trace.task_completion("t9") == 9.0
        with pytest.raises(KeyError):
            trace.task_completion("t0")


class TestGroupingIndexes:
    def test_flows_group_and_job(self):
        trace = SimulationTrace()
        trace.flow_records.append(_record("h0", "h1", group_id="g0", job_id="a"))
        trace.flow_records.append(_record("h1", "h2", group_id="g1", job_id="a"))
        trace.flow_records.append(_record("h2", "h3", group_id="g0", job_id="b"))
        assert len(trace.flows_of_group("g0")) == 2
        assert len(trace.flows_of_group("g1")) == 1
        assert trace.flows_of_group("missing") == []
        assert len(trace.flows_of_job("a")) == 2
        assert len(trace.flows_of_job("b")) == 1

    def test_flow_index_tracks_appends(self):
        trace = SimulationTrace()
        trace.flow_records.append(_record("h0", "h1", group_id="g"))
        assert len(trace.flows_of_group("g")) == 1
        trace.flow_records.append(_record("h1", "h0", group_id="g"))
        assert len(trace.flows_of_group("g")) == 2

    def test_returned_lists_are_copies(self):
        trace = SimulationTrace()
        trace.flow_records.append(_record("h0", "h1", group_id="g"))
        trace.flows_of_group("g").append("junk")
        assert len(trace.flows_of_group("g")) == 1

    def test_spans_by_device_and_job(self):
        trace = SimulationTrace()
        trace.compute_spans.append(_span("t0", "h0", job_id="a"))
        trace.compute_spans.append(_span("t1", "h1", job_id="a"))
        trace.compute_spans.append(_span("t2", "h0", job_id="b"))
        assert [s.task_id for s in trace.spans_of_device("h0")] == ["t0", "t2"]
        assert len(trace.spans_of_job("a")) == 2
        trace.compute_spans.append(_span("t3", "h0", job_id="b"))
        assert len(trace.spans_of_device("h0")) == 3

    def test_preserves_record_order(self):
        trace = SimulationTrace()
        for i in range(5):
            trace.flow_records.append(
                _record("h0", "h1", group_id="g", finish=float(i))
            )
        finishes = [r.finish for r in trace.flows_of_group("g")]
        assert finishes == sorted(finishes)
