"""Unit-conversion helpers."""

import math

import pytest

from repro.core import units


def test_gbps_is_bytes_per_second():
    assert units.gbps(8) == pytest.approx(1e9)


def test_mbps_is_bytes_per_second():
    assert units.mbps(8) == pytest.approx(1e6)


def test_round_trip_gbps():
    rate = units.gbps(25)
    assert units.bytes_per_second_to_gbps(rate) == pytest.approx(25)


def test_megabytes_gigabytes():
    assert units.megabytes(1) == 1024.0 ** 2
    assert units.gigabytes(1) == 1024.0 ** 3
    assert units.gigabytes(1) == 1024 * units.megabytes(1)


def test_milliseconds_microseconds():
    assert units.milliseconds(3) == pytest.approx(0.003)
    assert units.microseconds(5) == pytest.approx(5e-6)


def test_approx_equal_absolute():
    assert units.approx_equal(1.0, 1.0 + 1e-12)
    assert not units.approx_equal(1.0, 1.1)


def test_approx_equal_relative_for_large_values():
    big = 1e15
    assert units.approx_equal(big, big * (1 + 1e-12))


def test_approx_leq():
    assert units.approx_leq(1.0, 1.0)
    assert units.approx_leq(1.0 + 1e-12, 1.0)
    assert not units.approx_leq(1.1, 1.0)
