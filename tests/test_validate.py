"""Trace validators, and cross-validation of all workloads via them."""

import pytest

from repro import Engine, big_switch, linear_chain, two_hosts
from repro.analysis import TraceValidationError, validate_trace
from repro.core.flow import Flow
from repro.core.units import gbps, megabytes
from repro.scheduling import (
    CoflowMaddScheduler,
    EchelonMaddScheduler,
    FairSharingScheduler,
    ShortestFlowFirstScheduler,
    SincroniaScheduler,
)
from repro.simulator.trace import ComputeSpan, FlowRecord, SimulationTrace
from repro.workloads import (
    build_dp_allreduce,
    build_fsdp,
    build_pp_1f1b,
    build_pp_gpipe,
    build_tp_megatron,
    uniform_model,
)

MODEL = uniform_model(
    "u8",
    8,
    param_bytes_per_layer=megabytes(20),
    activation_bytes=megabytes(10),
    forward_time=0.004,
)
HOSTS = ["h0", "h1", "h2", "h3"]

ALL_SCHEDULERS = [
    FairSharingScheduler,
    ShortestFlowFirstScheduler,
    CoflowMaddScheduler,
    SincroniaScheduler,
    EchelonMaddScheduler,
]

BUILDERS = {
    "dp": (
        lambda: build_dp_allreduce("j", MODEL, HOSTS, bucket_bytes=megabytes(40)),
        lambda: big_switch(4, gbps(10)),
    ),
    "pp": (
        lambda: build_pp_gpipe("j", MODEL, HOSTS, num_micro_batches=4),
        lambda: linear_chain(4, gbps(10)),
    ),
    "1f1b": (
        lambda: build_pp_1f1b("j", MODEL, HOSTS, num_micro_batches=4),
        lambda: linear_chain(4, gbps(10)),
    ),
    "tp": (
        lambda: build_tp_megatron("j", MODEL, HOSTS),
        lambda: big_switch(4, gbps(10)),
    ),
    "fsdp": (
        lambda: build_fsdp("j", MODEL, HOSTS),
        lambda: big_switch(4, gbps(10)),
    ),
}


@pytest.mark.parametrize("workload", sorted(BUILDERS))
@pytest.mark.parametrize("scheduler_cls", ALL_SCHEDULERS)
def test_every_workload_trace_is_valid(workload, scheduler_cls):
    """25 workload x scheduler combinations, all invariant-checked."""
    build, topo = BUILDERS[workload]
    job = build()
    engine = Engine(topo(), scheduler_cls())
    job.submit_to(engine)
    trace = engine.run()
    validate_trace(trace, dag=job.dag)


class TestValidatorsCatchViolations:
    def test_double_delivery(self):
        flow = Flow("h0", "h1", 1.0)
        trace = SimulationTrace(
            flow_records=[
                FlowRecord(flow=flow, start=0.0, finish=1.0, ideal_finish=None),
                FlowRecord(flow=flow, start=0.0, finish=1.0, ideal_finish=None),
            ],
            end_time=1.0,
        )
        with pytest.raises(TraceValidationError):
            validate_trace(trace)

    def test_backwards_flow(self):
        flow = Flow("h0", "h1", 1.0)
        trace = SimulationTrace(
            flow_records=[
                FlowRecord(flow=flow, start=2.0, finish=1.0, ideal_finish=None)
            ],
            end_time=2.0,
        )
        with pytest.raises(TraceValidationError):
            validate_trace(trace)

    def test_flow_after_end(self):
        flow = Flow("h0", "h1", 1.0)
        trace = SimulationTrace(
            flow_records=[
                FlowRecord(flow=flow, start=0.0, finish=5.0, ideal_finish=None)
            ],
            end_time=1.0,
        )
        with pytest.raises(TraceValidationError):
            validate_trace(trace)

    def test_overlapping_compute_on_one_slot(self):
        trace = SimulationTrace(
            compute_spans=[
                ComputeSpan("a", "gpu0", 0.0, 2.0, "j"),
                ComputeSpan("b", "gpu0", 1.0, 3.0, "j"),
            ],
            end_time=3.0,
        )
        with pytest.raises(TraceValidationError):
            validate_trace(trace)
        # ... but fine with two slots.
        validate_trace(trace, slots=2)

    def test_back_to_back_spans_are_fine(self):
        trace = SimulationTrace(
            compute_spans=[
                ComputeSpan("a", "gpu0", 0.0, 1.0, "j"),
                ComputeSpan("b", "gpu0", 1.0, 2.0, "j"),
            ],
            end_time=2.0,
        )
        validate_trace(trace)

    def test_missing_task_detected(self):
        from repro.simulator import TaskDag

        dag = TaskDag("j")
        dag.add_barrier("never-runs")
        trace = SimulationTrace(end_time=0.0)
        with pytest.raises(TraceValidationError):
            validate_trace(trace, dag=dag)


def test_mig_traces_validate_with_slots():
    engine = Engine(big_switch(2, gbps(10)), EchelonMaddScheduler(), device_slots=2)
    job_a = build_dp_allreduce("a", MODEL, ["h0", "h1"], bucket_bytes=1e9)
    job_b = build_dp_allreduce("b", MODEL, ["h0", "h1"], bucket_bytes=1e9)
    job_a.submit_to(engine)
    job_b.submit_to(engine)
    trace = engine.run()
    validate_trace(trace, slots=2)
