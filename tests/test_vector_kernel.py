"""The dense-array allocation kernels and their dispatch plumbing.

The bit-identity battery lives in ``test_check_allocation_properties.py``;
this module covers the machinery around the kernels: incidence interning,
the Mapping facade, demand-set dispatch, the network's vector modes, the
bulk ``set_rates`` fast path and its guard rails, and the graceful
scalar fallback when numpy is absent.
"""

import pytest

np = pytest.importorskip("numpy")

import repro.simulator.vector as vector_mod
from repro.core.flow import Flow
from repro.simulator.allocation import (
    DemandSet,
    FlowDemand,
    feasible,
    max_min_fair,
)
from repro.simulator.network import CapacityViolation, NetworkModel
from repro.simulator.vector import (
    DenseIncidence,
    VectorAllocation,
    max_min_fair_vector,
)
from repro.topology import ShortestPathRouter, big_switch
from repro.topology.graph import Link


def _demand(fid, links, weight=1.0, cap=None):
    return FlowDemand(flow_id=fid, path=tuple(links), weight=weight, cap=cap)


def _links(n, capacity=10.0):
    return [Link(f"a{i}", f"b{i}", capacity) for i in range(n)]


def _network(n_hosts=4, bw=10.0, strict=True, vector="off", incremental=True):
    topo = big_switch(n_hosts, bw)
    return NetworkModel(
        topo,
        ShortestPathRouter(topo),
        strict=strict,
        incremental=incremental,
        vector=vector,
    )


# ---------------------------------------------------------------- interning


def test_incidence_interns_rows_and_cols_in_first_occurrence_order():
    la, lb, lc = _links(3)
    demands = [
        _demand(7, [la, lb], weight=2.0),
        _demand(3, [lb, lc], cap=1.5),
        _demand(9, [la]),
    ]
    inc = DenseIncidence(demands)
    assert inc.row_of == {7: 0, 3: 1, 9: 2}
    assert inc.fids.tolist() == [7, 3, 9]
    assert [l.key for l in inc.links] == [la.key, lb.key, lc.key]
    assert inc.rows.tolist() == [0, 0, 1, 1, 2]
    assert inc.cols.tolist() == [0, 1, 1, 2, 0]
    assert inc.weights.tolist() == [2.0, 1.0, 1.0]
    assert inc.caps.tolist() == [float("inf"), 1.5, float("inf")]
    assert inc.capped_rows.tolist() == [1]


def test_incidence_dedupe_keeps_first_row_last_content():
    la, lb = _links(2)
    demands = [
        _demand(1, [la], weight=1.0),
        _demand(2, [lb]),
        _demand(1, [lb], weight=3.0),  # same fid again: content wins, row stays
    ]
    inc = DenseIncidence(demands)
    assert inc.row_of == {1: 0, 2: 1}
    assert inc.n_flows == 2
    assert inc.weights.tolist() == [3.0, 1.0]
    # Row 0 (fid 1) now rides lb, matching the scalar dict dedupe.
    assert inc.cols.tolist()[:1] == [0]
    assert [l.key for l in inc.links][inc.cols.tolist()[0]] == lb.key


def test_incidence_rereads_live_capacities_and_applies_overrides():
    la, lb = _links(2, capacity=10.0)
    inc = DenseIncidence([_demand(1, [la, lb])])
    assert inc.link_capacities_array().tolist() == [10.0, 10.0]
    la.capacity = 4.0  # runtime mutation (fault injection path)
    assert inc.link_capacities_array().tolist() == [4.0, 10.0]
    caps = inc.link_capacities_array({lb.key: 0.0, ("x", "y"): 99.0})
    assert caps.tolist() == [4.0, 0.0]


# ------------------------------------------------------- allocation facade


def test_vector_allocation_quacks_like_a_dict():
    la = _links(1)[0]
    inc = DenseIncidence([_demand(5, [la]), _demand(2, [la])])
    alloc = VectorAllocation(inc, np.array([3.0, 7.0]))
    assert alloc[5] == 3.0 and alloc[2] == 7.0
    assert isinstance(alloc[5], float) and not isinstance(alloc[5], np.floating)
    assert alloc.get(2) == 7.0
    assert alloc.get(404) is None
    assert alloc.get(404, 0.0) == 0.0
    assert set(alloc) == {5, 2}
    assert len(alloc) == 2
    assert 5 in alloc and 404 not in alloc
    assert dict(alloc.items()) == {5: 3.0, 2: 7.0}
    assert alloc.copy() == {5: 3.0, 2: 7.0}
    assert sorted(alloc.values()) == [3.0, 7.0]
    with pytest.raises(KeyError):
        alloc[404]


def test_demand_set_dispatches_only_when_asked():
    la = _links(1, capacity=6.0)[0]
    demands = [_demand(1, [la]), _demand(2, [la])]
    scalar = max_min_fair(list(demands))
    assert isinstance(scalar, dict)
    hinted = DemandSet(demands, use_vector=True)
    vec = max_min_fair(hinted)
    assert isinstance(vec, VectorAllocation)
    assert dict(vec.items()) == scalar
    # The interning is built once and cached on the set.
    assert hinted.incidence() is hinted.incidence()
    unhinted = DemandSet(demands, use_vector=False)
    assert isinstance(max_min_fair(unhinted), dict)


def test_feasible_dispatch_agrees_with_scalar():
    la, lb = _links(2, capacity=5.0)
    demands = [_demand(1, [la, lb], cap=2.0), _demand(2, [lb])]
    hinted = DemandSet(demands, use_vector=True)
    for rates in (
        {1: 1.0, 2: 4.0},
        {1: 1.0, 2: 4.5},  # lb oversubscribed
        {1: 3.0, 2: 0.0},  # cap violated
        {1: -1.0, 2: 0.0},  # negative
        {},
    ):
        assert feasible(hinted, rates) == feasible(list(demands), rates), rates
    # A VectorAllocation aligned to the incidence takes the array path.
    alloc = max_min_fair(hinted)
    assert feasible(hinted, alloc) is True


def test_kernel_rejects_unconstrained_problem():
    la = _links(1)[0]
    inc = DenseIncidence([_demand(1, [la])])
    with pytest.raises(RuntimeError):
        max_min_fair_vector(inc, {la.key: float("inf")})


# ------------------------------------------------- numpy-absent fallbacks


def test_dispatch_falls_back_to_scalar_without_numpy(monkeypatch):
    monkeypatch.setattr(vector_mod, "HAVE_NUMPY", False)
    la = _links(1, capacity=6.0)[0]
    hinted = DemandSet([_demand(1, [la]), _demand(2, [la])], use_vector=True)
    result = max_min_fair(hinted)
    assert isinstance(result, dict)
    assert result == {1: 3.0, 2: 3.0}
    assert feasible(hinted, result) is True


def test_vector_on_requires_numpy(monkeypatch):
    monkeypatch.setattr(vector_mod, "HAVE_NUMPY", False)
    with pytest.raises(RuntimeError, match="numpy"):
        _network(vector="on")
    # auto mode degrades silently instead of raising.
    net = _network(vector="auto")
    assert net.demands().use_vector is False


def test_invalid_vector_mode_rejected():
    with pytest.raises(ValueError, match="vector"):
        _network(vector="sideways")


# --------------------------------------------------- network vector modes


def test_network_vector_mode_controls_demand_hint():
    assert _network(vector="off").demands().use_vector is False
    assert _network(vector="on").demands().use_vector is True
    assert _network(vector=True).vector_mode == "on"
    assert _network(vector=False).vector_mode == "off"


def test_auto_mode_switches_at_threshold(monkeypatch):
    monkeypatch.setattr(vector_mod, "VECTOR_AUTO_THRESHOLD", 3)
    net = _network(vector="auto", bw=100.0)
    flows = [Flow("h0", "h1", 10.0) for _ in range(3)]
    net.inject(flows[0], 0.0)
    net.inject(flows[1], 0.0)
    assert net.demands().use_vector is False  # 2 < 3
    net.inject(flows[2], 0.0)
    assert net.demands().use_vector is True  # 3 >= 3


def test_demand_cache_invalidated_by_structural_changes():
    net = _network(vector="on", bw=100.0)
    f1, f2 = Flow("h0", "h1", 10.0), Flow("h0", "h2", 10.0)
    net.inject(f1, 0.0)
    first = net.demands()
    assert net.demands() is first  # revision-keyed cache hit
    net.inject(f2, 0.0)
    second = net.demands()
    assert second is not first
    assert {d.flow_id for d in second} == {f1.flow_id, f2.flow_id}


# ----------------------------------------------------- bulk set_rates path


def _vector_net_with_flows(n=3, bw=9.0, strict=True):
    net = _network(bw=bw, strict=strict, vector="on")
    flows = [Flow("h0", f"h{1 + i % 3}", 100.0) for i in range(n)]
    for f in flows:
        net.inject(f, 0.0)
    return net, flows


def test_bulk_set_rates_applies_vector_allocation():
    net, flows = _vector_net_with_flows()
    demands = net.demands()
    alloc = max_min_fair(demands)
    assert isinstance(alloc, VectorAllocation)
    net.set_rates(alloc)
    for f in flows:
        rate = net.state(f.flow_id).rate
        assert isinstance(rate, float) and not isinstance(rate, np.floating)
        assert rate == alloc[f.flow_id]


def test_bulk_set_rates_rejects_negative_rates():
    net, flows = _vector_net_with_flows()
    alloc = max_min_fair(net.demands())
    alloc.array[0] = -1.0
    with pytest.raises(ValueError, match="negative rate"):
        net.set_rates(alloc)


def test_bulk_set_rates_strict_capacity_violation():
    net, flows = _vector_net_with_flows(bw=3.0)
    alloc = max_min_fair(net.demands())
    alloc.array[:] = 100.0
    with pytest.raises(CapacityViolation):
        net.set_rates(alloc)


def test_bulk_set_rates_lenient_falls_back_to_rescale():
    net, flows = _vector_net_with_flows(bw=3.0, strict=False)
    alloc = max_min_fair(net.demands())
    alloc.array[:] = 100.0  # infeasible: lenient mode rescales via scalar path
    net.set_rates(alloc)
    assert feasible(net.demands(), {f.flow_id: net.state(f.flow_id).rate for f in flows})


def test_stale_incidence_falls_back_to_scalar_path():
    net, flows = _vector_net_with_flows(bw=9.0)
    alloc = max_min_fair(net.demands())
    extra = Flow("h0", "h1", 50.0)
    net.inject(extra, 0.0)  # bumps the structural revision
    net.set_rates(alloc)  # stale VectorAllocation: scalar path, still applied
    for f in flows:
        assert net.state(f.flow_id).rate == alloc[f.flow_id]
    assert net.state(extra.flow_id).rate == 0.0
