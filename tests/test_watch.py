"""The online AIOps watch loop: detectors, localization, scoring.

Covers the ISSUE's acceptance bar directly:

* a clean paradigm x scheduler sweep raises zero anomalies;
* live detection and offline JSONL replay agree bit-for-bit;
* single-fault link_down/degrade scenarios localize top-1;
* the scored suite reports all four metric families.
"""

from __future__ import annotations

import json

import pytest

from repro.faults import (
    FaultSchedule,
    ResilientScheduler,
    parse_fault_spec,
)
from repro.obs import Instrumentation, JsonlEventLog, summarize_events
from repro.obs.watch import (
    SMOKE_KINDS,
    SMOKE_PARADIGMS,
    Scenario,
    SlidingWindow,
    StreamState,
    WatchConfig,
    WatchLoop,
    aiops_score,
    build_scenarios,
    grade_scenario,
    make_engine,
    nominal_jct,
    render_score,
)
from repro.obs.watch.score import run_scenario
from repro.scheduling import make_scheduler


def _scenario(paradigm: str, kind: str) -> Scenario:
    (match,) = [
        s
        for s in build_scenarios((paradigm,), (kind,))
        if s.name == f"{paradigm}/{kind}"
    ]
    return match


class TestSlidingWindow:
    def test_eviction_is_deterministic_oldest_first(self):
        window = SlidingWindow(span=1.0)
        for i in range(5):
            window.push(float(i), float(i))
        assert window.values() == [3.0, 4.0]
        assert window.evicted == 3

    def test_max_samples_bound(self):
        window = SlidingWindow(span=100.0, max_samples=3)
        for i in range(10):
            window.push(float(i), float(i))
        assert window.values() == [7.0, 8.0, 9.0]
        assert window.mean() == pytest.approx(8.0)
        assert window.max() == 9.0


class TestStreamState:
    def test_fault_payloads_are_never_parsed(self):
        state = StreamState()
        state.observe(
            {"ev": "fault", "t": 1.0, "action": "link_down",
             "links": [["h0", "h1"]]}
        )
        # Only the clock advances: ground truth stays invisible.
        assert state.now == 1.0
        assert not state.links and not state.active_flows

    def test_pair_symmetry_learns_duplex_nominal(self):
        state = StreamState()
        state.observe(
            {"ev": "link_sample", "t": 0.0,
             "links": {"a->b": 1.0}, "caps": {"a->b": 100.0}}
        )
        # The reverse direction is first sampled while already degraded;
        # symmetry backfills its nominal from the healthy direction.
        state.observe(
            {"ev": "link_sample", "t": 1.0,
             "links": {"b->a": 1.0}, "caps": {"b->a": 30.0}}
        )
        assert state.links["b->a"].nominal == 100.0
        assert state.links["b->a"].capacity_drop == pytest.approx(0.7)

    def test_stale_links_require_outstanding_flows(self):
        state = StreamState()
        state.observe(
            {"ev": "flow_injected", "t": 0.0, "flow_id": 1, "job": "j",
             "group": "g", "size": 10.0, "path": [["a->b", 100.0]]}
        )
        state.observe({"ev": "watch_heartbeat", "t": 2.0})
        assert state.stale_links() == [("a->b", 2.0)]
        state.observe(
            {"ev": "flow_finished", "t": 3.0, "flow_id": 1, "job": "j",
             "group": "g", "size": 10.0}
        )
        assert state.stale_links() == []


class TestCleanSweepZeroAnomalies:
    @pytest.mark.parametrize("paradigm", SMOKE_PARADIGMS)
    @pytest.mark.parametrize("scheduler", ["echelon", "fair", "coflow"])
    def test_clean_run_is_silent(self, paradigm, scheduler):
        scenario = _scenario(paradigm, "clean")
        result = run_scenario(
            Scenario(
                name=scenario.name,
                paradigm=paradigm,
                scheduler=scheduler,
                fault_kind="clean",
                spec=None,
                nominal_jct=nominal_jct(paradigm, scheduler),
                heartbeat=scenario.heartbeat,
                fault_link=None,
            ),
            sanitizer=False,
        )
        assert result["loop"].anomalies == []


class TestReplayMatchesLive:
    @pytest.mark.parametrize("kind", ["link_down", "degrade"])
    def test_bit_for_bit(self, tmp_path, kind):
        scenario = _scenario("pp", kind)
        result = run_scenario(scenario, sanitizer=False)
        live = result["loop"]
        assert live.anomalies, "fault must be detected live"
        path = tmp_path / "run.jsonl"
        result["log"].write(str(path))
        replayed = WatchLoop().replay_jsonl(str(path))
        # The saved log contains the live loop's own anomaly records;
        # replay skips them and re-detects identically.
        assert replayed.anomalies == live.anomalies
        assert replayed.localizations == live.localizations

    def test_anomaly_records_are_json_clean(self):
        result = run_scenario(_scenario("dp", "link_down"), sanitizer=False)
        for record in result["loop"].anomalies + result["loop"].localizations:
            json.loads(json.dumps(record))


class TestLocalization:
    @pytest.mark.parametrize("paradigm", SMOKE_PARADIGMS)
    @pytest.mark.parametrize("kind", ["link_down", "degrade"])
    def test_single_link_fault_top1(self, paradigm, kind):
        row = grade_scenario(_scenario(paradigm, kind), sanitizer=False)
        assert row["detected"], row
        assert row["top1"], row

    def test_crash_scheduler_blames_scheduler(self):
        row = grade_scenario(_scenario("dp", "crash_scheduler"),
                             sanitizer=False)
        assert row["detected"]
        assert row["top_candidate"]["kind"] == "scheduler"


class TestScoreReport:
    def test_all_four_metric_families(self):
        report = aiops_score(
            paradigms=("pp",), kinds=SMOKE_KINDS, mitigate=False,
            sanitizer=False,
        )
        summary = report["summary"]
        assert {"detection", "localization", "false_positive"} <= set(summary)
        assert summary["false_positive"]["false_positives"] == 0
        assert summary["detection"]["rate"] == 1.0
        rendered = render_score(report)
        assert "pp/link_down" in rendered and "top-1" in rendered

    def test_mitigation_family_present_when_enabled(self):
        report = aiops_score(
            paradigms=("ls",), kinds=("clean", "degrade"), mitigate=True,
            sanitizer=False,
        )
        mitigation = report["summary"]["mitigation"]
        assert mitigation["attempted"] >= 1
        (row,) = [r for r in report["rows"] if r["fault_kind"] == "degrade"]
        assert "recovered_jct" in row


class TestGroundTruth:
    def test_fault_schedule_ground_truth(self):
        schedule = parse_fault_spec(
            "link_down:h1-h2@1.0+0.5; crash_scheduler@2.0"
        )
        truth = schedule.ground_truth()
        assert [entry["kind"] for entry in truth] == ["link", "scheduler"]
        link = truth[0]
        assert link["action"] == "link_down"
        assert set(link["targets"]) == {"h1->h2", "h2->h1"}
        assert link["time"] == 1.0
        # Restores are outcomes of the fault, not separate truths.
        assert all(e["action"] != "link_restore" for e in truth)

    def test_flap_collapses_to_one_entry(self):
        truth = parse_fault_spec(
            "flap:a-b@1.0,period=0.2,count=3"
        ).ground_truth()
        (entry,) = truth
        assert entry["action"] == "link_down" and entry["count"] == 3


class TestPinFallback:
    def test_pin_forces_fallback_until_horizon(self):
        engine = make_engine("dp", sanitizer=False)
        resilient = engine.scheduler
        assert isinstance(resilient, ResilientScheduler)
        resilient.pin_fallback(until=1e-6)
        trace = engine.run()
        assert trace.flow_records
        # The pin expired mid-run and the primary scheduler resumed.
        kinds = {r.get("kind") for r in resilient.fallback_records}
        assert kinds <= {"pinned"}

    def test_pin_never_shortens(self):
        resilient = ResilientScheduler(make_scheduler("fair"))
        resilient.pin_fallback(until=5.0)
        resilient.pin_fallback(until=1.0)
        assert resilient._pin_until == 5.0


class TestWatchHeartbeat:
    def test_heartbeats_recorded_in_sim_time(self):
        scenario = _scenario("dp", "clean")
        result = run_scenario(scenario, sanitizer=False)
        beats = [
            e for e in result["log"].events if e["ev"] == "watch_heartbeat"
        ]
        assert beats
        times = [e["t"] for e in beats]
        assert times == sorted(times)
        assert result["loop"].report()["heartbeats"] == len(beats)

    def test_heartbeat_requires_engine(self):
        with pytest.raises(ValueError):
            WatchLoop().attach(JsonlEventLog(), heartbeat=0.1)


class TestRobustnessSummary:
    def test_summarize_events_surfaces_robustness(self):
        scenario = _scenario("pp", "link_down")
        result = run_scenario(scenario, sanitizer=False)
        summary = summarize_events(result["log"].events)
        robustness = summary["robustness"]
        assert robustness["fault_actions"]["link_down"] == 1
        assert robustness["fault_actions"]["link_restore"] == 1
        assert robustness["first_fault_time"] <= robustness["last_fault_time"]
        assert robustness["anomalies"] >= 1
        assert "link_collapse" in robustness["anomaly_detectors"]

    def test_metrics_report_robustness_section(self):
        from repro.obs import build_metrics_report

        obs = Instrumentation(event_log=JsonlEventLog(),
                              log_link_samples=True)
        engine = make_engine(
            "pp",
            faults=FaultSchedule.parse("link_down:h1-h2@0.01+0.01"),
            instrumentation=obs,
            sanitizer=False,
        )
        trace = engine.run()
        report = build_metrics_report(trace, instrumentation=obs)
        robustness = report["robustness"]
        assert robustness["faults"] == 2
        assert robustness["fault_actions"] == {
            "link_down": 1, "link_restore": 1,
        }
        assert robustness["stranded_flows"] + robustness["migrated_flows"] >= 0
        assert robustness["first_fault_time"] == pytest.approx(0.01)
