"""Noise-hardened telemetry: channel model, reconciliation, grading.

Pins the degraded-telemetry acceptance surface:

* the noise-spec grammar parses, validates, and round-trips;
* the channel is a deterministic pure function of (spec, seed, stream)
  and passthrough kinds consume no randomness;
* StreamState survives duplicates and jitter reordering, and reconciles
  phantom flows against the heartbeat's authoritative active count;
* clean runs raise zero anomalies at every benchmark noise level;
* live detection equals offline replay through an identically seeded
  channel, bit for bit;
* fault-set grading scores per-fault precision/recall/latency.
"""

from __future__ import annotations

import pytest

from repro.obs.watch import (
    NoiseSpec,
    NoiseSpecError,
    SMOKE_PARADIGMS,
    StreamState,
    TelemetryChannel,
    WatchConfig,
    WatchLoop,
    build_scenarios,
    grade_fault_sets,
    noise_hardened_config,
    parse_noise_spec,
    run_scenario,
    scenario_seed,
)

#: Mirrors benchmarks/bench_aiops_noise.py NOISE_LEVELS: the clean-run
#: silence guarantee must hold at every level the benchmark sweeps.
NOISE_LEVELS = (
    None,
    "sample=2,drop=0.02",
    "sample=4,drop=0.1",
    "sample=4,drop=0.1,burst=0.02x5,delay=0.001,dup=0.01",
)


def _scenario(paradigm, kind):
    (match,) = [
        s
        for s in build_scenarios((paradigm,), (kind,))
        if s.name == f"{paradigm}/{kind}"
    ]
    return match


class TestNoiseSpecGrammar:
    def test_full_spec_parses_and_round_trips(self):
        spec = parse_noise_spec(
            "sample=4,drop=0.1,burst=0.02x5,delay=0.001,dup=0.01,seed=7"
        )
        assert spec == NoiseSpec(
            sample=4, drop=0.1, burst=0.02, burst_len=5,
            delay=0.001, dup=0.01, seed=7,
        )
        assert parse_noise_spec(spec.describe()) == spec

    @pytest.mark.parametrize("text", [None, "", "off"])
    def test_off_is_the_identity_channel(self, text):
        spec = parse_noise_spec(text)
        assert spec.is_noop
        assert spec.describe() == "off"

    def test_seed_argument_overrides_spec_seed(self):
        assert parse_noise_spec("drop=0.1,seed=3", seed=9).seed == 9

    def test_burst_without_length_keeps_default(self):
        spec = parse_noise_spec("burst=0.1")
        assert spec.burst == 0.1 and spec.burst_len == 4

    @pytest.mark.parametrize(
        "text",
        ["jitter=0.1", "drop", "drop=lots", "sample=0", "drop=1.5",
         "delay=-1", "burst=0.1x0"],
    )
    def test_bad_specs_raise(self, text):
        with pytest.raises(NoiseSpecError):
            parse_noise_spec(text)

    def test_spec_error_is_a_value_error(self):
        assert issubclass(NoiseSpecError, ValueError)


def _telemetry(n=200):
    """A synthetic degradable stream: samples, rates, lifecycle."""
    events = []
    for i in range(n):
        t = i * 0.01
        events.append(
            {"ev": "link_sample", "t": t, "links": {"a->b": 0.5},
             "caps": {"a->b": 100.0}}
        )
        if i % 4 == 0:
            events.append({"ev": "flow_rates", "t": t, "rates": {i: 1.0}})
        if i % 10 == 0:
            events.append(
                {"ev": "flow_finished", "t": t, "flow_id": i, "job": "j",
                 "group": "g", "size": 1.0}
            )
    return events


def _deliveries(channel, events):
    out = []
    channel.subscribe(out.append)
    for event in events:
        channel.send(event)
    channel.flush()
    return out


class TestChannelDeterminism:
    SPEC = "sample=2,drop=0.2,burst=0.05x3,dup=0.1"

    def test_same_seed_same_degraded_stream(self):
        events = _telemetry()
        a = _deliveries(TelemetryChannel(self.SPEC, seed=42), events)
        b = _deliveries(TelemetryChannel(self.SPEC, seed=42), events)
        assert a == b

    def test_different_seed_differs(self):
        events = _telemetry()
        a = _deliveries(TelemetryChannel(self.SPEC, seed=0), events)
        b = _deliveries(TelemetryChannel(self.SPEC, seed=1), events)
        assert a != b

    def test_passthrough_spends_no_randomness(self):
        # Interleaving passthrough records (heartbeats, the loop's own
        # anomaly appends, fault markers) must not shift any drop/dup
        # decision -- that is what keeps live and replay RNG-aligned.
        events = _telemetry()
        noisy = []
        for i, event in enumerate(events):
            noisy.append(event)
            if i % 5 == 0:
                noisy.append(
                    {"ev": "watch_heartbeat", "t": event["t"], "beat": i}
                )
            if i % 7 == 0:
                noisy.append({"ev": "anomaly", "t": event["t"]})
        base = _deliveries(TelemetryChannel(self.SPEC, seed=9), events)
        mixed = _deliveries(TelemetryChannel(self.SPEC, seed=9), noisy)
        assert [e for e in mixed if e["ev"] not in
                ("watch_heartbeat", "anomaly")] == base
        # Every passthrough record was delivered, none degraded.
        assert sum(1 for e in mixed if e["ev"] == "watch_heartbeat") == sum(
            1 for e in noisy if e["ev"] == "watch_heartbeat"
        )

    def test_sampler_is_a_deterministic_counter(self):
        channel = TelemetryChannel("sample=3")
        events = [
            {"ev": "link_sample", "t": i * 1.0, "links": {}, "caps": {}, "i": i}
            for i in range(9)
        ]
        # Non-sampled kinds are untouched by the sampler.
        events.append({"ev": "flow_injected", "t": 9.0, "flow_id": 1})
        delivered = _deliveries(channel, events)
        assert [e.get("i") for e in delivered] == [0, 3, 6, None]
        assert channel.stats["sampled_out"] == 6

    def test_jitter_reordering_is_bounded_by_delay(self):
        spec = parse_noise_spec("delay=0.25")
        channel = TelemetryChannel(spec, seed=5)
        delivered = _deliveries(channel, _telemetry(400))
        assert channel.stats["delayed"] > 0
        assert channel.pending == 0
        # Nothing is ever delivered more than `delay` after an event
        # that originated later: the running max never leads by more.
        lead = 0.0
        for event in delivered:
            lead = max(lead, event["t"])
            assert lead - event["t"] <= spec.delay + 1e-12
        # Lossless spec: everything sent is eventually delivered.
        assert channel.stats["delivered"] == channel.stats["seen"]

    def test_stats_account_for_every_event(self):
        channel = TelemetryChannel(self.SPEC, seed=3)
        _deliveries(channel, _telemetry())
        stats = channel.stats
        unique_degraded = (
            stats["delivered"] - stats["passthrough"] - stats["duplicated"]
        )
        assert stats["seen"] == (
            stats["passthrough"] + stats["sampled_out"] + stats["dropped"]
            + stats["dropped_burst"] + unique_degraded
        )
        assert channel.report()["spec"] == channel.spec.describe()


class TestNoiseHardenedConfig:
    def test_clean_channel_keeps_the_defaults(self):
        assert noise_hardened_config(None) == WatchConfig()
        assert noise_hardened_config(parse_noise_spec("off")) == WatchConfig()

    def test_lossy_channel_widens_quiet_stints(self):
        config = noise_hardened_config(parse_noise_spec("sample=4,drop=0.1"))
        assert config.quiet_margin > 1.0
        assert config.quiet_slack > 0.0
        # Sampling alone neither delays nor duplicates.
        assert config.capacity_confirm == WatchConfig().capacity_confirm

    def test_duplicating_channel_requires_confirmation(self):
        for text in ("dup=0.05", "delay=0.01"):
            config = noise_hardened_config(parse_noise_spec(text))
            assert config.capacity_confirm >= 2


class TestStreamStateNoise:
    def test_duplicate_lifecycle_events_fold_once(self):
        state = StreamState()
        inject = {
            "ev": "flow_injected", "t": 0.0, "flow_id": 1, "job": "j",
            "group": "g", "size": 10.0, "path": [["a->b", 100.0]],
        }
        finish = {
            "ev": "flow_finished", "t": 1.0, "flow_id": 1, "job": "j",
            "group": "g", "size": 10.0,
        }
        for event in (inject, dict(inject), finish, dict(finish)):
            state.observe(event)
        assert state.duplicates == 2
        assert state.deliveries == 1
        assert state.groups["g"].injected == 1
        assert state.groups["g"].delivered == 1
        assert state.job_delivered_bytes["j"] == 10.0

    def test_jitter_swapped_injection_never_goes_active(self):
        state = StreamState()
        state.observe(
            {"ev": "flow_finished", "t": 1.0, "flow_id": 1, "job": "j",
             "group": "g", "size": 10.0}
        )
        state.observe(
            {"ev": "flow_injected", "t": 0.5, "flow_id": 1, "job": "j",
             "group": "g", "size": 10.0, "path": [["a->b", 100.0]]}
        )
        assert state.reordered == 1
        assert not state.active_flows
        assert not state.outstanding_on_link.get("a->b")
        # Completion accounting still balances.
        assert state.groups["g"].injected == 1
        assert state.groups["g"].delivered == 1

    def test_late_sample_never_regresses_capacity(self):
        state = StreamState()
        state.observe(
            {"ev": "link_sample", "t": 2.0,
             "links": {"a->b": 0.0}, "caps": {"a->b": 30.0}}
        )
        state.observe(
            {"ev": "link_sample", "t": 1.0,
             "links": {"a->b": 0.9}, "caps": {"a->b": 100.0}}
        )
        health = state.links["a->b"]
        assert health.capacity == 30.0
        assert health.nominal == 100.0
        assert health.last_busy == 1.0


class TestHeartbeatReconciliation:
    @staticmethod
    def _phantom_state():
        state = StreamState()
        state.observe(
            {"ev": "flow_injected", "t": 0.0, "flow_id": 1, "job": "j",
             "group": "g", "size": 10.0, "path": [["a->b", 100.0]]}
        )
        return state

    def test_phantom_flow_expires_against_active_count(self):
        state = self._phantom_state()
        # The hop stayed busy well past the flow's expected completion
        # (size/rate = 0.1s): the dropped flow_finished left a phantom.
        state.observe(
            {"ev": "link_sample", "t": 0.5,
             "links": {"a->b": 0.5}, "caps": {"a->b": 100.0}}
        )
        state.observe({"ev": "watch_heartbeat", "t": 1.0, "active": 0})
        assert state.reconciled == 1
        assert not state.active_flows
        assert not state.outstanding_on_link["a->b"]
        assert state.groups["g"].delivered == 1
        assert state.job_outstanding_bytes["j"] == 0.0
        # Reconciliation is not an observed delivery.
        assert state.deliveries == 0

    def test_stalled_flow_is_never_reconciled(self):
        state = self._phantom_state()
        # Last busy sighting (t=0.05) predates the flow's expected end
        # (t=0.1): the hop froze mid-flight, this flow is stalled.
        state.observe(
            {"ev": "link_sample", "t": 0.05,
             "links": {"a->b": 0.5}, "caps": {"a->b": 100.0}}
        )
        state.observe({"ev": "watch_heartbeat", "t": 1.0, "active": 0})
        assert state.reconciled == 0
        assert 1 in state.active_flows

    def test_only_the_excess_expires_earliest_end_first(self):
        state = self._phantom_state()
        state.observe(
            {"ev": "flow_injected", "t": 0.2, "flow_id": 2, "job": "j",
             "group": "g", "size": 10.0, "path": [["a->b", 100.0]]}
        )
        state.observe(
            {"ev": "link_sample", "t": 0.5,
             "links": {"a->b": 0.5}, "caps": {"a->b": 100.0}}
        )
        state.observe({"ev": "watch_heartbeat", "t": 1.0, "active": 1})
        assert state.reconciled == 1
        assert 1 not in state.active_flows
        assert 2 in state.active_flows

    def test_heartbeat_without_active_is_inert(self):
        state = self._phantom_state()
        state.observe({"ev": "watch_heartbeat", "t": 1.0})
        state.observe({"ev": "watch_heartbeat", "t": 1.5, "active": -3})
        assert state.reconciled == 0
        assert 1 in state.active_flows


class TestCleanRunsSilentUnderNoise:
    @pytest.mark.parametrize("noise", NOISE_LEVELS)
    def test_zero_false_positives_at_every_level(self, noise):
        for paradigm in SMOKE_PARADIGMS:
            result = run_scenario(
                _scenario(paradigm, "clean"),
                noise=noise, seed=0, sanitizer=False,
            )
            assert result["loop"].anomalies == [], (paradigm, noise)

    def test_zero_false_positives_under_a_different_seed(self):
        result = run_scenario(
            _scenario("pp", "clean"),
            noise="sample=4,drop=0.1", seed=1, sanitizer=False,
        )
        assert result["loop"].anomalies == []


class TestLiveEqualsReplayThroughChannel:
    @pytest.mark.parametrize(
        "noise", ["sample=2,drop=0.05", "sample=2,drop=0.05,delay=0.001,dup=0.05"]
    )
    def test_bit_for_bit_with_identically_seeded_channel(
        self, tmp_path, noise
    ):
        scenario = _scenario("pp", "link_down")
        result = run_scenario(scenario, noise=noise, seed=0, sanitizer=False)
        live = result["loop"]
        assert live.anomalies, "fault must be detected through the noise"
        path = tmp_path / "run.jsonl"
        result["log"].write(str(path))
        # The replay side rebuilds the exact live setup: the hardened
        # config for this spec and a fresh channel with the same
        # per-scenario seed. Same (spec, seed, stream) -> same RNG walk.
        spec = parse_noise_spec(noise)
        replayed = WatchLoop(noise_hardened_config(spec)).replay_jsonl(
            str(path),
            channel=TelemetryChannel(spec, seed=scenario_seed(scenario.name, 0)),
        )
        assert replayed.anomalies == live.anomalies
        assert replayed.localizations == live.localizations

    def test_differently_seeded_replay_may_diverge_but_not_crash(
        self, tmp_path
    ):
        scenario = _scenario("pp", "link_down")
        result = run_scenario(
            scenario, noise="drop=0.3", seed=0, sanitizer=False
        )
        path = tmp_path / "run.jsonl"
        result["log"].write(str(path))
        spec = parse_noise_spec("drop=0.3")
        replayed = WatchLoop(noise_hardened_config(spec)).replay_jsonl(
            str(path), channel=TelemetryChannel(spec, seed=12345)
        )
        report = replayed.report()
        assert report["channel"]["seen"] > 0


class TestFaultSetGrading:
    TRUTH = [
        {"kind": "link", "action": "link_down",
         "targets": ["a->b", "b->a"], "time": 1.0},
        {"kind": "scheduler", "action": "crash_scheduler",
         "targets": [], "time": 2.0},
    ]

    def test_precision_recall_and_per_fault_latency(self):
        localizations = [
            {"ev": "localization", "t": 1.5, "fault_set": [
                {"cause": "link:a-b", "kind": "link",
                 "targets": ["a->b", "b->a"]},
            ]},
            {"ev": "localization", "t": 2.5, "fault_set": [
                {"cause": "scheduler", "kind": "scheduler", "targets": []},
                {"cause": "link:x-y", "kind": "link",
                 "targets": ["x->y", "y->x"]},
            ]},
        ]
        row = grade_fault_sets(localizations, self.TRUTH, nominal_jct=10.0)
        assert row["claims"] == 3 and row["matched_claims"] == 2
        assert row["precision"] == pytest.approx(2 / 3)
        assert row["recall"] == 1.0
        link_row, sched_row = row["per_fault"]
        assert link_row["claimed"] and link_row["latency"] == 0.5
        assert link_row["latency_frac"] == pytest.approx(0.05)
        assert sched_row["claimed"] and sched_row["latency"] == 0.5

    def test_unclaimed_truth_costs_recall(self):
        row = grade_fault_sets([], self.TRUTH, nominal_jct=10.0)
        assert row["claims"] == 0 and row["precision"] is None
        assert row["recall"] == 0.0
        assert all(not entry["claimed"] for entry in row["per_fault"])

    def test_latency_runs_from_injection_to_first_naming_set(self):
        localizations = [
            {"ev": "localization", "t": 4.0, "fault_set": [
                {"cause": "link:a-b", "kind": "link", "targets": ["a->b"]},
            ]},
            {"ev": "localization", "t": 9.0, "fault_set": [
                {"cause": "link:a-b", "kind": "link", "targets": ["a->b"]},
            ]},
        ]
        row = grade_fault_sets(localizations, self.TRUTH[:1], nominal_jct=10.0)
        (entry,) = row["per_fault"]
        assert entry["latency"] == 3.0


class TestScenarioSeed:
    def test_stable_and_distinct(self):
        assert scenario_seed("pp/link_down") == scenario_seed("pp/link_down")
        assert scenario_seed("pp/link_down") != scenario_seed("dp/link_down")
        assert scenario_seed("pp/link_down", 1) != scenario_seed(
            "pp/link_down", 0
        )
        assert 0 <= scenario_seed("anything", 2**40) < 2**32
