"""Weighted EchelonFlows: the Eq. 4 weighted-sum variant."""

import pytest

from repro.core.arrangement import CoflowArrangement
from repro.core.echelonflow import EchelonFlow
from repro.core.flow import Flow
from repro.scheduling import EchelonMaddScheduler
from repro.simulator import Engine, TaskDag
from repro.topology import two_hosts


def _competing_run(weight_a, weight_b):
    """Two same-size coflows on one link; return (finish_a, finish_b)."""
    engine = Engine(two_hosts(1.0), EchelonMaddScheduler())
    flows = {}
    for name, weight in (("a", weight_a), ("b", weight_b)):
        ef = EchelonFlow(name, CoflowArrangement(), job_id=name, weight=weight)
        flow = Flow("h0", "h1", 4.0, group_id=name, job_id=name)
        ef.add_flow(flow)
        flows[name] = flow
        dag = TaskDag(name)
        dag.add_comm("x", [flow])
        engine.submit(dag, echelonflows=(ef,))
    trace = engine.run()
    finishes = {r.flow.group_id: r.finish for r in trace.flow_records}
    return finishes["a"], finishes["b"]


def test_equal_weights_tie_broken_by_id():
    finish_a, finish_b = _competing_run(1.0, 1.0)
    assert sorted([finish_a, finish_b]) == [pytest.approx(4.0), pytest.approx(8.0)]


def test_heavier_echelonflow_finishes_first():
    finish_a, finish_b = _competing_run(1.0, 5.0)
    assert finish_b < finish_a
    assert finish_b == pytest.approx(4.0)
    assert finish_a == pytest.approx(8.0)


def test_weight_flips_the_other_way():
    finish_a, finish_b = _competing_run(5.0, 1.0)
    assert finish_a < finish_b


def test_weighted_sum_objective_improves():
    """Serving the heavy group first lowers the weighted total (Eq. 4)."""

    def weighted_total(weight_a, weight_b):
        finish_a, finish_b = _competing_run(weight_a, weight_b)
        # Both references are ~0, so tardiness == finish here.
        return weight_a * finish_a + weight_b * finish_b

    # With b heavy, scheduling must put b first: 5*4 + 1*8 = 28 < 5*8 + 4.
    assert weighted_total(1.0, 5.0) == pytest.approx(28.0)


def test_weights_do_not_break_single_group():
    engine = Engine(two_hosts(1.0), EchelonMaddScheduler())
    ef = EchelonFlow("solo", CoflowArrangement(), job_id="j", weight=42.0)
    flow = Flow("h0", "h1", 3.0, group_id="solo", job_id="j")
    ef.add_flow(flow)
    dag = TaskDag("j")
    dag.add_comm("x", [flow])
    engine.submit(dag, echelonflows=(ef,))
    trace = engine.run()
    assert trace.end_time == pytest.approx(3.0)
