"""Snapshot / fork / restore across the engine spine, end to end.

The tentpole contract under test: an engine forked from a
:class:`~repro.simulator.StateHandle` and resumed must be **bit
identical** to the uninterrupted run -- same flow records, same
task/compute events, same end time -- at *any* snapshot point. The
suite forks each scenario at ten seeded-random timestamps across the
Fig. 2 two-host pipeline and three Table-1 paradigms (DP, FSDP, PP),
then pins down the supporting machinery: ``restore()``, the
:class:`SnapshotError` taxonomy, capacity-lineage fingerprints that
keep the shared :class:`~repro.scheduling.MemoizingScheduler` cache
safe across diverging forks, the engine-scoped flow-id allocator, and
the :class:`~repro.whatif.WhatIfService` built on all of it (warm
fork-based answers must equal cold from-scratch rebuilds exactly).

Flow ids are compared structurally (src, dst, size, group, index, job,
tag) so the assertions hold even if allocators number two builds
differently.
"""

import random

import pytest

from repro.core import FlowIdAllocator, use_flow_id_allocator
from repro.core.units import gbps, megabytes
from repro.faults import FaultInjector, parse_fault_spec
from repro.scheduling import EchelonMaddScheduler, MemoizingScheduler
from repro.simulator import Engine, SnapshotError
from repro.topology import big_switch, two_hosts
from repro.whatif import (
    WhatIfError,
    WhatIfQueryError,
    WhatIfService,
    parse_batch,
    parse_query,
)
from repro.workloads import (
    build_dp_allreduce,
    build_fsdp,
    build_pipeline_segment,
    build_pp_gpipe,
    uniform_model,
)

# ---------------------------------------------------------------------------
# comparison machinery (structural keys, as in test_incremental_equivalence)
# ---------------------------------------------------------------------------


def _flow_key(flow):
    return (
        flow.src,
        flow.dst,
        flow.size,
        flow.group_id or "",
        flow.index_in_group,
        flow.job_id or "",
        flow.tag,
    )


def _trace_key(trace):
    return (
        sorted(
            _flow_key(r.flow)
            + (r.start, r.finish, r.ideal_finish is None, r.ideal_finish or 0.0)
            for r in trace.flow_records
        ),
        [(e.task_id, e.kind, e.time, e.job_id) for e in trace.task_events],
        [
            (s.task_id, s.device, s.start, s.end, s.job_id, s.tag)
            for s in trace.compute_spans
        ],
        trace.end_time,
    )


# ---------------------------------------------------------------------------
# scenarios: Fig. 2 pipeline + three Table-1 paradigms
# ---------------------------------------------------------------------------

_MODEL = uniform_model(
    "u8",
    8,
    param_bytes_per_layer=megabytes(30),
    activation_bytes=megabytes(15),
    forward_time=0.004,
)

_HOSTS4 = ["h0", "h1", "h2", "h3"]


def _fig2_engine():
    engine = Engine(two_hosts(1.0), EchelonMaddScheduler())
    job = build_pipeline_segment(
        "fig2", "h0", "h1", [0.0, 1.0, 2.0], [2.0, 2.0, 2.0], [2.0, 2.0, 2.0]
    )
    job.submit_to(engine)
    return engine


def _dp_engine():
    engine = Engine(big_switch(4, gbps(10)), EchelonMaddScheduler())
    build_dp_allreduce(
        "dp", _MODEL, _HOSTS4, bucket_bytes=megabytes(8)
    ).submit_to(engine)
    return engine


def _fsdp_engine():
    engine = Engine(big_switch(4, gbps(10)), EchelonMaddScheduler())
    build_fsdp("fsdp", _MODEL, _HOSTS4).submit_to(engine)
    return engine


def _pp_engine():
    engine = Engine(big_switch(4, gbps(10)), EchelonMaddScheduler())
    build_pp_gpipe("pp", _MODEL, _HOSTS4, num_micro_batches=4).submit_to(engine)
    return engine


_SCENARIOS = {
    "fig2": _fig2_engine,
    "dp": _dp_engine,
    "fsdp": _fsdp_engine,
    "pp": _pp_engine,
}


def _build(name):
    """A fresh engine under a private allocator: every build of the same
    scenario is the same experiment, flow ids included."""
    with use_flow_id_allocator(FlowIdAllocator()):
        return _SCENARIOS[name]()


# ---------------------------------------------------------------------------
# tentpole: fork-and-resume == uninterrupted, at 10 random timestamps
# ---------------------------------------------------------------------------


@pytest.mark.parametrize("name", sorted(_SCENARIOS))
def test_fork_resume_bit_identical(name):
    reference = _build(name)
    ref_key = _trace_key(reference.run())
    end_time = ref_key[-1]
    assert end_time > 0

    rng = random.Random(f"whatif-{name}")
    times = sorted(rng.uniform(0.05, 0.95) * end_time for _ in range(10))

    # One walker engine pauses at each timestamp and snapshots; the
    # paused-and-resumed walker itself must also match the reference.
    walker = _build(name)
    handles = []
    for when in times:
        walker.run(until=when)
        handles.append(walker.snapshot())
    assert _trace_key(walker.run()) == ref_key

    for handle in handles:
        fork = walker.fork(handle)
        assert _trace_key(fork.run()) == ref_key


def test_restore_rewinds_in_place():
    engine = _build("dp")
    engine.run(until=0.05)
    handle = engine.snapshot()
    first_key = _trace_key(engine.run())
    engine.restore(handle)
    assert engine.now == pytest.approx(handle.time)
    assert _trace_key(engine.run()) == first_key


def test_handles_are_reusable():
    engine = _build("fig2")
    engine.run(until=2.5)
    handle = engine.snapshot()
    first = _trace_key(engine.fork(handle).run())
    for _ in range(2):  # a handle is pristine: forks never alias state
        assert _trace_key(engine.fork(handle).run()) == first


# ---------------------------------------------------------------------------
# SnapshotError taxonomy
# ---------------------------------------------------------------------------


def test_snapshot_rejects_arbitrary_callbacks():
    engine = _build("fig2")
    engine.schedule_callback(0.5, lambda: None)
    with pytest.raises(SnapshotError):
        engine.snapshot()


def test_snapshot_rejects_mid_run_capture():
    engine = _build("fig2")
    engine.schedule_callback(0.5, engine.snapshot)
    with pytest.raises(SnapshotError):
        engine.run()


def test_armed_fault_events_survive_snapshot():
    # FaultInjector timers are the sanctioned callback kind: a fork must
    # replay the pending fault exactly where the parent would have.
    engine = _build("dp")
    injector = FaultInjector(
        parse_fault_spec("degrade:h1-core@0.04+0.05,factor=0.3")
    )
    injector.attach(engine)
    engine.faults = injector  # capture() finds the armed map here
    reference_key = _trace_key(engine.fork(engine.snapshot()).run())
    assert _trace_key(engine.run()) == reference_key


# ---------------------------------------------------------------------------
# MemoizingScheduler: shared cache + capacity-lineage fingerprints
# ---------------------------------------------------------------------------


def test_memo_cache_shared_and_lineage_keyed():
    with use_flow_id_allocator(FlowIdAllocator()):
        scheduler = MemoizingScheduler(EchelonMaddScheduler())
        engine = Engine(big_switch(4, gbps(10)), scheduler)
        build_dp_allreduce(
            "dp", _MODEL, _HOSTS4, bucket_bytes=megabytes(8)
        ).submit_to(engine)
    genesis = engine.snapshot()
    ref_key = _trace_key(engine.run())
    end_time = ref_key[-1]

    # A clean fork replays the baseline out of the shared cache.
    clean = engine.fork(genesis)
    assert clean.scheduler._cache is engine.scheduler._cache
    assert _trace_key(clean.run()) == ref_key
    assert clean.scheduler.hits > 0

    # A sibling fork that diverges through a fault must not be served
    # the baseline's pre-fault allocations: the capacity lineage keys
    # them apart.
    faulted = engine.fork(genesis)
    FaultInjector(
        parse_fault_spec(
            f"degrade:h1-core@{0.3 * end_time!r}+{0.4 * end_time!r},factor=0.2"
        )
    ).attach(faulted)
    faulted_key = _trace_key(faulted.run())
    assert faulted_key != ref_key
    assert faulted_key[-1] > end_time  # the degrade really slowed it
    assert faulted.network.capacity_lineage != clean.network.capacity_lineage

    # And the faulted run's entries must not leak back into clean
    # replays through the shared cache (the staleness regression).
    assert _trace_key(engine.fork(genesis).run()) == ref_key


# ---------------------------------------------------------------------------
# engine-scoped flow-id allocator
# ---------------------------------------------------------------------------


def test_engine_scoped_allocators_are_independent():
    first = _build("dp")
    second = _build("dp")
    assert first.flow_ids is not second.flow_ids
    # Identical builds under private allocators number flows identically.
    assert _trace_key(first.run()) == _trace_key(second.run())


def test_reset_flow_ids_shim_is_gone():
    # The PR 7 deprecation shim completed its cycle: the only sanctioned
    # way to scope flow ids is use_flow_id_allocator.
    import repro.core
    import repro.core.flow

    assert not hasattr(repro.core, "reset_flow_ids")
    assert not hasattr(repro.core.flow, "reset_flow_ids")


# ---------------------------------------------------------------------------
# the what-if query grammar
# ---------------------------------------------------------------------------


def test_parse_query_grammar():
    query = parse_query("degrade_link:h1-core@30%+0.2,factor=0.25")
    assert query.kind == "degrade_link"
    assert query.arg == "h1-core"
    assert query.time == (30.0, True)
    assert query.duration == (0.2, False)
    assert query.options == {"factor": "0.25"}
    when, duration = query.resolved(2.0)
    assert when == pytest.approx(0.6)
    assert duration == pytest.approx(0.2)


@pytest.mark.parametrize(
    "bad",
    [
        "",
        "explode:h1-core@1",  # unknown kind
        "kill_link:h1-core",  # missing @time
        "kill_link@1",  # missing :arg
        "submit_job:dp@1+0.5",  # duration on a non-link kind
        "kill_link:h1-core@-1",  # negative time
        "kill_link:h1-core@1,factor",  # malformed option
    ],
)
def test_parse_query_rejects(bad):
    with pytest.raises(WhatIfQueryError):
        parse_query(bad)


def test_parse_batch_reports_line_numbers():
    queries = parse_batch(
        "# comment\nkill_link:h1-core@10%+0.1\n\nremove_job:dp3@0\n"
    )
    assert [q.kind for q in queries] == ["kill_link", "remove_job"]
    with pytest.raises(WhatIfQueryError, match="line 2"):
        parse_batch("# fine\nbogus@1\n")


# ---------------------------------------------------------------------------
# the what-if service: warm forks == cold rebuilds
# ---------------------------------------------------------------------------


@pytest.fixture(scope="module")
def service():
    # Small cluster (8 hosts, 4 tenants: dp0, fsdp1, pp2, dp3) keeps the
    # warm/cold sweeps fast; determinism is what is under test here, so
    # the sanitizer is left to the environment default.
    return WhatIfService.build(hosts=8, jobs=4, iterations=1)


_QUERIES = [
    "kill_link:h1-core@30%+25%",
    "degrade_link:h1-core@25%+40%,factor=0.3",
    "submit_job:dp@40%",
    "add_tenant:fsdp@50%,jobs=2",
    "remove_job:dp3@0",
]


def _assert_triples_close(warm, cold):
    # Warm forks may hit memo-cache entries whose inputs sat within the
    # fingerprint quantum (1 part in 1e9, see scheduling.cache._quantize)
    # of the variant's, so warm and cold can differ in the last ulp --
    # never beyond the quantum.
    assert warm.keys() == cold.keys()
    for key in warm:
        for field in ("baseline", "variant", "delta"):
            a, b = warm[key][field], cold[key][field]
            if a is None or b is None:
                assert a is None and b is None
            else:
                assert a == pytest.approx(b, rel=1e-9, abs=1e-9)


@pytest.mark.parametrize("spec", _QUERIES)
def test_warm_equals_cold(service, spec):
    warm = service.run_query(spec, mode="warm", detail="deltas")
    cold = service.run_query(spec, mode="cold", detail="deltas")
    assert warm.variant_makespan == pytest.approx(
        cold.variant_makespan, rel=1e-9
    )
    _assert_triples_close(warm.jct, cold.jct)
    _assert_triples_close(warm.tardiness, cold.tardiness)
    assert warm.added_jobs == cold.added_jobs
    assert warm.removed_jobs == cold.removed_jobs


def test_warm_queries_populate_handle_cache(service):
    before = len(service._handles)
    when = 0.6 * service.baseline_makespan
    fork = service.fork_at(when)
    assert fork.now == pytest.approx(when)
    assert len(service._handles) >= before  # advanced states are cached


def test_query_deltas_are_structured(service):
    result = service.run_query("degrade_link:h1-core@25%+40%,factor=0.3")
    assert result.makespan_delta >= 0
    assert result.jct["dp0"]["delta"] is not None
    assert result.report  # detail="full" carries the run-diff report
    payload = result.to_json()
    assert payload["mode"] == "warm"
    assert payload["baseline_makespan"] == service.baseline_makespan


def test_remove_job_after_start_is_rejected(service):
    with pytest.raises(WhatIfError, match="already started"):
        service.run_query("remove_job:dp0@50%")
    with pytest.raises(WhatIfError, match="unknown job"):
        service.run_query("remove_job:nope@0")


def test_permanent_partition_is_rejected(service):
    with pytest.raises(WhatIfError, match="duration"):
        service.run_query("kill_link:h1-core@30%")


def test_unknown_link_is_rejected(service):
    with pytest.raises(WhatIfError, match="unknown link"):
        service.run_query("kill_link:h1-nowhere@30%+0.1")


# ---------------------------------------------------------------------------
# satellite: restore-triggered un-cordon in the watch loop
# ---------------------------------------------------------------------------


def test_flap_uncordon_recovers_jct():
    from repro.obs.watch import WatchConfig
    from repro.obs.watch.scenarios import build_scenarios
    from repro.obs.watch.score import grade_scenario

    scenario = build_scenarios(["ls"], ["flap"])[0]
    on = grade_scenario(scenario, WatchConfig(), mitigate=True, sanitizer=False)
    assert on["detected"]
    assert on["recovered_jct"] > 0
    applied = [a["action"] for a in on["mitigations"] if a.get("applied")]
    assert "cordon_link" in applied
    assert "uncordon_link" in applied

    off = grade_scenario(
        scenario,
        WatchConfig(uncordon_on_restore=False),
        mitigate=True,
        sanitizer=False,
    )
    assert on["recovered_jct"] >= off["recovered_jct"] - 1e-9
