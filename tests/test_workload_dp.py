"""DP-AllReduce and DP-PS workload builders (Fig. 4, Case I)."""

import pytest

from repro.scheduling import FairSharingScheduler
from repro.simulator import Engine, TaskKind
from repro.topology import big_switch
from repro.workloads import build_dp_allreduce, build_dp_ps, uniform_model

MODEL = uniform_model(
    "u4", 4, param_bytes_per_layer=100.0, activation_bytes=10.0, forward_time=1.0
)
WORKERS = ["h0", "h1", "h2"]


class TestDpAllReduce:
    def test_every_echelonflow_is_a_coflow(self):
        job = build_dp_allreduce("j", MODEL, WORKERS, bucket_bytes=200.0)
        assert job.paradigm == "dp-allreduce"
        assert job.echelonflows
        assert all(ef.is_coflow() for ef in job.echelonflows)

    def test_one_coflow_per_bucket(self):
        job = build_dp_allreduce("j", MODEL, WORKERS, bucket_bytes=200.0)
        buckets = MODEL.gradient_buckets(200.0)
        assert len(job.echelonflows) == len(buckets)

    def test_dag_executes(self):
        job = build_dp_allreduce("j", MODEL, WORKERS, bucket_bytes=200.0)
        engine = Engine(big_switch(3, 50.0), FairSharingScheduler())
        job.submit_to(engine)
        trace = engine.run()
        # Forward (4) + backward (8) serialized per worker, plus comm.
        assert trace.last_compute_end() >= 12.0
        assert engine.completed_jobs == ["j"]

    def test_iterations_chain_through_barrier(self):
        one = build_dp_allreduce("j", MODEL, WORKERS, bucket_bytes=1e9, iterations=1)
        two = build_dp_allreduce("j", MODEL, WORKERS, bucket_bytes=1e9, iterations=2)

        def run(job):
            engine = Engine(big_switch(3, 50.0), FairSharingScheduler())
            job.submit_to(engine)
            return engine.run().end_time

        t1, t2 = run(one), run(two)
        assert t2 == pytest.approx(2 * t1, rel=1e-6)

    def test_update_time_adds_compute(self):
        without = build_dp_allreduce("j", MODEL, WORKERS, bucket_bytes=1e9)
        with_update = build_dp_allreduce(
            "j", MODEL, WORKERS, bucket_bytes=1e9, update_time=0.5
        )
        def run(job):
            engine = Engine(big_switch(3, 50.0), FairSharingScheduler())
            job.submit_to(engine)
            return engine.run().end_time
        assert run(with_update) == pytest.approx(run(without) + 0.5)

    def test_allreduce_waits_for_all_workers_bucket_backward(self):
        job = build_dp_allreduce("j", MODEL, WORKERS, bucket_bytes=1e9)
        dag = job.dag
        first_step = next(
            t for t in dag.tasks() if t.kind is TaskKind.COMM and "/s0" in t.task_id
        )
        assert len(first_step.deps) == len(WORKERS)

    def test_validation(self):
        with pytest.raises(ValueError):
            build_dp_allreduce("j", MODEL, ["h0"], bucket_bytes=100.0)
        with pytest.raises(ValueError):
            build_dp_allreduce("j", MODEL, WORKERS, bucket_bytes=100.0, iterations=0)


class TestDpPs:
    def test_push_and_pull_coflows(self):
        job = build_dp_ps("j", MODEL, WORKERS, "h3", bucket_bytes=200.0)
        buckets = MODEL.gradient_buckets(200.0)
        assert len(job.echelonflows) == 2 * len(buckets)
        assert all(ef.is_coflow() for ef in job.echelonflows)
        pushes = [ef for ef in job.echelonflows if "push" in ef.ef_id]
        pulls = [ef for ef in job.echelonflows if "pull" in ef.ef_id]
        assert len(pushes) == len(pulls) == len(buckets)

    def test_flow_directions(self):
        job = build_dp_ps("j", MODEL, WORKERS, "h3", bucket_bytes=1e9)
        for ef in job.echelonflows:
            for flow in ef.flows:
                if "push" in ef.ef_id:
                    assert flow.dst == "h3"
                else:
                    assert flow.src == "h3"

    def test_dag_executes_with_server_update(self):
        job = build_dp_ps(
            "j", MODEL, WORKERS, "h3", bucket_bytes=200.0, update_time=0.1
        )
        engine = Engine(big_switch(4, 50.0), FairSharingScheduler())
        job.submit_to(engine)
        trace = engine.run()
        server_spans = trace.spans_of_device("h3")
        assert len(server_spans) == len(MODEL.gradient_buckets(200.0))

    def test_server_must_not_be_worker(self):
        with pytest.raises(ValueError):
            build_dp_ps("j", MODEL, WORKERS, "h0", bucket_bytes=100.0)
