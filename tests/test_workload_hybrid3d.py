"""3D hybrid parallelism (TP x PP x DP) workload builder."""

import pytest

from repro.core.arrangement import CoflowArrangement, StaggeredArrangement
from repro.core.units import gbps, megabytes
from repro.scheduling import (
    CoflowMaddScheduler,
    EchelonMaddScheduler,
    FairSharingScheduler,
)
from repro.simulator import Engine
from repro.topology import big_switch
from repro.workloads import build_hybrid_3d, grid_from_hosts, uniform_model

MODEL = uniform_model(
    "u8",
    8,
    param_bytes_per_layer=megabytes(40),
    activation_bytes=megabytes(20),
    forward_time=0.004,
)
HOSTS8 = [f"h{i}" for i in range(8)]


class TestGrid:
    def test_shape_and_tp_innermost(self):
        grid = grid_from_hosts(HOSTS8, dp=2, pp=2, tp=2)
        assert grid == [
            [["h0", "h1"], ["h2", "h3"]],
            [["h4", "h5"], ["h6", "h7"]],
        ]

    def test_insufficient_hosts(self):
        with pytest.raises(ValueError):
            grid_from_hosts(HOSTS8, dp=2, pp=2, tp=4)

    def test_duplicate_hosts_rejected(self):
        with pytest.raises(ValueError):
            grid_from_hosts(["h0", "h0", "h1", "h2"], dp=1, pp=2, tp=2)


class TestBuilder:
    def _job(self, **kwargs):
        grid = grid_from_hosts(HOSTS8, dp=2, pp=2, tp=2)
        defaults = dict(num_micro_batches=4)
        defaults.update(kwargs)
        return build_hybrid_3d("j", MODEL, grid, **defaults)

    def test_echelonflow_mix(self):
        """One job emits both arrangement families simultaneously."""
        job = self._job()
        staggered = [
            ef for ef in job.echelonflows
            if isinstance(ef.arrangement, StaggeredArrangement)
        ]
        coflows = [
            ef for ef in job.echelonflows
            if isinstance(ef.arrangement, CoflowArrangement)
        ]
        # 2 replicas x 1 boundary x 2 directions = 4 staggered EFs.
        assert len(staggered) == 4
        # TP syncs: 2 replicas x 2 stages x 4 mbs = 16; DP ar: 2x2 = 4.
        assert len(coflows) == 16 + 4

    def test_flow_counts(self):
        job = self._job()
        pp_flows = sum(
            ef.cardinality
            for ef in job.echelonflows
            if isinstance(ef.arrangement, StaggeredArrangement)
        )
        # Per boundary per direction: 4 mbs x 2 tp ranks = 8 flows;
        # 2 replicas x 2 directions -> 32.
        assert pp_flows == 32

    def test_executes_under_every_scheduler(self):
        for scheduler in (
            FairSharingScheduler(),
            CoflowMaddScheduler(),
            EchelonMaddScheduler(),
        ):
            job = self._job()
            engine = Engine(big_switch(8, gbps(10)), scheduler)
            job.submit_to(engine)
            engine.run()
            assert engine.completed_jobs == ["j"]

    def test_echelon_not_worse_than_coflow(self):
        def run(scheduler):
            job = self._job()
            engine = Engine(big_switch(8, gbps(10)), scheduler)
            job.submit_to(engine)
            return engine.run().end_time

        assert run(EchelonMaddScheduler()) <= run(CoflowMaddScheduler()) * 1.001

    def test_dp1_skips_gradient_sync(self):
        grid = grid_from_hosts(HOSTS8[:4], dp=1, pp=2, tp=2)
        job = build_hybrid_3d("j", MODEL, grid, num_micro_batches=2)
        assert not any("dp-ar" in ef.ef_id for ef in job.echelonflows)
        engine = Engine(big_switch(4, gbps(10)), EchelonMaddScheduler())
        job.submit_to(engine)
        engine.run()
        assert engine.completed_jobs == ["j"]

    def test_tp_compute_sharding(self):
        job = self._job()
        engine = Engine(big_switch(8, gbps(10)), FairSharingScheduler())
        job.submit_to(engine)
        trace = engine.run()
        fwd = [s for s in trace.compute_spans if s.tag.startswith("F")]
        # Stage forward 0.016s over tp=2 and 4 micro-batches: 0.002 each.
        assert fwd[0].duration == pytest.approx(0.016 / 2 / 4)

    def test_replicas_are_symmetric(self):
        job = self._job()
        engine = Engine(big_switch(8, gbps(10)), FairSharingScheduler())
        job.submit_to(engine)
        trace = engine.run()
        r0_last = max(
            s.end for s in trace.compute_spans if s.device in ("h0", "h1", "h2", "h3")
        )
        r1_last = max(
            s.end for s in trace.compute_spans if s.device in ("h4", "h5", "h6", "h7")
        )
        assert r0_last == pytest.approx(r1_last, rel=1e-6)

    def test_validation(self):
        grid = grid_from_hosts(HOSTS8, dp=2, pp=2, tp=2)
        with pytest.raises(ValueError):
            build_hybrid_3d("j", MODEL, grid, num_micro_batches=0)
        with pytest.raises(ValueError):
            build_hybrid_3d("j", MODEL, [], num_micro_batches=2)
        ragged = [[["h0", "h1"]], [["h2"]]]
        with pytest.raises(ValueError):
            build_hybrid_3d("j", MODEL, ragged, num_micro_batches=2)
