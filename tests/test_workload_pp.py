"""Pipeline parallelism builders (Fig. 1, Case II)."""

import pytest

from repro.core.arrangement import StaggeredArrangement
from repro.scheduling import EchelonMaddScheduler, FairSharingScheduler
from repro.simulator import Engine
from repro.topology import linear_chain, two_hosts
from repro.workloads import build_pipeline_segment, build_pp_gpipe, uniform_model

MODEL = uniform_model(
    "u8", 8, param_bytes_per_layer=100.0, activation_bytes=8.0, forward_time=1.0
)


class TestGpipe:
    def test_echelonflows_are_staggered(self):
        job = build_pp_gpipe("j", MODEL, ["h0", "h1", "h2", "h3"], 4)
        assert job.paradigm == "pp-gpipe"
        # One fwd + one bwd EF per boundary.
        assert len(job.echelonflows) == 2 * 3
        for ef in job.echelonflows:
            assert isinstance(ef.arrangement, StaggeredArrangement)
            assert not ef.is_coflow()
            assert ef.cardinality == 4  # one flow per micro-batch

    def test_distance_is_consumer_compute_time(self):
        job = build_pp_gpipe("j", MODEL, ["h0", "h1"], num_micro_batches=4)
        fwd_ef = next(ef for ef in job.echelonflows if "fwd" in ef.ef_id)
        # Consumer = stage 1: 4 layers x 1.0 fwd / 4 micro-batches.
        assert fwd_ef.arrangement.distance == pytest.approx(1.0)
        bwd_ef = next(ef for ef in job.echelonflows if "bwd" in ef.ef_id)
        # Consumer = stage 0: backward time 4 layers x 2.0 / 4 mbs.
        assert bwd_ef.arrangement.distance == pytest.approx(2.0)

    def test_executes_and_completes(self):
        job = build_pp_gpipe("j", MODEL, ["h0", "h1"], num_micro_batches=4)
        engine = Engine(linear_chain(2, 1000.0), FairSharingScheduler())
        job.submit_to(engine)
        trace = engine.run()
        assert engine.completed_jobs == ["j"]
        # Fast network: makespan close to the GPipe pipeline formula
        # (m + p - 1) * (T_f) for forward plus backward counterpart.
        fwd = 1.0  # per-stage per-microbatch forward
        bwd = 2.0
        ideal = (4 + 2 - 1) * fwd + (4 + 2 - 1) * bwd
        assert trace.last_compute_end() == pytest.approx(ideal, rel=0.01)

    def test_micro_batch_order_is_preserved_per_stage(self):
        job = build_pp_gpipe("j", MODEL, ["h0", "h1"], num_micro_batches=3)
        engine = Engine(linear_chain(2, 1000.0), FairSharingScheduler())
        job.submit_to(engine)
        trace = engine.run()
        fwd_spans = [
            s for s in trace.compute_spans if s.device == "h1" and s.tag.startswith("F")
        ]
        starts = [s.start for s in sorted(fwd_spans, key=lambda s: s.tag)]
        assert starts == sorted(starts)

    def test_gpipe_flush_before_backward(self):
        """No backward compute may start before the stage's last forward."""
        job = build_pp_gpipe("j", MODEL, ["h0", "h1"], num_micro_batches=3)
        engine = Engine(linear_chain(2, 1000.0), FairSharingScheduler())
        job.submit_to(engine)
        trace = engine.run()
        last_fwd = max(
            s.end for s in trace.compute_spans
            if s.device == "h1" and s.tag.startswith("F")
        )
        first_bwd = min(
            s.start for s in trace.compute_spans
            if s.device == "h1" and s.tag.startswith("B")
        )
        assert first_bwd >= last_fwd - 1e-9

    def test_multi_iteration(self):
        job = build_pp_gpipe("j", MODEL, ["h0", "h1"], 2, iterations=2)
        engine = Engine(linear_chain(2, 1000.0), FairSharingScheduler())
        job.submit_to(engine)
        trace = engine.run()
        assert engine.completed_jobs == ["j"]
        assert len(job.echelonflows) == 2 * 1 * 2  # 2 iters x 1 boundary x 2 dirs

    def test_validation(self):
        with pytest.raises(ValueError):
            build_pp_gpipe("j", MODEL, ["h0"], 4)
        with pytest.raises(ValueError):
            build_pp_gpipe("j", MODEL, ["h0", "h1"], 0)


class TestPipelineSegment:
    def test_fig2_under_echelon_is_optimal(self):
        job = build_pipeline_segment(
            "j",
            "h0",
            "h1",
            release_times=[0.0, 1.0, 2.0],
            flow_sizes=[2.0, 2.0, 2.0],
            consumer_compute_times=[2.0, 2.0, 2.0],
        )
        engine = Engine(two_hosts(1.0), EchelonMaddScheduler())
        job.submit_to(engine)
        trace = engine.run()
        assert trace.last_compute_end() == pytest.approx(8.0)

    def test_release_times_respected(self):
        job = build_pipeline_segment(
            "j",
            "h0",
            "h1",
            release_times=[0.5, 2.5],
            flow_sizes=[1.0, 1.0],
            consumer_compute_times=[0.1, 0.1],
        )
        engine = Engine(two_hosts(1000.0), FairSharingScheduler())
        job.submit_to(engine)
        trace = engine.run()
        starts = sorted(r.start for r in trace.flow_records)
        assert starts[0] == pytest.approx(0.5)
        assert starts[1] == pytest.approx(2.5)

    def test_distance_defaults_to_first_compute(self):
        job = build_pipeline_segment(
            "j", "h0", "h1", [0.0, 1.0], [1.0, 1.0], [3.0, 3.0]
        )
        assert job.echelonflows[0].arrangement.distance == pytest.approx(3.0)

    def test_validation(self):
        with pytest.raises(ValueError):
            build_pipeline_segment("j", "h0", "h1", [0.0], [1.0], [1.0, 2.0])
        with pytest.raises(ValueError):
            build_pipeline_segment("j", "h0", "h1", [], [], [])
        with pytest.raises(ValueError):
            build_pipeline_segment("j", "h0", "h1", [2.0, 1.0], [1.0, 1.0], [1.0, 1.0])
        with pytest.raises(ValueError):
            build_pipeline_segment("j", "h0", "h0", [0.0], [1.0], [1.0])
