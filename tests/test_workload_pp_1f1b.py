"""1F1B pipeline schedule: ordering, arrangement, and execution."""

import pytest

from repro.core.arrangement import TabledArrangement
from repro.scheduling import (
    CoflowMaddScheduler,
    EchelonMaddScheduler,
    FairSharingScheduler,
)
from repro.simulator import Engine
from repro.topology import linear_chain
from repro.workloads import build_pp_1f1b, build_pp_gpipe, one_f_one_b_order, uniform_model
from repro.core.units import gbps, megabytes

MODEL = uniform_model(
    "u8",
    8,
    param_bytes_per_layer=megabytes(40),
    activation_bytes=megabytes(20),
    forward_time=0.004,
)
HOSTS = ["h0", "h1", "h2", "h3"]


class TestOrder:
    def test_last_stage_alternates_strictly(self):
        order = one_f_one_b_order(3, 4, 6)
        kinds = [kind for kind, _mb in order]
        assert kinds == ["F", "B"] * 6

    def test_first_stage_warmup_depth(self):
        order = one_f_one_b_order(0, 4, 6)
        # Warm-up = p - s = 4 forwards before the first backward.
        assert [kind for kind, _ in order[:4]] == ["F"] * 4
        assert order[4] == ("B", 0)

    def test_every_micro_batch_appears_once_each_way(self):
        for stage in range(4):
            order = one_f_one_b_order(stage, 4, 6)
            forwards = [mb for kind, mb in order if kind == "F"]
            backwards = [mb for kind, mb in order if kind == "B"]
            assert forwards == list(range(6))
            assert backwards == list(range(6))

    def test_backward_never_precedes_its_forward(self):
        for stage in range(4):
            order = one_f_one_b_order(stage, 4, 6)
            seen_forward = set()
            for kind, mb in order:
                if kind == "F":
                    seen_forward.add(mb)
                else:
                    assert mb in seen_forward

    def test_fewer_micro_batches_than_stages(self):
        order = one_f_one_b_order(0, 4, 2)
        assert [kind for kind, _ in order] == ["F", "F", "B", "B"]

    def test_validation(self):
        with pytest.raises(ValueError):
            one_f_one_b_order(4, 4, 2)
        with pytest.raises(ValueError):
            one_f_one_b_order(0, 4, 0)


class TestBuilder:
    def test_arrangements_are_tabled_and_non_uniform(self):
        job = build_pp_1f1b("j", MODEL, HOSTS, num_micro_batches=6)
        assert job.paradigm == "pp-1f1b"
        fwd_ef = next(ef for ef in job.echelonflows if "fwd0-1" in ef.ef_id)
        assert isinstance(fwd_ef.arrangement, TabledArrangement)
        offsets = [fwd_ef.arrangement.offset(j) for j in range(6)]
        gaps = [b - a for a, b in zip(offsets, offsets[1:])]
        # Warm-up gaps are T_fwd; steady-state gaps are T_fwd + T_bwd --
        # "more complicated than Eq. 6".
        assert len(set(round(g, 12) for g in gaps)) > 1

    def test_executes_and_matches_analytic_makespan_on_fast_network(self):
        job = build_pp_1f1b("j", MODEL, HOSTS, num_micro_batches=8)
        engine = Engine(linear_chain(4, gbps(100000)), FairSharingScheduler())
        job.submit_to(engine)
        trace = engine.run()
        # Synchronous 1F1B makespan equals GPipe's for equal stage times:
        # (m + p - 1) * (T_f + T_b).
        t_f = MODEL.total_forward_time / 4 / 8
        t_b = MODEL.total_backward_time / 4 / 8
        ideal = (8 + 4 - 1) * (t_f + t_b)
        assert trace.last_compute_end() == pytest.approx(ideal, rel=0.01)

    def test_in_flight_activations_bounded(self):
        """1F1B's point: stage s never holds more than p - s live fwds."""
        job = build_pp_1f1b("j", MODEL, HOSTS, num_micro_batches=8)
        engine = Engine(linear_chain(4, gbps(100000)), FairSharingScheduler())
        job.submit_to(engine)
        trace = engine.run()
        spans = [
            s for s in trace.compute_spans if s.device == "h0"
        ]
        live = 0
        peak = 0
        for span in sorted(spans, key=lambda s: s.start):
            if span.tag.startswith("F"):
                live += 1
                peak = max(peak, live)
            else:
                live -= 1
        assert peak <= 4  # p - 0

    def test_echelon_beats_baselines_under_contention(self):
        def run(scheduler):
            job = build_pp_1f1b("j", MODEL, HOSTS, num_micro_batches=8)
            engine = Engine(linear_chain(4, gbps(3)), scheduler)
            job.submit_to(engine)
            return engine.run().last_compute_end()

        echelon = run(EchelonMaddScheduler())
        fair = run(FairSharingScheduler())
        coflow = run(CoflowMaddScheduler())
        assert echelon < fair < coflow

    def test_1f1b_not_slower_than_gpipe(self):
        def run(builder):
            job = builder("j", MODEL, HOSTS, num_micro_batches=8)
            engine = Engine(linear_chain(4, gbps(3)), EchelonMaddScheduler())
            job.submit_to(engine)
            return engine.run().last_compute_end()

        assert run(build_pp_1f1b) <= run(build_pp_gpipe) + 1e-9

    def test_multi_iteration(self):
        job = build_pp_1f1b("j", MODEL, HOSTS, 4, iterations=2, update_time=0.001)
        engine = Engine(linear_chain(4, gbps(10)), EchelonMaddScheduler())
        job.submit_to(engine)
        engine.run()
        assert engine.completed_jobs == ["j"]

    def test_validation(self):
        with pytest.raises(ValueError):
            build_pp_1f1b("j", MODEL, ["h0"], 4)
        with pytest.raises(ValueError):
            build_pp_1f1b("j", MODEL, HOSTS, 0)
        with pytest.raises(ValueError):
            build_pp_1f1b("j", MODEL, HOSTS, 4, iterations=0)
