"""Interleaved (virtual-stage) pipeline parallelism."""

import pytest

from repro.analysis import gpu_idleness, validate_trace
from repro.core.units import gbps, megabytes
from repro.scheduling import (
    CoflowMaddScheduler,
    EchelonMaddScheduler,
    FairSharingScheduler,
)
from repro.simulator import Engine
from repro.topology import big_switch
from repro.workloads import build_pp_gpipe, build_pp_interleaved, uniform_model

MODEL = uniform_model(
    "u16",
    16,
    param_bytes_per_layer=megabytes(20),
    activation_bytes=megabytes(20),
    forward_time=0.002,
)
HOSTS = ["h0", "h1", "h2", "h3"]


def _run(job, bandwidth=gbps(10000), scheduler=None):
    engine = Engine(big_switch(4, bandwidth), scheduler or FairSharingScheduler())
    job.submit_to(engine)
    return engine.run()


class TestStructure:
    def test_chunks_cycle_around_the_worker_ring(self):
        job = build_pp_interleaved("j", MODEL, HOSTS, 2, virtual_stages=2)
        trace = _run(job)
        validate_trace(trace, dag=job.dag)
        # Chunk c runs on worker c % p: chunk 5 on h1.
        span = next(s for s in trace.compute_spans if s.tag == "F c5 mb0")
        assert span.device == "h1"

    def test_wraparound_boundary_traffic(self):
        job = build_pp_interleaved("j", MODEL, HOSTS, 2, virtual_stages=2)
        # Boundary chunk 3 -> chunk 4 wraps from h3 back to h0.
        wrap = [f for f in job.dag.all_flows() if "c3->c4" in f.tag]
        assert wrap and all(f.src == "h3" and f.dst == "h0" for f in wrap)

    def test_v1_matches_gpipe_makespan(self):
        interleaved = build_pp_interleaved("j", MODEL, HOSTS, 4, virtual_stages=1)
        gpipe = build_pp_gpipe("j", MODEL, HOSTS, 4)
        assert _run(interleaved).end_time == pytest.approx(
            _run(gpipe).end_time, rel=1e-6
        )

    def test_boundary_count(self):
        job = build_pp_interleaved("j", MODEL, HOSTS, 3, virtual_stages=2)
        # 2 directions x (p*v - 1) boundaries.
        assert len(job.echelonflows) == 2 * (4 * 2 - 1)


class TestBubbleReduction:
    def test_idle_share_shrinks_with_virtual_stages(self):
        idles = []
        for v in (1, 2, 4):
            job = build_pp_interleaved("j", MODEL, HOSTS, 4, virtual_stages=v)
            trace = _run(job)
            report = gpu_idleness(trace, horizon=trace.end_time)
            idles.append(1.0 - report.total_busy / (4 * trace.end_time))
        assert idles[0] > idles[1] > idles[2]

    def test_makespan_shrinks_with_virtual_stages(self):
        times = []
        for v in (1, 2, 4):
            job = build_pp_interleaved("j", MODEL, HOSTS, 4, virtual_stages=v)
            times.append(_run(job).end_time)
        assert times[0] > times[1] > times[2]


class TestScheduling:
    def test_echelon_beats_baselines_under_contention(self):
        def run(scheduler):
            job = build_pp_interleaved("j", MODEL, HOSTS, 8, virtual_stages=2)
            return _run(job, bandwidth=gbps(3), scheduler=scheduler).last_compute_end()

        echelon = run(EchelonMaddScheduler())
        fair = run(FairSharingScheduler())
        coflow = run(CoflowMaddScheduler())
        assert echelon < fair < coflow

    def test_multi_iteration_completes(self):
        job = build_pp_interleaved(
            "j", MODEL, HOSTS, 2, virtual_stages=2, iterations=2, update_time=1e-4
        )
        engine = Engine(big_switch(4, gbps(10)), EchelonMaddScheduler())
        job.submit_to(engine)
        engine.run()
        assert engine.completed_jobs == ["j"]


def test_validation():
    with pytest.raises(ValueError):
        build_pp_interleaved("j", MODEL, HOSTS, 0, virtual_stages=2)
    with pytest.raises(ValueError):
        build_pp_interleaved("j", MODEL, HOSTS, 2, virtual_stages=0)
    with pytest.raises(ValueError):
        build_pp_interleaved("j", MODEL, HOSTS, 2, virtual_stages=8)  # > layers
    with pytest.raises(ValueError):
        build_pp_interleaved("j", MODEL, HOSTS, 2, virtual_stages=2, iterations=0)
