"""TP (Fig. 5) and FSDP (Fig. 3) workload builders."""

import pytest

from repro.core.arrangement import PhasedArrangement, TabledArrangement
from repro.scheduling import FairSharingScheduler
from repro.simulator import Engine
from repro.topology import big_switch
from repro.workloads import (
    build_fsdp,
    build_tp_megatron,
    fsdp_arrangement,
    uniform_model,
)

MODEL = uniform_model(
    "u4", 4, param_bytes_per_layer=100.0, activation_bytes=10.0, forward_time=1.0
)
WORKERS = ["h0", "h1", "h2"]


class TestTensorParallel:
    def test_two_allreduces_per_layer(self):
        job = build_tp_megatron("j", MODEL, WORKERS)
        assert job.paradigm == "tp-megatron"
        # One activation sync per layer forward + one gradient sync backward.
        assert len(job.echelonflows) == 2 * MODEL.num_layers
        assert all(ef.is_coflow() for ef in job.echelonflows)

    def test_compute_is_sharded(self):
        job = build_tp_megatron("j", MODEL, WORKERS)
        engine = Engine(big_switch(3, 1e6), FairSharingScheduler())
        job.submit_to(engine)
        trace = engine.run()
        fwd = [s for s in trace.compute_spans if s.tag.startswith("F")]
        assert fwd[0].duration == pytest.approx(1.0 / 3)

    def test_layers_serialize_through_allreduce(self):
        job = build_tp_megatron("j", MODEL, WORKERS)
        engine = Engine(big_switch(3, 50.0), FairSharingScheduler())
        job.submit_to(engine)
        trace = engine.run()
        f_ends = {}
        for span in trace.compute_spans:
            if span.tag.startswith("F layer"):
                layer = int(span.tag.split("layer")[1])
                f_ends.setdefault(layer, []).append(span)
        # Layer 1 forward cannot start before layer 0's all-reduce, which
        # cannot start before layer 0's forward ends everywhere.
        l0_end = max(s.end for s in f_ends[0])
        l1_start = min(s.start for s in f_ends[1])
        assert l1_start > l0_end

    def test_completes(self):
        job = build_tp_megatron("j", MODEL, WORKERS, iterations=2)
        engine = Engine(big_switch(3, 50.0), FairSharingScheduler())
        job.submit_to(engine)
        engine.run()
        assert engine.completed_jobs == ["j"]


class TestFsdpArrangement:
    def test_eq7_mean_distances(self):
        arrangement = fsdp_arrangement(MODEL)
        assert isinstance(arrangement, PhasedArrangement)
        assert arrangement.forward_distance == pytest.approx(1.0)
        assert arrangement.backward_distance == pytest.approx(2.0)

    def test_exact_arrangement_tracks_layers(self):
        arrangement = fsdp_arrangement(MODEL, exact=True)
        assert isinstance(arrangement, TabledArrangement)
        # Forward offsets 0,1,2,3; backward starts at 4 and steps by 2.
        offsets = [arrangement.offset(i) for i in range(8)]
        assert offsets == [0.0, 1.0, 2.0, 3.0, 4.0, 6.0, 8.0, 10.0]


class TestFsdp:
    def test_structure(self):
        job = build_fsdp("j", MODEL, WORKERS)
        assert job.paradigm == "fsdp"
        ag_efs = [ef for ef in job.echelonflows if ef.ef_id.endswith("/ag")]
        rs_efs = [ef for ef in job.echelonflows if "/rs" in ef.ef_id]
        assert len(ag_efs) == 1
        assert len(rs_efs) == MODEL.num_layers
        assert not ag_efs[0].is_coflow()  # staggered Coflow finish times
        assert all(ef.is_coflow() for ef in rs_efs)

    def test_ag_indices_cover_both_phases(self):
        job = build_fsdp("j", MODEL, WORKERS)
        ag = next(ef for ef in job.echelonflows if ef.ef_id.endswith("/ag"))
        indices = {f.index_in_group for f in ag.flows}
        assert indices == set(range(2 * MODEL.num_layers))

    def test_flows_at_same_index_form_intra_ef_coflow(self):
        job = build_fsdp("j", MODEL, WORKERS)
        ag = next(ef for ef in job.echelonflows if ef.ef_id.endswith("/ag"))
        ag.set_reference_time(0.0)
        per_index = {}
        for flow in ag.flows:
            per_index.setdefault(flow.index_in_group, set()).add(
                ag.ideal_finish_time_of(flow)
            )
        assert all(len(ideals) == 1 for ideals in per_index.values())

    def test_prefetch_limit_bounds_concurrent_gathers(self):
        job = build_fsdp("j", MODEL, WORKERS, prefetch_limit=1)
        engine = Engine(big_switch(3, 20.0), FairSharingScheduler())
        job.submit_to(engine)
        trace = engine.run()
        # With prefetch 1, ag for layer 1 cannot finish before F0 starts,
        # i.e. gathers do not all run up front.
        ag1_first = min(
            r.start for r in trace.flow_records if r.flow.tag.startswith("ag fwd l1")
        )
        f0_start = min(
            s.start for s in trace.compute_spans if s.tag == "F l0"
        )
        assert ag1_first >= f0_start - 1e-9

    def test_completes_with_updates(self):
        job = build_fsdp("j", MODEL, WORKERS, update_time=0.1)
        engine = Engine(big_switch(3, 50.0), FairSharingScheduler())
        job.submit_to(engine)
        engine.run()
        assert engine.completed_jobs == ["j"]

    def test_validation(self):
        with pytest.raises(ValueError):
            build_fsdp("j", MODEL, WORKERS, prefetch_limit=0)
        with pytest.raises(ValueError):
            build_fsdp("j", MODEL, WORKERS, iterations=0)
